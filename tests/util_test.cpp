// Unit tests for the util substrate: RNG, thread pool, statistics,
// histograms, tables and string helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace u = prionn::util;

// ---------------------------------------------------------------- RNG ---

TEST(Rng, DeterministicForSeed) {
  u::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  u::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitMixExpandsState) {
  std::uint64_t s = 0;
  const auto v1 = u::splitmix64(s);
  const auto v2 = u::splitmix64(s);
  EXPECT_NE(v1, v2);
}

TEST(Rng, UniformInUnitInterval) {
  u::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRange) {
  u::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

class RngIntRange
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {
};

TEST_P(RngIntRange, BoundsRespectedAndCovered) {
  const auto [lo, hi] = GetParam();
  u::Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
    seen.insert(v);
  }
  // Narrow ranges must be fully covered.
  if (hi - lo < 16) {
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(hi - lo + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngIntRange,
                         ::testing::Values(std::pair{0L, 0L},
                                           std::pair{0L, 1L},
                                           std::pair{-5L, 5L},
                                           std::pair{0L, 9L},
                                           std::pair{-100L, 100L},
                                           std::pair{0L, 1000000L}));

TEST(Rng, NormalMoments) {
  u::Rng rng(3);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(u::mean(xs), 0.0, 0.05);
  EXPECT_NEAR(u::stddev(xs), 1.0, 0.05);
}

TEST(Rng, NormalShiftScale) {
  u::Rng rng(3);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(u::mean(xs), 10.0, 0.1);
  EXPECT_NEAR(u::stddev(xs), 2.0, 0.1);
}

TEST(Rng, LognormalIsPositive) {
  u::Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMean) {
  u::Rng rng(11);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.exponential(0.5);
  EXPECT_NEAR(u::mean(xs), 2.0, 0.1);
}

class RngPoisson : public ::testing::TestWithParam<double> {};

TEST_P(RngPoisson, MeanMatches) {
  const double lambda = GetParam();
  u::Rng rng(13);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.poisson(lambda));
  EXPECT_NEAR(total / n, lambda, std::max(0.05, lambda * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, RngPoisson,
                         ::testing::Values(0.1, 1.0, 5.0, 29.0, 100.0));

TEST(Rng, PoissonZeroMean) {
  u::Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-3.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  u::Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  u::Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, CategoricalRespectsWeights) {
  u::Rng rng(23);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 10000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, ChildStreamsDecorrelated) {
  u::Rng parent(31);
  auto c1 = parent.child(1);
  auto c2 = parent.child(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1() == c2()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Zipf, FirstRankMostPopular) {
  u::Rng rng(37);
  u::ZipfSampler zipf(50, 1.2);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
}

TEST(Zipf, AllIndicesValid) {
  u::Rng rng(41);
  u::ZipfSampler zipf(5, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf(rng), 5u);
}

// ---------------------------------------------------------- ThreadPool ---

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  u::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  u::ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunksPartitionRange) {
  u::ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunks(0, 97, [&](std::size_t lo, std::size_t hi) {
    total += hi - lo;
  });
  EXPECT_EQ(total.load(), 97u);
}

TEST(ThreadPool, ExceptionPropagates) {
  u::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 3)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  u::ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(0, 50, [&](std::size_t) { ++n; });
    EXPECT_EQ(n.load(), 50);
  }
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  u::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t total = 0;
  pool.parallel_for(0, 10, [&](std::size_t i) { total += i; });
  EXPECT_EQ(total, 45u);
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::atomic<int> n{0};
  u::parallel_for(0, 100, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 100);
}

// --------------------------------------------------------------- Stats ---

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(u::mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(u::variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(u::stddev(xs), std::sqrt(1.25));
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> xs;
  EXPECT_EQ(u::mean(xs), 0.0);
  EXPECT_EQ(u::variance(xs), 0.0);
  EXPECT_EQ(u::median(xs), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(u::quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(u::quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(u::quantile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(u::quantile(xs, 0.25), 2.5);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(u::median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(u::median(std::vector<double>{4, 1, 2, 3}), 2.5);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3, -1, 7};
  EXPECT_DOUBLE_EQ(u::min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(u::max_of(xs), 7.0);
}

TEST(Stats, MeanAbsoluteError) {
  const std::vector<double> t = {1, 2, 3}, p = {2, 2, 1};
  EXPECT_DOUBLE_EQ(u::mean_absolute_error(t, p), 1.0);
}

TEST(Stats, BoxplotSummaryFiveNumbers) {
  std::vector<double> xs(101);
  std::iota(xs.begin(), xs.end(), 0.0);
  const auto s = u::boxplot_summary(xs);
  EXPECT_DOUBLE_EQ(s.median, 50.0);
  EXPECT_DOUBLE_EQ(s.q1, 25.0);
  EXPECT_DOUBLE_EQ(s.q3, 75.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.0);
  EXPECT_EQ(s.count, 101u);
  EXPECT_GE(s.whisker_low, 0.0);
  EXPECT_LE(s.whisker_high, 100.0);
}

TEST(Stats, FormatBoxplotMentionsFields) {
  const auto s = u::boxplot_summary(std::vector<double>{1, 2, 3});
  const auto text = u::format_boxplot(s);
  EXPECT_NE(text.find("mean="), std::string::npos);
  EXPECT_NE(text.find("med="), std::string::npos);
}

// Relative accuracy: the paper's Eq. (1).
TEST(RelativeAccuracy, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(u::relative_accuracy(10.0, 10.0), 1.0);
}

TEST(RelativeAccuracy, BothZero) {
  // Machine epsilon prevents 0/0; accuracy is 1 by construction.
  EXPECT_DOUBLE_EQ(u::relative_accuracy(0.0, 0.0), 1.0);
}

TEST(RelativeAccuracy, UnderpredictionPenalisedMore) {
  // Predicting 5 for a true 10 divides by 10; predicting 15 divides by 15.
  const double under = u::relative_accuracy(10.0, 5.0);
  const double over = u::relative_accuracy(10.0, 15.0);
  EXPECT_LT(under, over);
}

class RelativeAccuracyRange
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(RelativeAccuracyRange, StaysInUnitInterval) {
  const auto [truth, pred] = GetParam();
  const double a = u::relative_accuracy(truth, pred);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, RelativeAccuracyRange,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{0.0, 100.0},
                      std::pair{100.0, 0.0}, std::pair{1.0, 1e9},
                      std::pair{1e9, 1.0}, std::pair{960.0, 960.0},
                      std::pair{44.0, 45.0}));

TEST(RelativeAccuracy, VectorVersionMatchesScalar) {
  const std::vector<double> t = {1, 2, 3}, p = {1, 4, 3};
  const auto accs = u::relative_accuracies(t, p);
  ASSERT_EQ(accs.size(), 3u);
  EXPECT_DOUBLE_EQ(accs[0], u::relative_accuracy(1, 1));
  EXPECT_DOUBLE_EQ(accs[1], u::relative_accuracy(2, 4));
}

// ----------------------------------------------------------- Histogram ---

TEST(Histogram, LinearBinning) {
  auto h = u::Histogram::linear(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  auto h = u::Histogram::linear(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, NonFiniteInputsRouteToEdgeBinsWithoutUB) {
  // Regression: NaN used to fall through bin_of's range guards into an
  // out-of-range double->size_t cast (undefined behaviour under UBSan).
  auto h = u::Histogram::linear(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(0), 2u);  // NaN and -inf
  EXPECT_EQ(h.count(9), 1u);  // +inf clamps to the top bucket
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
}

TEST(Histogram, LogarithmicBinning) {
  auto h = u::Histogram::logarithmic(1.0, 1e6, 6);
  h.add(5.0);       // decade 0
  h.add(5e3);       // decade 3
  h.add(5e5);       // decade 5
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(5), 1u);
}

TEST(Histogram, BinEdgesConsistent) {
  auto h = u::Histogram::logarithmic(1.0, 1e4, 4);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_LT(h.bin_low(b), h.bin_center(b));
    EXPECT_LT(h.bin_center(b), h.bin_high(b));
  }
  EXPECT_NEAR(h.bin_high(3), 1e4, 1e-6);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(u::Histogram::linear(5.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(u::Histogram::linear(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(u::Histogram::logarithmic(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(u::Histogram::logarithmic(-1.0, 1.0, 4),
               std::invalid_argument);
}

TEST(Histogram, MergeFoldsCountsAndChecksConfiguration) {
  auto a = u::Histogram::linear(0.0, 10.0, 10);
  auto b = u::Histogram::linear(0.0, 10.0, 10);
  a.add(1.5);
  b.add(1.5);
  b.add(-5.0);   // underflow
  b.add(100.0);  // overflow
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  auto linear_other_range = u::Histogram::linear(0.0, 20.0, 10);
  EXPECT_THROW(a.merge(linear_other_range), std::invalid_argument);
  auto log_same_range = u::Histogram::logarithmic(1.0, 10.0, 10);
  auto lin_same_range = u::Histogram::linear(1.0, 10.0, 10);
  EXPECT_THROW(lin_same_range.merge(log_same_range), std::invalid_argument);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  auto h = u::Histogram::linear(0.0, 10.0, 10);
  h.add(0.5);
  h.add(2.5);
  h.add(4.5);
  h.add(6.5);
  // target = 0.5 * 4 = 2 samples: the upper edge of the second occupied
  // bucket, [2, 3).
  EXPECT_NEAR(h.quantile(0.5), 3.0, 1e-9);
  EXPECT_NEAR(h.quantile(1.0), 7.0, 1e-9);
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
}

TEST(Histogram, QuantileOfEmptyIsNaN) {
  const auto h = u::Histogram::linear(0.0, 1.0, 4);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(Histogram, QuantileSingleBucket) {
  auto h = u::Histogram::linear(0.0, 8.0, 1);
  h.add(3.0);
  h.add(5.0);
  // All mass in one [0, 8) bucket: quantiles interpolate linearly over it.
  EXPECT_NEAR(h.quantile(0.5), 4.0, 1e-9);
  EXPECT_NEAR(h.quantile(1.0), 8.0, 1e-9);
  // p outside [0, 1] clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Histogram, RenderContainsCounts) {
  auto h = u::Histogram::linear(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.25);
  const auto text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);
}

// --------------------------------------------------------------- Table ---

TEST(Table, AlignsColumns) {
  u::Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  const auto text = t.to_string();
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("| name"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  u::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvQuotesSpecialCharacters) {
  u::Table t({"x"});
  t.add_row({"hello, world"});
  t.add_row({"with \"quotes\""});
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"with \"\"quotes\"\"\""), std::string::npos);
}

TEST(Table, AddRowValuesFormats) {
  u::Table t({"a", "b"});
  t.add_row_values({1.23456, 2.0}, 2);
  EXPECT_NE(t.to_string().find("1.23"), std::string::npos);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(u::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(u::fmt(2.0, 1), "2.0");
}

// --------------------------------------------------------- StringUtil ---

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = u::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtil, SplitLinesHandlesCrLfAndTrailingNewline) {
  const auto lines = u::split_lines("one\r\ntwo\nthree\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[2], "three");
}

TEST(StringUtil, TrimBothEnds) {
  EXPECT_EQ(u::trim("  hi \t\n"), "hi");
  EXPECT_EQ(u::trim(""), "");
  EXPECT_EQ(u::trim("   "), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(u::starts_with("#SBATCH --time", "#SBATCH"));
  EXPECT_FALSE(u::starts_with("#SB", "#SBATCH"));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(u::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(u::join({}, ","), "");
}

TEST(StringUtil, ReplaceAll) {
  EXPECT_EQ(u::replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(u::replace_all("abc", "x", "y"), "abc");
  EXPECT_EQ(u::replace_all("abc", "", "y"), "abc");
}
