// Tests for the concurrent serving subsystem (core/serve/): the encoding
// cache, the micro-batched PredictionService with background retrain and
// atomic model swap, and the ServingSession replay modes. The
// concurrency-heavy cases here are the payload of the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/online.hpp"
#include "core/serve/encoding_cache.hpp"
#include "core/serve/prediction_service.hpp"
#include "core/serve/serving_session.hpp"
#include "tensor/tensor.hpp"
#include "trace/workload.hpp"

namespace core = prionn::core;
namespace serve = prionn::core::serve;
namespace tr = prionn::trace;

namespace {

core::PredictorOptions tiny_predictor(core::Transform t =
                                          core::Transform::kSimple) {
  core::PredictorOptions o;
  o.image.rows = o.image.cols = 16;
  o.image.transform = t;
  o.runtime_bins = 64;
  o.io_bins = 16;
  o.epochs = 2;
  o.predict_io = true;
  return o;
}

std::vector<tr::JobRecord> tiny_jobs(std::size_t n) {
  tr::WorkloadGenerator gen(tr::WorkloadOptions::cab(n + n / 8));
  auto jobs = tr::completed_jobs(gen.generate());
  jobs.resize(std::min(jobs.size(), n));
  return jobs;
}

serve::ServiceOptions tiny_service(core::Transform t =
                                       core::Transform::kSimple) {
  serve::ServiceOptions o;
  o.predictor = tiny_predictor(t);
  o.protocol.retrain_interval = 20;
  o.protocol.train_window = 60;
  o.protocol.embedding_corpus = 60;
  o.protocol.min_initial_completions = 15;
  return o;
}

}  // namespace

// -------------------------------------------------------- encoding cache ---

TEST(EncodingCache, HitRefreshesAndEvictsLru) {
  serve::EncodingCache cache(2);
  cache.insert("a", prionn::tensor::Tensor({1}, 1.0f));
  cache.insert("b", prionn::tensor::Tensor({1}, 2.0f));
  ASSERT_NE(cache.find("a"), nullptr);  // refresh: "b" is now LRU
  cache.insert("c", prionn::tensor::Tensor({1}, 3.0f));
  EXPECT_EQ(cache.find("b"), nullptr);  // evicted
  ASSERT_NE(cache.find("a"), nullptr);
  EXPECT_FLOAT_EQ(cache.find("a")->data()[0], 1.0f);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GE(cache.hits(), 3u);
  EXPECT_GE(cache.misses(), 1u);
}

TEST(EncodingCache, ZeroCapacityDisables) {
  serve::EncodingCache cache(0);
  cache.insert("a", prionn::tensor::Tensor({1}, 1.0f));
  EXPECT_EQ(cache.find("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EncodingCache, ClearDropsEverything) {
  serve::EncodingCache cache(8);
  cache.insert("a", prionn::tensor::Tensor({1}, 1.0f));
  cache.insert("b", prionn::tensor::Tensor({1}, 2.0f));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find("a"), nullptr);
}

// ------------------------------------------------------- options validate ---

TEST(ServeOptions, ValidateRejectsDegenerateParameters) {
  serve::ServiceOptions o = tiny_service();
  o.batching.max_batch = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = tiny_service();
  o.batching.queue_capacity = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o = tiny_service();
  o.protocol.retrain_interval = 0;
  EXPECT_THROW(serve::PredictionService{o}, std::invalid_argument);
}

TEST(OnlineProtocolOptions, SharedValidationGuardsEveryConsumer) {
  core::OnlineOptions o;
  o.train_window = 0;
  EXPECT_THROW(core::OnlineTrainer{o}, std::invalid_argument);
  o = {};
  o.embedding_corpus = 0;
  EXPECT_THROW(core::OnlineTrainer{o}, std::invalid_argument);
}

// ------------------------------------------------- deterministic replay ----

// The acceptance bar for the whole subsystem: replaying a trace through
// the micro-batched service (deterministic mode) must be prediction-for-
// prediction identical to the sequential OnlineTrainer at a fixed seed.
// Batching, the encoding cache, and the shadow-train/swap cycle may only
// change the wall clock, never the arithmetic.
TEST(ServingSession, DeterministicReplayEqualsOnlineTrainer) {
  const auto jobs = tiny_jobs(90);

  core::OnlineOptions online;
  static_cast<core::OnlineProtocolOptions&>(online) =
      tiny_service().protocol;
  online.predictor = tiny_predictor();
  auto sequential = core::OnlineTrainer(online).run(jobs);

  serve::SessionOptions session_options;
  session_options.service = tiny_service();
  session_options.mode = serve::ReplayMode::kDeterministic;
  serve::ServingSession session(session_options);
  const auto served = session.replay(jobs);

  EXPECT_GE(sequential.training_events, 2u);
  EXPECT_EQ(served.training_events, sequential.training_events);
  const auto nn = served.nn_predictions();
  ASSERT_EQ(nn.size(), sequential.predictions.size());
  for (std::size_t i = 0; i < nn.size(); ++i) {
    ASSERT_EQ(nn[i].has_value(), sequential.predictions[i].has_value())
        << "job " << i;
    if (!nn[i]) continue;
    // Bit-exact, not approximately equal.
    EXPECT_EQ(nn[i]->runtime_minutes,
              sequential.predictions[i]->runtime_minutes)
        << "job " << i;
    EXPECT_EQ(nn[i]->bytes_read, sequential.predictions[i]->bytes_read)
        << "job " << i;
    EXPECT_EQ(nn[i]->bytes_written,
              sequential.predictions[i]->bytes_written)
        << "job " << i;
  }
  // The workload's 65% script-repeat rate must show up as cache hits.
  EXPECT_GT(served.stats.cache_hits, 0u);
  EXPECT_GT(served.stats.batches, 0u);
  EXPECT_EQ(served.stats.served, jobs.size());
}

// Word2vec exercises the embedding fit inside the shadow retrain and the
// epoch-based cache invalidation that follows the swap.
TEST(ServingSession, DeterministicReplayEqualsOnlineTrainerWord2Vec) {
  const auto jobs = tiny_jobs(60);

  core::OnlineOptions online;
  static_cast<core::OnlineProtocolOptions&>(online) =
      tiny_service().protocol;
  online.predictor = tiny_predictor(core::Transform::kWord2Vec);
  auto sequential = core::OnlineTrainer(online).run(jobs);

  serve::SessionOptions session_options;
  session_options.service = tiny_service(core::Transform::kWord2Vec);
  session_options.mode = serve::ReplayMode::kDeterministic;
  serve::ServingSession session(session_options);
  const auto served = session.replay(jobs);

  EXPECT_GE(sequential.training_events, 1u);
  EXPECT_EQ(served.training_events, sequential.training_events);
  const auto nn = served.nn_predictions();
  ASSERT_EQ(nn.size(), sequential.predictions.size());
  for (std::size_t i = 0; i < nn.size(); ++i) {
    ASSERT_EQ(nn[i].has_value(), sequential.predictions[i].has_value());
    if (!nn[i]) continue;
    EXPECT_EQ(nn[i]->runtime_minutes,
              sequential.predictions[i]->runtime_minutes);
  }
}

// Cache on vs cache off must be indistinguishable in the answers — across
// model swaps too (an accepted retrain must not serve stale encodings).
TEST(ServingSession, EncodingCacheDoesNotChangePredictions) {
  const auto jobs = tiny_jobs(70);

  serve::SessionOptions with_cache;
  with_cache.service = tiny_service();
  serve::ServingSession cached(with_cache);
  const auto a = cached.replay(jobs);

  serve::SessionOptions without_cache;
  without_cache.service = tiny_service();
  without_cache.service.encoding_cache_capacity = 0;
  serve::ServingSession uncached(without_cache);
  const auto b = uncached.replay(jobs);

  EXPECT_GT(a.stats.swaps, 1u);       // the cache survived >= 1 swap
  EXPECT_GT(a.stats.cache_hits, 0u);  // and was actually used
  EXPECT_EQ(b.stats.cache_hits, 0u);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    EXPECT_EQ(a.predictions[i].source, b.predictions[i].source);
    EXPECT_EQ(a.predictions[i].value.runtime_minutes,
              b.predictions[i].value.runtime_minutes);
    EXPECT_EQ(a.predictions[i].value.bytes_read,
              b.predictions[i].value.bytes_read);
  }
}

// ------------------------------------------------------- concurrency ------

// The TSan payload: submissions from several threads race completions and
// background retrains (shadow train + model swap). Every future must
// resolve, and the books must balance.
TEST(PredictionService, ConcurrentSubmitSurvivesBackgroundRetrain) {
  const auto jobs = tiny_jobs(80);
  serve::ServiceOptions options = tiny_service();
  options.protocol.min_initial_completions = 10;
  options.protocol.retrain_interval = 10;
  options.background_retrain = true;
  serve::PredictionService service(options);

  // Seed the window so the first submissions already arm a retrain.
  for (std::size_t i = 0; i < 20; ++i) service.complete(jobs[i]);

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 15;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t k = 0; k < kPerThread; ++k) {
        const auto& job = jobs[(t * kPerThread + k) % jobs.size()];
        auto prediction = service.submit(job).get();
        EXPECT_GE(prediction.value.runtime_minutes, 1.0);
        // Interleave more completions to keep the trainer racing.
        service.complete(jobs[(k * 7 + t) % jobs.size()]);
      }
    });
  }
  for (auto& w : workers) w.join();
  service.flush();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.served, stats.submitted);
  EXPECT_EQ(stats.source_counts[0] + stats.source_counts[1] +
                stats.source_counts[2],
            stats.served);
  EXPECT_GE(service.training_events(), 1u);

  // After flush() the armed retrain has been published: a fresh
  // submission must now be served by the swapped-in neural net.
  const auto prediction = service.predict_now(jobs[0]);
  EXPECT_EQ(prediction.source, core::PredictionSource::kNeuralNet);
  EXPECT_GT(prediction.confidence, 0.0);
}

TEST(PredictionService, BackpressureShedsToFallbackChain) {
  serve::ServiceOptions options = tiny_service();
  options.batching.queue_capacity = 2;
  options.batching.max_batch = 64;
  options.batching.max_delay_us = 200000;  // park the batcher coalescing
  serve::PredictionService service(options);

  const auto jobs = tiny_jobs(16);
  std::vector<std::future<core::ProvenancedPrediction>> futures;
  futures.reserve(jobs.size());
  for (const auto& job : jobs) futures.push_back(service.submit(job));
  for (auto& f : futures) {
    const auto prediction = f.get();
    // Untrained service: everything resolves via the fallback chain.
    EXPECT_NE(prediction.source, core::PredictionSource::kNeuralNet);
    EXPECT_GE(prediction.value.runtime_minutes, 1.0);
  }
  const auto stats = service.stats();
  EXPECT_GT(stats.shed, 0u);
  EXPECT_EQ(stats.served, stats.submitted);
  EXPECT_LE(stats.max_queue_depth, 2u);
}

TEST(PredictionService, GuardRejectionKeepsLastGoodModelAndBenches) {
  serve::ServiceOptions options = tiny_service();
  options.background_retrain = false;
  options.min_holdback_accuracy = 1.1;  // unreachable: every retrain fails
  options.holdback_size = 4;
  options.max_consecutive_rejections = 2;
  serve::PredictionService service(options);

  const auto jobs = tiny_jobs(30);
  for (const auto& job : jobs) service.complete(job);
  EXPECT_FALSE(service.retrain_now());
  EXPECT_FALSE(service.retrain_now());

  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_retrains, 2u);
  EXPECT_EQ(stats.swaps, 0u);
  EXPECT_TRUE(stats.nn_benched);
  EXPECT_EQ(service.training_events(), 0u);

  // Benched != broken: submissions still get answers.
  const auto prediction = service.predict_now(jobs[0]);
  EXPECT_NE(prediction.source, core::PredictionSource::kNeuralNet);
  EXPECT_GE(prediction.value.runtime_minutes, 1.0);
}

TEST(PredictionService, RetrainNowRequiresManualMode) {
  serve::ServiceOptions options = tiny_service();
  options.background_retrain = true;
  serve::PredictionService service(options);
  EXPECT_THROW(service.retrain_now(), std::logic_error);
}

TEST(ServingSession, ConcurrentReplayServesEveryJob) {
  const auto jobs = tiny_jobs(60);
  serve::SessionOptions options;
  options.service = tiny_service();
  options.service.protocol.min_initial_completions = 10;
  options.service.protocol.retrain_interval = 15;
  options.mode = serve::ReplayMode::kConcurrent;
  serve::ServingSession session(options);
  const auto result = session.replay(jobs);

  ASSERT_EQ(result.predictions.size(), jobs.size());
  for (const auto& p : result.predictions)
    EXPECT_GE(p.value.runtime_minutes, 1.0);
  EXPECT_EQ(result.stats.served, result.stats.submitted);
}

// ----------------------------------------------- satellite: timings -------

TEST(OnlineResult, MonotonicTimingsAreConsistent) {
  const auto jobs = tiny_jobs(40);
  core::OnlineOptions options;
  options.predictor = tiny_predictor();
  options.min_initial_completions = 10;
  options.retrain_interval = 15;
  const auto result = core::OnlineTrainer(options).run(jobs);
  ASSERT_GE(result.training_events, 1u);
  EXPECT_GT(result.train_ns, 0u);
  EXPECT_GT(result.predict_ns, 0u);
  EXPECT_DOUBLE_EQ(result.train_seconds,
                   static_cast<double>(result.train_ns) / 1e9);
  EXPECT_DOUBLE_EQ(result.predict_seconds,
                   static_cast<double>(result.predict_ns) / 1e9);
}

// ------------------------------------- satellite: one batch predict path ---

TEST(Predictor, BatchedPredictionEqualsSingleItemWrappers) {
  const auto jobs = tiny_jobs(40);
  core::PrionnPredictor predictor{tiny_predictor()};
  predictor.train(jobs);

  std::vector<std::string> scripts;
  for (std::size_t i = 0; i < 10; ++i) scripts.push_back(jobs[i].script);
  const auto batched = predictor.predict_batch(scripts);
  ASSERT_EQ(batched.size(), scripts.size());
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    const auto single = predictor.predict_with_confidence(scripts[i]);
    EXPECT_EQ(batched[i].value.runtime_minutes,
              single.value.runtime_minutes);
    EXPECT_EQ(batched[i].value.bytes_read, single.value.bytes_read);
    EXPECT_EQ(batched[i].value.bytes_written, single.value.bytes_written);
    EXPECT_EQ(batched[i].runtime_confidence, single.runtime_confidence);
    EXPECT_EQ(batched[i].read_confidence, single.read_confidence);
    EXPECT_EQ(batched[i].write_confidence, single.write_confidence);
    EXPECT_GT(batched[i].runtime_confidence, 0.0);
    EXPECT_LE(batched[i].runtime_confidence, 1.0);
    const auto value_only = predictor.predict(scripts[i]);
    EXPECT_EQ(value_only.runtime_minutes, batched[i].value.runtime_minutes);
  }
}
