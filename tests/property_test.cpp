// Cross-module property-based tests: metamorphic and conservation
// invariants swept over randomised inputs (TEST_P over seeds/shapes).
// These complement the per-module unit tests by checking relations that
// must hold for *every* input, not just hand-picked ones.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/bins.hpp"
#include "embed/word2vec.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/pool.hpp"
#include "sched/burst.hpp"
#include "sched/cluster.hpp"
#include "sched/io_timeline.hpp"
#include "tensor/gemm.hpp"
#include "trace/workload.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using prionn::util::Rng;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

}  // namespace

// ------------------------------------------------ GEMM random fuzzing ---

class GemmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GemmFuzz, RandomShapesMatchNaive) {
  Rng rng(GetParam());
  const auto m = static_cast<std::size_t>(rng.uniform_int(1, 70));
  const auto k = static_cast<std::size_t>(rng.uniform_int(1, 300));
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 600));
  const auto a = random_vec(m * k, GetParam() + 1);
  const auto b = random_vec(k * n, GetParam() + 2);
  std::vector<float> c_fast(m * n, 0.0f), c_ref(m * n, 0.0f);
  prionn::tensor::gemm(m, k, n, 1.0f, a.data(), b.data(), 0.0f,
                       c_fast.data());
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c_ref[i * n + j] = acc;
    }
  for (std::size_t i = 0; i < c_fast.size(); ++i)
    ASSERT_NEAR(c_fast[i], c_ref[i], 1e-3f)
        << "shape " << m << "x" << k << "x" << n << " at " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmFuzz,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u,
                                           106u, 107u, 108u));

// ---------------------------------------- relative accuracy invariants ---

class AccuracyScale : public ::testing::TestWithParam<double> {};

TEST_P(AccuracyScale, ScaleInvariant) {
  // Eq. (1) is scale-free: accuracy(k*t, k*p) == accuracy(t, p) for k > 0.
  const double k = GetParam();
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 1000.0);
    const double p = rng.uniform(0.0, 1000.0);
    EXPECT_NEAR(prionn::util::relative_accuracy(k * t, k * p),
                prionn::util::relative_accuracy(t, p), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, AccuracyScale,
                         ::testing::Values(0.5, 2.0, 60.0, 1e6));

TEST(AccuracyProperties, SymmetricInArguments) {
  // max(t, p) in the denominator makes the metric symmetric.
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 100.0), p = rng.uniform(0.0, 100.0);
    EXPECT_NEAR(prionn::util::relative_accuracy(t, p),
                prionn::util::relative_accuracy(p, t), 1e-12);
  }
}

// -------------------------------------------------- network gradients ---

TEST(NetworkGradient, FullBackpropMatchesFiniteDifferenceOfLoss) {
  // End-to-end check: d(cross-entropy)/d(input) through a conv stack.
  Rng rng(9);
  prionn::nn::Network net;
  net.emplace<prionn::nn::Conv2d>(1, 2, 3, 3, 1, 1, rng);
  net.emplace<prionn::nn::Relu>();
  net.emplace<prionn::nn::MaxPool2d>(2);
  net.emplace<prionn::nn::Flatten>();
  net.emplace<prionn::nn::Dense>(2 * 4 * 4, 3, rng);

  prionn::tensor::Tensor x({2, 1, 8, 8});
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  const std::vector<std::uint32_t> y = {0, 2};

  const auto loss_of = [&](const prionn::tensor::Tensor& input) {
    auto logits = net.forward(input, false);
    return prionn::nn::softmax_cross_entropy(logits, y).value;
  };
  auto logits = net.forward(x, false);
  auto loss = prionn::nn::softmax_cross_entropy(logits, y);
  const auto grad_x = net.backward(loss.grad);

  constexpr float kEps = 1e-2f;
  for (std::size_t i = 0; i < x.size(); i += 11) {
    const float saved = x[i];
    x[i] = saved + kEps;
    const double up = loss_of(x);
    x[i] = saved - kEps;
    const double down = loss_of(x);
    x[i] = saved;
    EXPECT_NEAR(grad_x[i], (up - down) / (2.0 * kEps), 2e-2)
        << "input " << i;
  }
}

// -------------------------------------------------------- bins sweeps ---

class RuntimeBinSweep : public ::testing::TestWithParam<double> {};

TEST_P(RuntimeBinSweep, LabelDecodesWithinHalfMinute) {
  const prionn::core::RuntimeBins bins(960);
  const double minutes = GetParam();
  const double decoded = bins.minutes_of(bins.label_of(minutes));
  EXPECT_LE(std::abs(decoded - std::min(minutes, 959.0)), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Minutes, RuntimeBinSweep,
                         ::testing::Values(0.0, 0.4, 1.0, 44.0, 44.49,
                                           59.5, 100.0, 480.0, 959.0,
                                           959.4));

TEST(IoBinSweep, MonotoneOverWholeRange) {
  const prionn::core::IoBins bins(64, 1e4, 1e14);
  std::uint32_t last = 0;
  for (double b = 1.0; b < 1e15; b *= 1.31) {
    const auto label = bins.label_of(b);
    ASSERT_GE(label, last) << "at " << b;
    last = label;
  }
  EXPECT_EQ(last, 63u);
}

// -------------------------------------------------- timeline conservation ---

class TimelineMass : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineMass, TotalBytesConserved) {
  // Sum(series) * bucket == sum(bandwidth * duration): pro-rating must
  // neither create nor destroy IO volume.
  Rng rng(GetParam());
  prionn::sched::IoTimeline timeline(60.0);
  double expected = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double start = rng.uniform(0.0, 5000.0);
    const double duration = rng.uniform(1.0, 900.0);
    const double bw = rng.uniform(0.0, 1e6);
    timeline.add({start, start + duration, bw});
    expected += bw * duration;
  }
  double measured = 0.0;
  for (const double v : timeline.series()) measured += v * 60.0;
  EXPECT_NEAR(measured, expected, expected * 1e-9 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineMass,
                         ::testing::Values(11u, 12u, 13u, 14u));

// ---------------------------------------------- scheduler conservation ---

class SchedulerConservation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SchedulerConservation, WorkAndJobCountConserved) {
  Rng rng(GetParam());
  std::vector<prionn::sched::SimJob> jobs;
  double t = 0.0, node_seconds = 0.0;
  for (std::uint64_t i = 0; i < 150; ++i) {
    t += rng.exponential(0.05);
    prionn::sched::SimJob j;
    j.id = i;
    j.submit_time = t;
    j.nodes = static_cast<std::uint32_t>(rng.uniform_int(1, 12));
    j.runtime = rng.uniform(10.0, 400.0);
    j.believed_runtime = j.runtime * rng.uniform(1.0, 4.0);
    node_seconds += j.nodes * std::max(j.runtime, 1.0);
    jobs.push_back(j);
  }
  prionn::sched::ClusterSimulator sim({12, true});
  const auto schedule = sim.run(jobs);
  ASSERT_EQ(schedule.size(), jobs.size());  // every job completes once
  // Work conservation: the makespan cannot beat perfect packing.
  double makespan_end = 0.0, first_submit = jobs.front().submit_time;
  for (const auto& s : schedule) makespan_end = std::max(makespan_end, s.end_time);
  EXPECT_GE((makespan_end - first_submit) * 12.0, node_seconds * 0.999);
  // Runtimes preserved by the schedule.
  for (const auto& s : schedule)
    EXPECT_NEAR(s.end_time - s.start_time,
                std::max(jobs[s.id].runtime, 1.0), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerConservation,
                         ::testing::Values(21u, 22u, 23u));

// -------------------------------------------------- burst score duality ---

TEST(BurstScoreDuality, SwappingSeriesSwapsFalsePositivesAndNegatives) {
  Rng rng(31);
  std::vector<bool> a(400), b(400);
  for (std::size_t i = 0; i < 400; ++i) {
    a[i] = rng.bernoulli(0.08);
    b[i] = rng.bernoulli(0.08);
  }
  for (const std::size_t half : {0u, 2u, 7u}) {
    const auto ab = prionn::sched::score_bursts(a, b, half);
    const auto ba = prionn::sched::score_bursts(b, a, half);
    // An actual burst unmatched by prediction (FN) is exactly a predicted
    // burst unmatched by actual (FP) under the swapped roles. (True
    // positives do NOT swap: they count matched bursts of the respective
    // "actual" series, which differ.)
    EXPECT_EQ(ab.false_negatives, ba.false_positives);
    EXPECT_EQ(ab.false_positives, ba.false_negatives);
  }
}

// -------------------------------------------- embedding standardisation ---

TEST(EmbeddingStandardisation, FrequencyWeightedMomentsAreUnit) {
  prionn::trace::WorkloadGenerator gen(
      prionn::trace::WorkloadOptions::cab(120));
  const auto jobs = prionn::trace::completed_jobs(gen.generate());
  std::vector<std::string> corpus;
  for (const auto& j : jobs) corpus.push_back(j.script);

  prionn::embed::Word2VecOptions opts;
  opts.dimension = 4;
  opts.epochs = 1;
  const auto emb = prionn::embed::Word2VecTrainer(opts).train(corpus);

  // Recompute the frequency-weighted moments the trainer standardised.
  std::vector<std::vector<std::size_t>> docs;
  for (const auto& s : corpus)
    docs.push_back(prionn::embed::CharVocab::tokenize(s));
  const auto counts = prionn::embed::CharVocab::count_frequencies(docs);
  double total = 0.0;
  for (const auto c : counts) total += static_cast<double>(c);
  for (std::size_t d = 0; d < 4; ++d) {
    double mean = 0.0, var = 0.0;
    for (std::size_t t = 0; t < prionn::embed::CharVocab::kSize; ++t)
      mean += static_cast<double>(counts[t]) * emb.vector(t)[d];
    mean /= total;
    for (std::size_t t = 0; t < prionn::embed::CharVocab::kSize; ++t) {
      const double diff = emb.vector(t)[d] - mean;
      var += static_cast<double>(counts[t]) * diff * diff;
    }
    var /= total;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

// ------------------------------------------------- generator invariants ---

class GeneratorSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeeds, StructuralInvariantsHoldForAnySeed) {
  prionn::trace::WorkloadGenerator gen(
      prionn::trace::WorkloadOptions::cab(400, GetParam()));
  const auto jobs = gen.generate();
  ASSERT_EQ(jobs.size(), 400u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& j = jobs[i];
    if (i) {
      EXPECT_GE(j.submit_time, jobs[i - 1].submit_time);
    }
    EXPECT_FALSE(j.script.empty());
    EXPECT_GE(j.requested_nodes, 1u);
    EXPECT_LE(j.requested_minutes, 960.0);
    if (!j.canceled) {
      EXPECT_GE(j.runtime_minutes, 1.0);
      EXPECT_LE(j.runtime_minutes, 960.0);
      EXPECT_GT(j.bytes_read, 0.0);
      EXPECT_GT(j.bytes_written, 0.0);
      EXPECT_GE(j.start_time, j.submit_time);
      EXPECT_NEAR(j.end_time - j.start_time, j.runtime_minutes * 60.0,
                  1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeds,
                         ::testing::Values(1u, 42u, 999u, 31337u));
