// Tests for the cluster simulator, snapshot turnaround prediction, the IO
// timeline, and burst detection/scoring.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sched/burst.hpp"
#include "sched/cluster.hpp"
#include "sched/io_aware.hpp"
#include "sched/io_timeline.hpp"
#include "trace/workload.hpp"
#include "util/rng.hpp"

namespace sc = prionn::sched;

namespace {

sc::SimJob job(std::uint64_t id, double submit, std::uint32_t nodes,
               double runtime, double believed = -1.0) {
  return {id, submit, nodes, runtime, believed < 0.0 ? runtime : believed};
}

std::map<std::uint64_t, sc::ScheduledJob> by_id(
    const std::vector<sc::ScheduledJob>& xs) {
  std::map<std::uint64_t, sc::ScheduledJob> m;
  for (const auto& x : xs) m[x.id] = x;
  return m;
}

}  // namespace

// ---------------------------------------------------------- simulator ---

TEST(Cluster, SingleJobStartsImmediately) {
  sc::ClusterSimulator sim({4, true});
  const auto sched = sim.run({job(1, 10.0, 2, 100.0)});
  ASSERT_EQ(sched.size(), 1u);
  EXPECT_DOUBLE_EQ(sched[0].start_time, 10.0);
  EXPECT_DOUBLE_EQ(sched[0].end_time, 110.0);
  EXPECT_DOUBLE_EQ(sched[0].turnaround(), 100.0);
}

TEST(Cluster, ParallelJobsShareNodes) {
  sc::ClusterSimulator sim({4, true});
  const auto sched =
      by_id(sim.run({job(1, 0.0, 2, 100.0), job(2, 0.0, 2, 100.0)}));
  EXPECT_DOUBLE_EQ(sched.at(1).start_time, 0.0);
  EXPECT_DOUBLE_EQ(sched.at(2).start_time, 0.0);
}

TEST(Cluster, QueuedJobWaitsForNodes) {
  sc::ClusterSimulator sim({4, true});
  const auto sched =
      by_id(sim.run({job(1, 0.0, 4, 100.0), job(2, 1.0, 4, 50.0)}));
  EXPECT_DOUBLE_EQ(sched.at(2).start_time, 100.0);
  EXPECT_DOUBLE_EQ(sched.at(2).turnaround(), 149.0);
}

TEST(Cluster, FcfsOrderPreservedWithoutBackfillOpportunity) {
  sc::ClusterSimulator sim({2, true});
  const auto sched = by_id(sim.run({
      job(1, 0.0, 2, 100.0),
      job(2, 1.0, 2, 10.0),
      job(3, 2.0, 2, 10.0),
  }));
  EXPECT_DOUBLE_EQ(sched.at(2).start_time, 100.0);
  EXPECT_DOUBLE_EQ(sched.at(3).start_time, 110.0);
}

TEST(Cluster, EasyBackfillFillsHoles) {
  // Head job (2) needs the whole machine and must wait for job 1; a short
  // 1-node job (3) can run in the hole without delaying 2's reservation.
  sc::ClusterSimulator sim({4, true});
  const auto sched = by_id(sim.run({
      job(1, 0.0, 3, 100.0),
      job(2, 1.0, 4, 50.0),
      job(3, 2.0, 1, 50.0),
  }));
  EXPECT_DOUBLE_EQ(sched.at(3).start_time, 2.0);   // backfilled at submit
  EXPECT_DOUBLE_EQ(sched.at(2).start_time, 100.0);  // reservation kept
}

TEST(Cluster, NoBackfillWhenDisabled) {
  sc::ClusterSimulator sim({4, false});
  const auto sched = by_id(sim.run({
      job(1, 0.0, 3, 100.0),
      job(2, 1.0, 4, 50.0),
      job(3, 2.0, 1, 50.0),
  }));
  EXPECT_GE(sched.at(3).start_time, 100.0);  // strict FCFS behind job 2
}

TEST(Cluster, BackfillRespectsShadowTime) {
  // The backfill candidate (3) is long (believed): starting it would delay
  // the head job's reservation, so EASY must *not* start it in the hole —
  // it uses a node the head job needs at shadow time.
  sc::ClusterSimulator sim({4, true});
  const auto sched = by_id(sim.run({
      job(1, 0.0, 3, 100.0),
      job(2, 1.0, 4, 50.0),
      job(3, 2.0, 1, 500.0),
  }));
  EXPECT_GE(sched.at(3).start_time, 100.0);
}

TEST(Cluster, WrongBelievedRuntimeChangesBackfill) {
  // Same workload as above, but job 3 *claims* to be short (believed 10 s)
  // while actually running 500 s: EASY backfills it based on the claim and
  // the head job is delayed — the mechanism by which bad user estimates
  // hurt schedules (and PRIONN's motivation).
  sc::ClusterSimulator sim({4, true});
  const auto sched = by_id(sim.run({
      job(1, 0.0, 3, 100.0),
      job(2, 1.0, 4, 50.0),
      job(3, 2.0, 1, 500.0, 10.0),
  }));
  EXPECT_DOUBLE_EQ(sched.at(3).start_time, 2.0);
  EXPECT_GT(sched.at(2).start_time, 100.0);
}

TEST(Cluster, CapacityNeverExceeded) {
  // Property: reconstructing node usage from the schedule never exceeds
  // the machine size.
  prionn::util::Rng rng(5);
  std::vector<sc::SimJob> jobs;
  double t = 0.0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    t += rng.exponential(0.05);
    jobs.push_back(job(i, t, static_cast<std::uint32_t>(rng.uniform_int(1, 16)),
                       rng.uniform(10.0, 500.0)));
  }
  sc::ClusterSimulator sim({16, true});
  const auto sched = sim.run(jobs);
  ASSERT_EQ(sched.size(), jobs.size());

  std::vector<std::pair<double, std::int64_t>> events;
  for (const auto& s : sched) {
    const auto nodes = static_cast<std::int64_t>(jobs[s.id].nodes);
    events.emplace_back(s.start_time, nodes);
    events.emplace_back(s.end_time, -nodes);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              // Process releases before acquisitions at equal instants.
              return a.first < b.first ||
                     (a.first == b.first && a.second < b.second);
            });
  std::int64_t used = 0;
  for (const auto& [time, delta] : events) {
    used += delta;
    EXPECT_LE(used, 16);
    EXPECT_GE(used, 0);
  }
}

TEST(Cluster, StartNeverBeforeSubmit) {
  prionn::util::Rng rng(6);
  std::vector<sc::SimJob> jobs;
  double t = 0.0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    t += rng.exponential(0.1);
    jobs.push_back(job(i, t, 1 + static_cast<std::uint32_t>(i % 4),
                       rng.uniform(5.0, 100.0)));
  }
  sc::ClusterSimulator sim({8, true});
  for (const auto& s : sim.run(jobs))
    EXPECT_GE(s.start_time, s.submit_time);
}

TEST(Cluster, OutOfOrderSubmissionThrows) {
  sc::ClusterSimulator sim({4, true});
  sim.submit(job(1, 100.0, 1, 10.0));
  EXPECT_THROW(sim.submit(job(2, 50.0, 1, 10.0)), std::invalid_argument);
}

TEST(Cluster, OversizedJobThrows) {
  sc::ClusterSimulator sim({4, true});
  EXPECT_THROW(sim.run({job(1, 0.0, 5, 10.0)}), std::invalid_argument);
}

TEST(Cluster, ZeroNodeClusterRejected) {
  EXPECT_THROW(sc::ClusterSimulator({0, true}), std::invalid_argument);
}

TEST(Cluster, DrainLeavesIdleSystem) {
  sc::ClusterSimulator sim({2, true});
  sim.submit(job(1, 0.0, 1, 50.0));
  sim.submit(job(2, 0.0, 1, 70.0));
  sim.drain();
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.completed().size(), 2u);
  EXPECT_EQ(sim.free_nodes(), 2u);
}

// ------------------------------------------- snapshot turnaround (4.2) ---

TEST(Snapshot, PerfectPredictionsValidAndExactForFinalJob) {
  // Even with the actual runtimes, a snapshot cannot anticipate *future*
  // arrivals, and EASY backfill is non-monotone in the job set (Graham's
  // scheduling anomalies: an extra job can speed up or slow down another
  // job's completion). What IS guaranteed: every prediction is positive
  // and finite, and the prediction for the final submission — after which
  // nothing else arrives — reproduces the realised turnaround exactly.
  prionn::util::Rng rng(7);
  std::vector<sc::SimJob> jobs;
  double t = 0.0;
  for (std::uint64_t i = 0; i < 120; ++i) {
    t += rng.exponential(0.02);
    jobs.push_back(job(i, t, static_cast<std::uint32_t>(rng.uniform_int(1, 8)),
                       rng.uniform(30.0, 900.0)));
  }
  const auto actual_runtime = [&](std::uint64_t id) {
    return jobs[id].runtime;
  };

  sc::ClusterSimulator sim({8, true});
  std::vector<double> predicted(jobs.size());
  for (const auto& j : jobs) {
    sim.submit(j);
    predicted[j.id] = sim.snapshot_turnaround(j.id, actual_runtime);
    EXPECT_GE(predicted[j.id], j.runtime - 2.0) << "job " << j.id;
    EXPECT_LT(predicted[j.id], 1e9) << "job " << j.id;
  }
  sim.drain();
  const std::uint64_t last = jobs.back().id;
  for (const auto& s : sim.completed()) {
    if (s.id == last) {
      EXPECT_NEAR(predicted[last], s.turnaround(), 2.0);
    }
  }
}

TEST(Snapshot, ExactWhenNoContention) {
  // On an uncontended machine every snapshot prediction is exact: the job
  // starts immediately and runs for its (perfectly predicted) runtime.
  sc::ClusterSimulator sim({64, true});
  std::vector<sc::SimJob> jobs;
  for (std::uint64_t i = 0; i < 20; ++i)
    jobs.push_back(job(i, static_cast<double>(i), 1, 100.0 + 5.0 * i));
  std::vector<double> predicted(jobs.size());
  for (const auto& j : jobs) {
    sim.submit(j);
    predicted[j.id] =
        sim.snapshot_turnaround(j.id, [&](std::uint64_t id) {
          return jobs[id].runtime;
        });
  }
  sim.drain();
  for (const auto& s : sim.completed())
    EXPECT_NEAR(predicted[s.id], s.turnaround(), 1.5);
}

TEST(Snapshot, UnknownJobReturnsNegative) {
  sc::ClusterSimulator sim({4, true});
  sim.submit(job(1, 0.0, 1, 10.0));
  EXPECT_LT(sim.snapshot_turnaround(999, [](std::uint64_t) { return 1.0; }),
            0.0);
}

TEST(Snapshot, DoesNotPerturbLiveSimulation) {
  sc::ClusterSimulator sim({4, true});
  sim.submit(job(1, 0.0, 2, 100.0));
  sim.submit(job(2, 1.0, 4, 50.0));
  const auto before_queue = sim.queued_count();
  const auto before_now = sim.now();
  (void)sim.snapshot_turnaround(2, [](std::uint64_t) { return 1000.0; });
  EXPECT_EQ(sim.queued_count(), before_queue);
  EXPECT_DOUBLE_EQ(sim.now(), before_now);
  sim.drain();
  EXPECT_EQ(sim.completed().size(), 2u);
}

TEST(Snapshot, BadPredictionsShiftTurnaround) {
  // If predictions say the running job is nearly done, the queued job's
  // predicted turnaround must be far smaller than reality.
  sc::ClusterSimulator sim({4, true});
  sim.submit(job(1, 0.0, 4, 1000.0));
  sim.submit(job(2, 1.0, 4, 10.0));
  const double optimistic =
      sim.snapshot_turnaround(2, [](std::uint64_t) { return 5.0; });
  const double realistic =
      sim.snapshot_turnaround(2, [](std::uint64_t id) {
        return id == 1 ? 1000.0 : 10.0;
      });
  EXPECT_LT(optimistic, realistic);
}

// ----------------------------------------------------------- timeline ---

TEST(IoTimeline, SingleIntervalFullBuckets) {
  sc::IoTimeline tl(60.0);
  tl.add({0.0, 120.0, 100.0});
  ASSERT_EQ(tl.buckets(), 2u);
  EXPECT_DOUBLE_EQ(tl.series()[0], 100.0);
  EXPECT_DOUBLE_EQ(tl.series()[1], 100.0);
}

TEST(IoTimeline, PartialBucketsProRated) {
  sc::IoTimeline tl(60.0);
  tl.add({30.0, 90.0, 100.0});
  ASSERT_EQ(tl.buckets(), 2u);
  EXPECT_DOUBLE_EQ(tl.series()[0], 50.0);
  EXPECT_DOUBLE_EQ(tl.series()[1], 50.0);
}

TEST(IoTimeline, OverlappingIntervalsSum) {
  sc::IoTimeline tl(60.0);
  tl.add({0.0, 60.0, 10.0});
  tl.add({0.0, 60.0, 30.0});
  EXPECT_DOUBLE_EQ(tl.series()[0], 40.0);
}

TEST(IoTimeline, DegenerateIntervalsIgnored) {
  sc::IoTimeline tl(60.0);
  tl.add({100.0, 100.0, 50.0});
  tl.add({100.0, 50.0, 50.0});
  tl.add({0.0, 60.0, 0.0});
  EXPECT_EQ(tl.buckets(), 0u);
}

TEST(IoTimeline, NegativeStartClamped) {
  sc::IoTimeline tl(60.0);
  tl.add({-30.0, 60.0, 100.0});
  ASSERT_EQ(tl.buckets(), 1u);
  EXPECT_DOUBLE_EQ(tl.series()[0], 100.0);
}

TEST(IoTimeline, ResizeAligns) {
  sc::IoTimeline tl(60.0);
  tl.add({0.0, 60.0, 5.0});
  tl.resize(4);
  EXPECT_EQ(tl.buckets(), 4u);
  EXPECT_DOUBLE_EQ(tl.series()[3], 0.0);
}

TEST(IoTimeline, RejectsBadBucketSize) {
  EXPECT_THROW(sc::IoTimeline(0.0), std::invalid_argument);
}

// -------------------------------------------------------------- bursts ---

TEST(Burst, ThresholdIsMeanPlusSigma) {
  const std::vector<double> series = {0, 0, 0, 0, 10};
  sc::BurstDetector det({1.0});
  const double mean = 2.0, sd = 4.0;
  EXPECT_NEAR(det.threshold_of(series), mean + sd, 1e-9);
}

TEST(Burst, DetectFlagsAboveThreshold) {
  sc::BurstDetector det;
  const auto bursts = det.detect({1.0, 5.0, 2.0}, 2.5);
  EXPECT_FALSE(bursts[0]);
  EXPECT_TRUE(bursts[1]);
  EXPECT_FALSE(bursts[2]);
}

TEST(Burst, PerfectPredictionPerfectScore) {
  const std::vector<bool> b = {false, true, false, true, false};
  const auto s = sc::score_bursts(b, b, 0);
  EXPECT_EQ(s.true_positives, 2u);
  EXPECT_EQ(s.false_positives, 0u);
  EXPECT_EQ(s.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(s.sensitivity(), 1.0);
  EXPECT_DOUBLE_EQ(s.precision(), 1.0);
}

TEST(Burst, WindowToleranceMatchesNearbyPrediction) {
  const std::vector<bool> actual = {false, false, true, false, false};
  const std::vector<bool> predicted = {true, false, false, false, false};
  // Offset of 2 buckets: missed with half_window 1, hit with 2.
  const auto tight = sc::score_bursts(actual, predicted, 1);
  EXPECT_EQ(tight.true_positives, 0u);
  EXPECT_EQ(tight.false_negatives, 1u);
  EXPECT_EQ(tight.false_positives, 1u);
  const auto loose = sc::score_bursts(actual, predicted, 2);
  EXPECT_EQ(loose.true_positives, 1u);
  EXPECT_EQ(loose.false_positives, 0u);
}

TEST(Burst, SensitivityPrecisionMonotoneInWindow) {
  // Widening the window can only help — the property behind the rising
  // curves of Figs. 13 and 15.
  prionn::util::Rng rng(8);
  std::vector<bool> actual(500), predicted(500);
  for (std::size_t i = 0; i < 500; ++i) {
    actual[i] = rng.bernoulli(0.05);
    predicted[i] = rng.bernoulli(0.05);
  }
  double last_sens = -1.0, last_prec = -1.0;
  for (const std::size_t half : {0u, 2u, 5u, 10u, 30u}) {
    const auto s = sc::score_bursts(actual, predicted, half);
    EXPECT_GE(s.sensitivity(), last_sens);
    EXPECT_GE(s.precision(), last_prec);
    last_sens = s.sensitivity();
    last_prec = s.precision();
  }
}

TEST(Burst, NoActualBurstsGivesZeroSensitivityDenominator) {
  const std::vector<bool> none(10, false);
  const std::vector<bool> some = {true, false, false, false, false,
                                  false, false, false, false, false};
  const auto s = sc::score_bursts(none, some, 1);
  EXPECT_DOUBLE_EQ(s.sensitivity(), 0.0);
  EXPECT_EQ(s.false_positives, 1u);
}

// ------------------------------------------------- IO-aware scheduler ---

namespace {

sc::IoSimJob io_job(std::uint64_t id, double submit, std::uint32_t nodes,
                    double runtime, double bw) {
  sc::IoSimJob j;
  j.base = job(id, submit, nodes, runtime);
  j.predicted_bandwidth = bw;
  j.actual_bandwidth = bw;
  return j;
}

}  // namespace

TEST(IoAware, ZeroCapBehavesLikePlainScheduler) {
  sc::IoAwareSimulator sim({4, 0.0, true, 3600.0});
  const auto result = sim.run({io_job(1, 0.0, 2, 100.0, 1e9),
                               io_job(2, 0.0, 2, 100.0, 1e9)});
  ASSERT_EQ(result.schedule.size(), 2u);
  for (const auto& s : result.schedule) EXPECT_DOUBLE_EQ(s.start_time, 0.0);
  EXPECT_EQ(result.oversubscribed_minutes, 0u);  // cap disabled
}

TEST(IoAware, CapSerialisesIoHeavyJobs) {
  // Two IO-heavy jobs that fit node-wise but together exceed the cap:
  // the IO-aware policy must run them one after the other.
  sc::IoAwareSimulator sim({8, 100.0, true, 3600.0});
  const auto result = sim.run({io_job(1, 0.0, 2, 120.0, 80.0),
                               io_job(2, 0.0, 2, 120.0, 80.0)});
  ASSERT_EQ(result.schedule.size(), 2u);
  const double s0 = result.schedule[0].start_time;
  const double s1 = result.schedule[1].start_time;
  EXPECT_NEAR(std::abs(s1 - s0), 120.0, 1.0);
  EXPECT_EQ(result.oversubscribed_minutes, 0u);
}

TEST(IoAware, LowIoJobsBackfillPastIoBlockedHead) {
  // Head blocked on IO; a later low-IO job can still run.
  sc::IoAwareSimulator sim({8, 100.0, true, 3600.0});
  const auto result = sim.run({
      io_job(1, 0.0, 2, 300.0, 90.0),  // running, nearly saturates the cap
      io_job(2, 1.0, 2, 100.0, 50.0),  // head: blocked on IO
      io_job(3, 2.0, 2, 100.0, 5.0),   // low IO: should backfill
  });
  std::map<std::uint64_t, sc::ScheduledJob> by;
  for (const auto& s : result.schedule) by[s.id] = s;
  EXPECT_GE(by.at(2).start_time, 300.0);  // waits for job 1's bandwidth
  EXPECT_NEAR(by.at(3).start_time, 2.0, 1.0);
}

TEST(IoAware, StarvationGuardReleasesHead) {
  // A single job whose predicted IO alone exceeds the cap must still run
  // once the hold bound expires.
  sc::IoAwareSimulator sim({4, 10.0, true, /*max_io_hold=*/60.0});
  const auto result = sim.run({io_job(1, 0.0, 1, 50.0, 1e6)});
  ASSERT_EQ(result.schedule.size(), 1u);
  EXPECT_LE(result.schedule[0].start_time, 61.0);
}

TEST(IoAware, ReducesOversubscriptionVsObliviousPolicy) {
  // Property at workload scale: with accurate predictions, the IO-aware
  // policy produces no more over-cap minutes than the oblivious one.
  prionn::util::Rng rng(11);
  std::vector<sc::IoSimJob> jobs;
  double t = 0.0;
  for (std::uint64_t i = 0; i < 150; ++i) {
    t += rng.exponential(0.01);
    jobs.push_back(io_job(i, t,
                          static_cast<std::uint32_t>(rng.uniform_int(1, 4)),
                          rng.uniform(60.0, 1200.0),
                          rng.bernoulli(0.25) ? rng.uniform(40.0, 90.0)
                                              : rng.uniform(0.1, 5.0)));
  }
  const double cap = 120.0;
  sc::IoAwareSimulator oblivious({16, 0.0, true, 3600.0});
  sc::IoAwareSimulator aware({16, cap, true, 3600.0});
  const auto r_oblivious = oblivious.run(jobs);
  const auto r_aware = aware.run(jobs);
  const auto over_oblivious =
      sc::count_over_cap_minutes(r_oblivious.actual_io_series, cap);
  const auto over_aware =
      sc::count_over_cap_minutes(r_aware.actual_io_series, cap);
  EXPECT_LE(over_aware, over_oblivious);
  // Both policies complete every job.
  EXPECT_EQ(r_aware.schedule.size(), jobs.size());
  EXPECT_EQ(r_oblivious.schedule.size(), jobs.size());
  // The IO-aware policy trades some wait time for the IO guarantee.
  EXPECT_GE(r_aware.mean_wait_seconds, r_oblivious.mean_wait_seconds - 1.0);
}

TEST(IoAware, RejectsBadOptions) {
  EXPECT_THROW(sc::IoAwareSimulator({0, 0.0, true, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(sc::IoAwareSimulator({4, -1.0, true, 1.0}),
               std::invalid_argument);
}

TEST(IoAware, CountOverCapMinutes) {
  EXPECT_EQ(sc::count_over_cap_minutes({1.0, 5.0, 3.0}, 2.0), 2u);
  EXPECT_EQ(sc::count_over_cap_minutes({}, 2.0), 0u);
}

// -------------------------------------------- end-to-end trace replay ---

TEST(Cluster, ReplaysGeneratedTrace) {
  prionn::trace::WorkloadGenerator gen(
      prionn::trace::WorkloadOptions::cab(400));
  const auto jobs = prionn::trace::completed_jobs(gen.generate());
  std::vector<sc::SimJob> sim_jobs;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    sim_jobs.push_back(job(i, jobs[i].submit_time, jobs[i].requested_nodes,
                           jobs[i].runtime_minutes * 60.0,
                           jobs[i].requested_minutes * 60.0));
  sc::ClusterSimulator sim({1296, true});
  const auto sched = sim.run(sim_jobs);
  EXPECT_EQ(sched.size(), jobs.size());
  for (const auto& s : sched) {
    EXPECT_GE(s.start_time, s.submit_time);
    EXPECT_GT(s.end_time, s.start_time);
  }
}
