// Tests for the synthetic trace substrate: the application catalogue, the
// workload generator's calibration against the paper's Cab statistics, the
// Table-1 feature parser, trace statistics and persistence.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "trace/app_catalog.hpp"
#include "trace/features.hpp"
#include "trace/stats.hpp"
#include "trace/store.hpp"
#include "trace/swf.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"

namespace tr = prionn::trace;

// ------------------------------------------------------------ catalog ---

TEST(AppCatalog, DefaultCatalogWellFormed) {
  const auto& cat = tr::default_catalog();
  EXPECT_GE(cat.size(), 10u);
  for (const auto& fam : cat) {
    EXPECT_FALSE(fam.name.empty());
    EXPECT_FALSE(fam.size_levels.empty());
    EXPECT_FALSE(fam.step_levels.empty());
    EXPECT_FALSE(fam.node_levels.empty());
    EXPECT_GT(fam.base_minutes, 0.0);
  }
}

TEST(AppCatalog, SdscCatalogHasNoIo) {
  for (const auto& fam : tr::sdsc_catalog()) {
    EXPECT_EQ(fam.read_bytes_per_size3, 0.0);
    EXPECT_EQ(fam.write_bytes_per_step, 0.0);
  }
}

TEST(AppCatalog, NominalRuntimeScalesWithSteps) {
  const auto& fam = tr::default_catalog()[0];
  tr::JobConfig lo, hi;
  lo.family = hi.family = 0;
  lo.size = hi.size = fam.size_levels[0];
  lo.nodes = hi.nodes = fam.node_levels[0];
  lo.steps = fam.step_levels.front();
  hi.steps = fam.step_levels.back();
  EXPECT_GT(fam.nominal_minutes(hi), fam.nominal_minutes(lo));
}

TEST(AppCatalog, RuntimeCappedAt16Hours) {
  const auto& cat = tr::default_catalog();
  for (std::size_t f = 0; f < cat.size(); ++f) {
    tr::JobConfig c;
    c.family = f;
    c.size = cat[f].size_levels.back();
    c.steps = cat[f].step_levels.back();
    c.nodes = cat[f].node_levels.front();
    EXPECT_LE(cat[f].nominal_minutes(c), 960.0);
  }
}

TEST(AppCatalog, RenderedScriptIsDeterministic) {
  prionn::util::Rng rng(1);
  const auto& cat = tr::default_catalog();
  const auto config = tr::sample_config(cat, 0, rng);
  const auto a = tr::render_script(cat, config, "user001", "g01");
  const auto b = tr::render_script(cat, config, "user001", "g01");
  EXPECT_EQ(a, b);
}

TEST(AppCatalog, RenderedScriptLooksLikeSlurm) {
  prionn::util::Rng rng(2);
  const auto& cat = tr::default_catalog();
  const auto config = tr::sample_config(cat, 3, rng);
  const auto script = tr::render_script(cat, config, "user042", "g07");
  EXPECT_NE(script.find("#!/bin/bash"), std::string::npos);
  EXPECT_NE(script.find("#SBATCH --nodes="), std::string::npos);
  EXPECT_NE(script.find("#SBATCH --time="), std::string::npos);
  EXPECT_NE(script.find("srun"), std::string::npos);
  EXPECT_NE(script.find("user042"), std::string::npos);
}

TEST(AppCatalog, SampleConfigStaysOnLevels) {
  prionn::util::Rng rng(3);
  const auto& cat = tr::default_catalog();
  for (int i = 0; i < 200; ++i) {
    const std::size_t f = static_cast<std::size_t>(i) % cat.size();
    const auto c = tr::sample_config(cat, f, rng);
    const auto& fam = cat[f];
    EXPECT_NE(std::find(fam.size_levels.begin(), fam.size_levels.end(),
                        c.size),
              fam.size_levels.end());
    EXPECT_NE(std::find(fam.step_levels.begin(), fam.step_levels.end(),
                        c.steps),
              fam.step_levels.end());
    EXPECT_NE(std::find(fam.node_levels.begin(), fam.node_levels.end(),
                        c.nodes),
              fam.node_levels.end());
    EXPECT_EQ(c.tasks, c.nodes * fam.tasks_per_node);
    EXPECT_GE(c.requested_minutes, 15u);
    EXPECT_LE(c.requested_minutes, 960u);
  }
}

// ---------------------------------------------------------- generator ---

namespace {

std::vector<tr::JobRecord> small_trace(std::size_t n = 2000,
                                       std::uint64_t seed = 2016) {
  tr::WorkloadGenerator gen(tr::WorkloadOptions::cab(n, seed));
  return gen.generate();
}

}  // namespace

TEST(Workload, GeneratesRequestedCount) {
  const auto jobs = small_trace(500);
  EXPECT_EQ(jobs.size(), 500u);
}

TEST(Workload, SubmitTimesSorted) {
  const auto jobs = small_trace(1000);
  for (std::size_t i = 1; i < jobs.size(); ++i)
    EXPECT_GE(jobs[i].submit_time, jobs[i - 1].submit_time);
}

TEST(Workload, DeterministicForSeed) {
  const auto a = small_trace(300, 7), b = small_trace(300, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].script, b[i].script);
    EXPECT_EQ(a[i].runtime_minutes, b[i].runtime_minutes);
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
  }
}

TEST(Workload, CancelFractionApproximatesPaper) {
  const auto jobs = small_trace(4000);
  std::size_t canceled = 0;
  for (const auto& j : jobs) canceled += j.canceled;
  // Paper: 29,291 / 295,077 ~ 9.9%.
  EXPECT_NEAR(static_cast<double>(canceled) / jobs.size(), 0.099, 0.03);
}

TEST(Workload, ScriptsRepeatLikeCab) {
  const auto jobs = small_trace(4000);
  const auto unique = tr::unique_script_count(jobs);
  // Cab: 97k unique over 295k jobs — roughly one third. Allow a wide band.
  const double ratio = static_cast<double>(unique) / jobs.size();
  EXPECT_GT(ratio, 0.1);
  EXPECT_LT(ratio, 0.6);
}

TEST(Workload, RuntimeDistributionCalibratedToFig8a) {
  const auto jobs = small_trace(6000);
  const auto s = tr::summarize(jobs);
  // Paper: mean ~44 minutes, about half of jobs below one hour.
  EXPECT_NEAR(s.runtime_minutes.mean, 44.0, 12.0);
  EXPECT_LT(s.runtime_minutes.median, 60.0);
  const auto runtimes = tr::runtimes_of(jobs);
  EXPECT_LE(prionn::util::max_of(runtimes), 960.0);
  EXPECT_GE(prionn::util::min_of(runtimes), 1.0);
}

TEST(Workload, UserRequestsOverestimateLikeCab) {
  const auto jobs = small_trace(6000);
  const auto s = tr::summarize(jobs);
  // Paper section 1: mean error 172 minutes, ~24% relative accuracy.
  EXPECT_GT(s.user_request_mean_error_minutes, 60.0);
  EXPECT_LT(s.user_request_mean_error_minutes, 320.0);
  EXPECT_GT(s.user_request_mean_relative_accuracy, 0.12);
  EXPECT_LT(s.user_request_mean_relative_accuracy, 0.45);
}

TEST(Workload, IoBandwidthHeavyTailed) {
  const auto jobs = small_trace(6000);
  const auto s = tr::summarize(jobs);
  // Fig. 9a: mean bandwidth orders of magnitude above the median.
  EXPECT_GT(s.read_bandwidth.mean, 10.0 * s.read_bandwidth.median);
  EXPECT_GT(s.write_bandwidth.mean, 2.0 * s.write_bandwidth.median);
}

TEST(Workload, GroundTruthFollowsScriptParameters) {
  // Jobs with identical scripts must have close runtimes (same config,
  // only the generator's noise differs).
  const auto jobs = small_trace(3000);
  std::unordered_map<std::string, std::vector<double>> by_script;
  for (const auto& j : jobs)
    if (!j.canceled) by_script[j.script].push_back(j.runtime_minutes);
  std::size_t checked = 0;
  for (const auto& [script, runtimes] : by_script) {
    if (runtimes.size() < 3) continue;
    const double m = prionn::util::mean(runtimes);
    const double sd = prionn::util::stddev(runtimes);
    EXPECT_LT(sd, std::max(2.0, 0.3 * m)) << "script group too noisy";
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(Workload, CompletedJobsDropsCanceled) {
  const auto jobs = small_trace(2000);
  const auto completed = tr::completed_jobs(jobs);
  EXPECT_LT(completed.size(), jobs.size());
  for (const auto& j : completed) EXPECT_FALSE(j.canceled);
}

TEST(Workload, SdscPresetsDiffer) {
  tr::WorkloadGenerator g95(tr::WorkloadOptions::sdsc95(800));
  tr::WorkloadGenerator g96(tr::WorkloadOptions::sdsc96(800));
  const auto s95 = tr::summarize(g95.generate());
  const auto s96 = tr::summarize(g96.generate());
  EXPECT_EQ(s95.canceled_jobs, 0u);
  EXPECT_EQ(s96.canceled_jobs, 0u);
  EXPECT_GT(s95.runtime_minutes.mean, 20.0);  // longer 1990s jobs
}

TEST(Workload, RejectsBadOptions) {
  tr::WorkloadOptions zero_jobs;
  zero_jobs.jobs = 0;
  EXPECT_THROW(tr::WorkloadGenerator{zero_jobs}, std::invalid_argument);
  tr::WorkloadOptions zero_users;
  zero_users.users = 0;
  EXPECT_THROW(tr::WorkloadGenerator{zero_users}, std::invalid_argument);
}

// -------------------------------------------------------- feature parse ---

TEST(Features, ParsesRenderedScript) {
  prionn::util::Rng rng(4);
  const auto& cat = tr::default_catalog();
  const auto config = tr::sample_config(cat, 1, rng);
  const auto script = tr::render_script(cat, config, "user007", "g03");
  const auto f = tr::parse_script(script);
  EXPECT_NEAR(f.requested_hours, config.requested_minutes / 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(f.requested_nodes, config.nodes);
  EXPECT_DOUBLE_EQ(f.requested_tasks, config.tasks);
  EXPECT_EQ(f.user, "user007");
  EXPECT_EQ(f.group, "g03");
  EXPECT_EQ(f.account, cat[1].account);
  EXPECT_EQ(f.job_name, cat[1].name + "_s" + std::to_string(config.size));
  EXPECT_NE(f.working_dir.find("/p/lscratchd/user007"), std::string::npos);
  EXPECT_NE(f.submission_dir.find("/g/g03/user007"), std::string::npos);
}

TEST(Features, MissingFieldsKeepDefaults) {
  const auto f = tr::parse_script("#!/bin/bash\necho hi\n");
  EXPECT_DOUBLE_EQ(f.requested_hours, 0.0);
  EXPECT_DOUBLE_EQ(f.requested_nodes, 1.0);
  EXPECT_TRUE(f.user.empty());
}

TEST(Features, WalltimeFormats) {
  const auto hours = [](const std::string& t) {
    return tr::parse_script("#SBATCH --time=" + t + "\n").requested_hours;
  };
  EXPECT_NEAR(hours("02:30:00"), 2.5, 1e-9);
  EXPECT_NEAR(hours("45:00"), 0.75, 1e-9);
  EXPECT_NEAR(hours("90"), 1.5, 1e-9);
}

TEST(Features, SbatchValueBothSeparators) {
  const auto a = tr::parse_script("#SBATCH --nodes=4\n");
  const auto b = tr::parse_script("#SBATCH --nodes 4\n");
  EXPECT_DOUBLE_EQ(a.requested_nodes, 4.0);
  EXPECT_DOUBLE_EQ(b.requested_nodes, 4.0);
}

TEST(Features, PrefixOptionsDoNotCollide) {
  // --ntasks-per-node must not be parsed as --ntasks.
  const auto f = tr::parse_script("#SBATCH --ntasks-per-node=16\n");
  EXPECT_DOUBLE_EQ(f.requested_tasks, 1.0);
}

TEST(Features, EncoderBuildsFixedWidthRows) {
  tr::FeatureEncoder enc;
  tr::ScriptFeatures f;
  f.requested_hours = 2.0;
  f.user = "alice";
  const auto row1 = enc.encode(f);
  EXPECT_EQ(row1.size(), tr::ScriptFeatures::kCount);
  EXPECT_DOUBLE_EQ(row1[0], 2.0);
  f.user = "bob";
  const auto row2 = enc.encode(f);
  EXPECT_NE(row1[3], row2[3]);  // distinct users, distinct codes
  f.user = "alice";
  const auto row3 = enc.encode(f);
  EXPECT_DOUBLE_EQ(row1[3], row3[3]);  // stable across calls
}

TEST(Features, EncodeJobsProducesDataset) {
  const auto jobs = tr::completed_jobs(small_trace(300));
  tr::FeatureEncoder enc;
  const auto data = enc.encode_jobs(
      jobs, [](const tr::JobRecord& j) { return j.runtime_minutes; });
  EXPECT_EQ(data.rows(), jobs.size());
  EXPECT_EQ(data.features(), tr::ScriptFeatures::kCount);
  EXPECT_DOUBLE_EQ(data.target(0), jobs[0].runtime_minutes);
}

// ---------------------------------------------------------------- stats ---

TEST(TraceStats, HistogramsCoverData) {
  const auto jobs = small_trace(1500);
  const auto rh = tr::runtime_histogram(jobs);
  EXPECT_GT(rh.total(), 0u);
  const auto rbh = tr::read_bandwidth_histogram(jobs);
  const auto wbh = tr::write_bandwidth_histogram(jobs);
  EXPECT_EQ(rbh.total(), wbh.total());
}

TEST(TraceStats, JobRecordBandwidthHelpers) {
  tr::JobRecord j;
  j.runtime_minutes = 2.0;
  j.bytes_read = 1200.0;
  j.bytes_written = 600.0;
  EXPECT_DOUBLE_EQ(j.read_bandwidth(), 10.0);
  EXPECT_DOUBLE_EQ(j.write_bandwidth(), 5.0);
  j.runtime_minutes = 0.0;
  EXPECT_DOUBLE_EQ(j.read_bandwidth(), 0.0);
}

// ---------------------------------------------------------------- store ---

TEST(Store, RoundTripPreservesEverything) {
  const auto jobs = small_trace(50);
  std::stringstream ss;
  tr::save_trace(ss, jobs);
  const auto loaded = tr::load_trace(ss);
  ASSERT_EQ(loaded.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(loaded[i].job_id, jobs[i].job_id);
    EXPECT_EQ(loaded[i].user, jobs[i].user);
    EXPECT_EQ(loaded[i].script, jobs[i].script);
    EXPECT_EQ(loaded[i].canceled, jobs[i].canceled);
    EXPECT_DOUBLE_EQ(loaded[i].submit_time, jobs[i].submit_time);
    EXPECT_DOUBLE_EQ(loaded[i].runtime_minutes, jobs[i].runtime_minutes);
    EXPECT_DOUBLE_EQ(loaded[i].bytes_read, jobs[i].bytes_read);
  }
}

// ----------------------------------------------------------------- SWF ---

TEST(Swf, ExportedTraceParsesBack) {
  const auto jobs = small_trace(80);
  std::stringstream ss;
  tr::save_swf(ss, jobs);
  const auto loaded = tr::load_swf(ss);
  ASSERT_EQ(loaded.size(), jobs.size());
  // SWF carries the numeric schedule fields; verify them per job id.
  std::unordered_map<std::uint64_t, const tr::JobRecord*> by_id;
  for (const auto& j : loaded) by_id[j.job_id] = &j;
  for (const auto& j : jobs) {
    const auto* l = by_id.at(j.job_id);
    EXPECT_EQ(l->canceled, j.canceled);
    EXPECT_NEAR(l->submit_time, j.submit_time, 1.0);  // integer seconds
    if (!j.canceled) {
      EXPECT_NEAR(l->runtime_minutes, j.runtime_minutes, 1.0 / 60.0 + 1e-9);
      EXPECT_EQ(l->requested_tasks, j.requested_tasks);
    }
  }
}

TEST(Swf, ImportSynthesizesScripts) {
  const auto jobs = small_trace(40);
  std::stringstream ss;
  tr::save_swf(ss, jobs);
  const auto loaded = tr::load_swf(ss);
  for (const auto& j : loaded) {
    EXPECT_NE(j.script.find("#!/bin/bash"), std::string::npos);
    EXPECT_NE(j.script.find("#SBATCH"), std::string::npos);
  }
  // Same (user, app) pairs reproduce structurally identical scripts: the
  // repeat structure PRIONN relies on survives the SWF round trip.
  EXPECT_LT(tr::unique_script_count(loaded), loaded.size());
}

TEST(Swf, ImportWithoutScripts) {
  const auto jobs = small_trace(10);
  std::stringstream ss;
  tr::save_swf(ss, jobs);
  tr::SwfOptions opts;
  opts.synthesize_scripts = false;
  const auto loaded = tr::load_swf(ss, opts);
  for (const auto& j : loaded) EXPECT_TRUE(j.script.empty());
}

TEST(Swf, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "; header comment\n"
      "\n"
      "1 100 5 600 16 -1 -1 16 1200 -1 1 3 2 4 1 1 -1 -1\n");
  const auto jobs = tr::load_swf(ss);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].job_id, 1u);
  EXPECT_DOUBLE_EQ(jobs[0].submit_time, 100.0);
  EXPECT_DOUBLE_EQ(jobs[0].runtime_minutes, 10.0);
  EXPECT_DOUBLE_EQ(jobs[0].requested_minutes, 20.0);
  EXPECT_EQ(jobs[0].user, "user3");
  EXPECT_FALSE(jobs[0].canceled);
}

TEST(Swf, CanceledStatusRespected) {
  std::stringstream ss("7 50 -1 -1 -1 -1 -1 8 600 -1 5 1 1 1 1 1 -1 -1\n");
  const auto jobs = tr::load_swf(ss);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_TRUE(jobs[0].canceled);
}

TEST(Swf, MalformedLineThrows) {
  std::stringstream ss("1 2 3\n");
  EXPECT_THROW(tr::load_swf(ss), std::runtime_error);
}

TEST(Swf, OutputSortedBySubmitTime) {
  std::stringstream ss(
      "2 500 0 60 1 -1 -1 1 120 -1 1 1 1 1 1 1 -1 -1\n"
      "1 100 0 60 1 -1 -1 1 120 -1 1 1 1 1 1 1 -1 -1\n");
  const auto jobs = tr::load_swf(ss);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_LE(jobs[0].submit_time, jobs[1].submit_time);
}

TEST(Store, RejectsWrongHeader) {
  std::stringstream ss("NOT A TRACE\n0\n");
  EXPECT_THROW(tr::load_trace(ss), std::runtime_error);
}

TEST(Store, RejectsTruncatedPayload) {
  const auto jobs = small_trace(3);
  std::stringstream ss;
  tr::save_trace(ss, jobs);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(tr::load_trace(cut), std::runtime_error);
}
