// Telemetry substrate tests: registry exactness under concurrency, span
// nesting and ring wraparound, event-log schema round-trips, and the
// exporter formats. Everything here must pass in both build flavours —
// the classes compile regardless of PRIONN_OBS; only the macro tests are
// gated on the compile-time switch.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "obs/exporters.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace obs = prionn::obs;

namespace {

TEST(ObsRegistry, CounterGaugeBasics) {
  obs::Registry registry;
  auto& c = registry.counter("c_total", "a counter");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  auto& g = registry.gauge("g", "a gauge");
  g.set(2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  // Same name resolves to the same object.
  EXPECT_EQ(&registry.counter("c_total"), &c);
  registry.reset_all();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsRegistry, TypeMismatchThrows) {
  obs::Registry registry;
  registry.counter("metric");
  EXPECT_THROW(registry.gauge("metric"), std::logic_error);
  EXPECT_THROW(registry.latency("metric"), std::logic_error);
  registry.histogram("hist", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("hist", {1.0, 3.0}), std::logic_error);
  // Identical bounds re-register fine.
  EXPECT_NO_THROW(registry.histogram("hist", {1.0, 2.0}));
}

TEST(ObsRegistry, ConcurrentCountersAreExact) {
  obs::Registry registry;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncrements = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      // Each thread resolves its own handles, racing the registration
      // path as well as the increment path.
      auto& c = registry.counter("hits_total");
      auto& h = registry.histogram("lat", {10.0, 100.0});
      for (std::size_t i = 0; i < kIncrements; ++i) {
        c.inc();
        h.observe(static_cast<double>(i % 128));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(registry.counter("hits_total").value(), kThreads * kIncrements);
  auto& h = registry.histogram("lat", {10.0, 100.0});
  EXPECT_EQ(h.count(), kThreads * kIncrements);
  std::uint64_t in_buckets = 0;
  for (std::size_t i = 0; i < h.buckets(); ++i)
    in_buckets += h.bucket_count(i);
  EXPECT_EQ(in_buckets, kThreads * kIncrements);
}

TEST(ObsHistogram, BucketPlacementAndQuantile) {
  obs::LatencyHistogram h({10.0, 20.0, 40.0});
  h.observe(5.0);
  h.observe(15.0);
  h.observe(30.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 0u);  // +Inf
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 50.0);
  // Median target 1.5 observations: half-way through bucket (10, 20].
  EXPECT_NEAR(h.quantile(0.5), 15.0, 1e-9);
  EXPECT_LE(h.quantile(0.0), 10.0);
  EXPECT_NEAR(h.quantile(1.0), 40.0, 1e-9);
}

TEST(ObsHistogram, EmptyQuantileIsNaN) {
  obs::LatencyHistogram h({1.0});
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
}

TEST(ObsHistogram, OverflowReportsLargestFiniteBound) {
  obs::LatencyHistogram h({1.0, 2.0});
  h.observe(1000.0);  // lands in +Inf
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(ObsHistogram, MergeAccumulatesAndChecksBounds) {
  obs::LatencyHistogram a({10.0, 20.0});
  obs::LatencyHistogram b({10.0, 20.0});
  a.observe(5.0);
  b.observe(15.0);
  b.observe(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 120.0);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(1), 1u);
  EXPECT_EQ(a.bucket_count(2), 1u);
  obs::LatencyHistogram c({10.0});
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(ObsHistogram, BadBoundsThrow) {
  EXPECT_THROW(obs::LatencyHistogram({}), std::invalid_argument);
  EXPECT_THROW(obs::LatencyHistogram({2.0, 1.0}), std::invalid_argument);
}

TEST(ObsTrace, SpanNestingRecordsDepth) {
  auto& buffer = obs::TraceBuffer::global();
  obs::set_enabled(true);
  buffer.clear();
  {
    obs::Span outer("outer");
    obs::Span inner("inner");
  }
  const auto spans = buffer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Destruction order: the inner span completes first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[1].duration_ns, spans[0].duration_ns);
  buffer.clear();
}

TEST(ObsTrace, RingWrapsKeepingNewestOldestFirst) {
  obs::TraceBuffer ring(4);
  const char* names[] = {"s0", "s1", "s2", "s3", "s4", "s5"};
  for (std::uint64_t i = 0; i < 6; ++i) {
    obs::SpanRecord r;
    r.name = names[i];
    r.start_ns = i;
    ring.record(r);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 6u);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_STREQ(spans.front().name, "s2");
  EXPECT_STREQ(spans.back().name, "s5");
}

TEST(ObsTrace, RuntimeDisableSkipsCollection) {
  auto& buffer = obs::TraceBuffer::global();
  buffer.clear();
  obs::set_enabled(false);
  { obs::Span span("invisible"); }
  EXPECT_EQ(buffer.size(), 0u);
  obs::set_enabled(true);
  { obs::Span span("visible"); }
  EXPECT_EQ(buffer.size(), 1u);
  buffer.clear();
}

TEST(ObsTrace, ChromeExportEmitsBeginEndPairs) {
  obs::TraceBuffer ring(8);
  for (std::uint64_t i = 0; i < 2; ++i) {
    obs::SpanRecord r;
    r.name = "work";
    r.start_ns = 1000 * (i + 1);
    r.duration_ns = 500;
    r.thread_id = 7;
    ring.record(r);
  }
  std::ostringstream os;
  ring.export_chrome_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t begins = 0, ends = 0, lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_TRUE(line.starts_with("{\"name\":\"work\""));
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"ph\":\"B\"") != std::string::npos) ++begins;
    if (line.find("\"ph\":\"E\"") != std::string::npos) ++ends;
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
}

TEST(ObsEvents, RetrainRoundTrip) {
  obs::RetrainEvent e;
  e.window_id = 3;
  e.job_index = 412;
  e.window_size = 500;
  e.holdback_size = 32;
  e.loss = {0.25, 1.5, 2.75};
  e.holdback_accuracy = 0.875;
  e.accepted = false;
  e.rollback = true;
  e.benched = true;
  e.checkpoint_generation = 2;
  e.duration_ms = 123.5;
  obs::EventLog log;
  log.append(e);
  ASSERT_EQ(log.size(), 1u);
  const auto parsed = obs::EventLog::parse_retrain(log.lines()[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->window_id, e.window_id);
  EXPECT_EQ(parsed->job_index, e.job_index);
  EXPECT_EQ(parsed->window_size, e.window_size);
  EXPECT_EQ(parsed->holdback_size, e.holdback_size);
  EXPECT_EQ(parsed->loss, e.loss);
  EXPECT_DOUBLE_EQ(parsed->holdback_accuracy, e.holdback_accuracy);
  EXPECT_EQ(parsed->accepted, e.accepted);
  EXPECT_EQ(parsed->rollback, e.rollback);
  EXPECT_EQ(parsed->benched, e.benched);
  EXPECT_EQ(parsed->checkpoint_generation, e.checkpoint_generation);
  EXPECT_DOUBLE_EQ(parsed->duration_ms, e.duration_ms);
  // The discriminator keeps the parsers from crossing record types.
  EXPECT_FALSE(obs::EventLog::parse_window(log.lines()[0]).has_value());
  EXPECT_FALSE(obs::EventLog::parse_ingest(log.lines()[0]).has_value());
}

TEST(ObsEvents, WindowRoundTrip) {
  obs::WindowEvent e;
  e.window_id = 9;
  e.first_job_index = 900;
  e.predictions = 100;
  e.from_neural_net = 60;
  e.from_random_forest = 30;
  e.from_requested = 10;
  e.checkpoint_generation = 4;
  obs::EventLog log;
  log.append(e);
  const auto parsed = obs::EventLog::parse_window(log.lines()[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->window_id, e.window_id);
  EXPECT_EQ(parsed->first_job_index, e.first_job_index);
  EXPECT_EQ(parsed->predictions, e.predictions);
  EXPECT_EQ(parsed->from_neural_net, e.from_neural_net);
  EXPECT_EQ(parsed->from_random_forest, e.from_random_forest);
  EXPECT_EQ(parsed->from_requested, e.from_requested);
  EXPECT_EQ(parsed->checkpoint_generation, e.checkpoint_generation);
  EXPECT_FALSE(obs::EventLog::parse_retrain(log.lines()[0]).has_value());
}

TEST(ObsEvents, IngestRoundTrip) {
  obs::IngestEvent e;
  e.source = "trace \"a\".dat";  // exercises string escaping
  e.rows_accepted = 990;
  e.rows_quarantined = 10;
  e.quarantined_fraction = 0.01;
  obs::EventLog log;
  log.append(e);
  const auto parsed = obs::EventLog::parse_ingest(log.lines()[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->source, e.source);
  EXPECT_EQ(parsed->rows_accepted, e.rows_accepted);
  EXPECT_EQ(parsed->rows_quarantined, e.rows_quarantined);
  EXPECT_DOUBLE_EQ(parsed->quarantined_fraction, e.quarantined_fraction);
}

TEST(ObsEvents, ExportJsonlOneRecordPerLine) {
  obs::EventLog log;
  log.append(obs::IngestEvent{});
  log.append(obs::WindowEvent{});
  std::ostringstream os;
  log.export_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    ++lines;
    EXPECT_TRUE(obs::json_parse(line).has_value()) << line;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(ObsEvents, MalformedLinesParseToNullopt) {
  EXPECT_FALSE(obs::EventLog::parse_retrain("not json").has_value());
  EXPECT_FALSE(obs::EventLog::parse_retrain("{\"type\":\"retrain\"}")
                   .has_value());  // missing fields
  EXPECT_FALSE(obs::EventLog::parse_ingest("{}").has_value());
}

TEST(ObsExporters, PrometheusGolden) {
  obs::Registry registry;
  registry.counter("demo_requests_total", "requests served").inc(3);
  registry.gauge("demo_temperature", "degrees").set(2.5);
  auto& h = registry.histogram("demo_latency", {1.0, 2.0}, "latency");
  h.observe(0.5);
  h.observe(1.5);
  h.observe(5.0);
  const std::string expected =
      "# HELP demo_requests_total requests served\n"
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total 3\n"
      "# HELP demo_temperature degrees\n"
      "# TYPE demo_temperature gauge\n"
      "demo_temperature 2.5\n"
      "# HELP demo_latency latency\n"
      "# TYPE demo_latency histogram\n"
      "demo_latency_bucket{le=\"1\"} 1\n"
      "demo_latency_bucket{le=\"2\"} 2\n"
      "demo_latency_bucket{le=\"+Inf\"} 3\n"
      "demo_latency_sum 7\n"
      "demo_latency_count 3\n";
  EXPECT_EQ(obs::prometheus_text(registry), expected);
}

TEST(ObsExporters, JsonSnapshotLinesParse) {
  obs::Registry registry;
  registry.counter("c_total").inc(2);
  auto& h = registry.latency("lat_ns");
  h.observe(5000.0);
  std::istringstream is(obs::json_snapshot(registry));
  std::string line;
  std::size_t lines = 0;
  bool saw_histogram = false;
  while (std::getline(is, line)) {
    ++lines;
    const auto parsed = obs::json_parse(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    if (obs::json_string_field(*parsed, "kind") == "histogram") {
      saw_histogram = true;
      EXPECT_EQ(obs::json_number_field(*parsed, "count"), 1.0);
    }
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_TRUE(saw_histogram);
}

TEST(ObsExporters, ExportTelemetryFilesWritesAllFour) {
  namespace fs = std::filesystem;
  const std::string stem =
      (fs::temp_directory_path() / "prionn_obs_test_export").string();
  obs::Registry registry;
  registry.counter("c_total").inc();
  obs::EventLog events;
  events.append(obs::IngestEvent{});
  obs::TraceBuffer spans(4);
  obs::export_telemetry_files(stem, registry, events, spans);
  for (const char* suffix :
       {".prom", ".metrics.jsonl", ".events.jsonl", ".trace.jsonl"}) {
    const std::string path = stem + suffix;
    EXPECT_TRUE(fs::exists(path)) << path;
    fs::remove(path);
  }
}

#if PRIONN_OBS_ENABLED

TEST(ObsMacros, CounterMacroHitsGlobalRegistry) {
  auto& c = obs::registry().counter("obs_test_macro_total");
  const std::uint64_t before = c.value();
  PRIONN_OBS_INC("obs_test_macro_total", "test counter");
  PRIONN_OBS_INC("obs_test_macro_total", "test counter");
  PRIONN_OBS_ADD("obs_test_macro_total", "test counter", 3);
  EXPECT_EQ(c.value(), before + 5);
}

TEST(ObsMacros, EmitRespectsRuntimeSwitch) {
  auto& log = obs::event_log();
  log.clear();
  obs::set_enabled(false);
  obs::emit(obs::IngestEvent{});
  EXPECT_EQ(log.size(), 0u);
  obs::set_enabled(true);
  obs::emit(obs::IngestEvent{});
  EXPECT_EQ(log.size(), 1u);
  log.clear();
}

#endif  // PRIONN_OBS_ENABLED

}  // namespace
