// Regression tests for the finite-loss contract: adversarial script-image
// batches (all-zero, huge-magnitude, NaN-poisoned) must either train to a
// finite loss or throw nn::TrainingDiverged at the loss — NaN must never
// propagate into predictions. Divergence is a *recoverable* fault (the
// resilient serving layer rolls back to the last good snapshot), which is
// why these are exception tests rather than death tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/script_image.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace {

using prionn::core::ScriptImageMapper;
using prionn::core::ScriptImageOptions;
using prionn::core::Transform;
using prionn::nn::Network;
using prionn::tensor::Tensor;

constexpr std::size_t kGrid = 8;
constexpr std::size_t kClasses = 4;

Network tiny_classifier() {
  prionn::util::Rng rng(7);
  Network net;
  net.emplace<prionn::nn::Flatten>();
  net.emplace<prionn::nn::Dense>(kGrid * kGrid, 16, rng);
  net.emplace<prionn::nn::Relu>();
  net.emplace<prionn::nn::Dense>(16, kClasses, rng);
  return net;
}

Tensor script_batch(const std::vector<std::string>& scripts) {
  const ScriptImageMapper mapper(
      ScriptImageOptions{kGrid, kGrid, Transform::kBinary});
  return mapper.map_batch_2d(scripts);
}

std::vector<std::uint32_t> cycling_labels(std::size_t n) {
  std::vector<std::uint32_t> labels(n);
  for (std::size_t i = 0; i < n; ++i)
    labels[i] = static_cast<std::uint32_t>(i % kClasses);
  return labels;
}

prionn::nn::FitOptions fit_options() {
  prionn::nn::FitOptions options;
  options.epochs = 5;
  options.batch_size = 4;
  return options;
}

TEST(FiniteGuardTest, AllZeroImagesTrainToFiniteLossAndFinitePredictions) {
  // Empty scripts map to all-space grids, i.e. all-zero binary images.
  const std::vector<std::string> scripts(8, "");
  const Tensor batch = script_batch(scripts);
  for (std::size_t i = 0; i < batch.size(); ++i) ASSERT_EQ(batch[i], 0.0f);

  Network net = tiny_classifier();
  prionn::nn::Adam opt(1e-3);
  const auto report =
      net.fit(batch, cycling_labels(scripts.size()), opt, fit_options());
  for (const double loss : report.epoch_loss)
    EXPECT_TRUE(std::isfinite(loss)) << "epoch loss diverged";

  const Tensor probs = net.predict_probabilities(batch);
  for (std::size_t i = 0; i < probs.size(); ++i)
    EXPECT_TRUE(std::isfinite(probs[i])) << "prediction " << i;
}

TEST(FiniteGuardTest, NanPoisonedImagesTripTheLossGuard) {
  std::vector<std::string> scripts(8, "#!/bin/bash\nsrun ./app\n");
  Tensor batch = script_batch(scripts);
  batch[3] = std::numeric_limits<float>::quiet_NaN();
  batch[batch.size() - 1] = std::numeric_limits<float>::quiet_NaN();

  Network net = tiny_classifier();
  prionn::nn::Adam opt(1e-3);
  const auto labels = cycling_labels(scripts.size());
  EXPECT_THROW(net.fit(batch, labels, opt, fit_options()),
               prionn::nn::TrainingDiverged);
}

TEST(FiniteGuardTest, HugeMagnitudeImagesThrowInsteadOfPoisoningWeights) {
  std::vector<std::string> scripts(8, "#!/bin/bash\n");
  Tensor batch = script_batch(scripts);
  for (std::size_t i = 0; i < batch.size(); ++i) batch[i] = 1e30f;

  // The first batches stay representable, but the gradient steps blow the
  // weights up until the logits overflow float; the loss guard must stop
  // training at that point rather than let NaN weights serve predictions.
  Network net = tiny_classifier();
  prionn::nn::Sgd opt(0.1);
  const auto labels = cycling_labels(scripts.size());
  prionn::nn::FitOptions options = fit_options();
  options.epochs = 50;
  EXPECT_THROW(net.fit(batch, labels, opt, options),
               prionn::nn::TrainingDiverged);
}

}  // namespace
