// Tests for PRIONN's core: value bins, the script-to-image mapping with
// all four transforms, the model factory, the predictor facade, the online
// trainer, and the phase-2 pipeline helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/bins.hpp"
#include "core/model_zoo.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "core/predictor.hpp"
#include "core/script_image.hpp"
#include "embed/word2vec.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"

namespace core = prionn::core;
namespace tr = prionn::trace;

// ----------------------------------------------------------------- bins ---

TEST(RuntimeBins, PaperConfigurationRoundTrips) {
  core::RuntimeBins bins(960);
  EXPECT_EQ(bins.bins(), 960u);
  EXPECT_EQ(bins.label_of(0.0), 0u);
  EXPECT_EQ(bins.label_of(44.4), 44u);
  EXPECT_EQ(bins.label_of(44.6), 45u);
  EXPECT_EQ(bins.label_of(959.0), 959u);
  EXPECT_EQ(bins.label_of(5000.0), 959u);  // clamped at the 16 h cap
  EXPECT_DOUBLE_EQ(bins.minutes_of(44), 44.0);
}

TEST(RuntimeBins, NegativeClampsToZero) {
  core::RuntimeBins bins(960);
  EXPECT_EQ(bins.label_of(-5.0), 0u);
}

TEST(IoBins, MonotoneAndRoundTripWithinBinWidth) {
  core::IoBins bins(64, 1e4, 1e14);
  std::uint32_t last = 0;
  for (double b = 1e5; b < 1e13; b *= 3.7) {
    const auto label = bins.label_of(b);
    EXPECT_GE(label, last);
    last = label;
    // Decoding must land within one bin width (factor ~1.43 for 64 bins
    // over 10 decades).
    const double decoded = bins.bytes_of(label);
    EXPECT_LT(std::abs(std::log(decoded / b)), std::log(1e10) / 64.0);
  }
}

TEST(IoBins, EdgesClamp) {
  core::IoBins bins(64, 1e4, 1e14);
  EXPECT_EQ(bins.label_of(0.0), 0u);
  EXPECT_EQ(bins.label_of(1e20), 63u);
}

TEST(Bins, RejectInvalid) {
  EXPECT_THROW(core::RuntimeBins(0), std::invalid_argument);
  EXPECT_THROW(core::IoBins(0), std::invalid_argument);
  EXPECT_THROW(core::IoBins(8, 10.0, 1.0), std::invalid_argument);
}

// --------------------------------------------------------- script image ---

namespace {

prionn::embed::CharEmbedding tiny_embedding(std::size_t dim = 4) {
  std::vector<float> table(prionn::embed::CharVocab::kSize * dim);
  for (std::size_t i = 0; i < table.size(); ++i)
    table[i] = static_cast<float>(i % 7) * 0.1f;
  return {dim, std::move(table)};
}

}  // namespace

TEST(ScriptImage, GridPadsAndCrops) {
  core::ScriptImageOptions opts;
  opts.rows = 4;
  opts.cols = 6;
  opts.transform = core::Transform::kBinary;
  const core::ScriptImageMapper mapper(opts);
  const auto grid = mapper.to_grid("ab\nlongerline\n");
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0], "ab    ");
  EXPECT_EQ(grid[1], "longer");  // cropped at 6 columns
  EXPECT_EQ(grid[2], "      ");  // padded empty line
}

TEST(ScriptImage, BinaryTransformSeparatesWhitespace) {
  core::ScriptImageOptions opts;
  opts.rows = opts.cols = 4;
  opts.transform = core::Transform::kBinary;
  const core::ScriptImageMapper mapper(opts);
  const auto img = mapper.map_2d("a b\n");
  EXPECT_EQ(mapper.channels(), 1u);
  EXPECT_EQ(img.shape(), (prionn::tensor::Shape{1, 4, 4}));
  EXPECT_EQ(img.at(0, 0, 0), 1.0f);  // 'a'
  EXPECT_EQ(img.at(0, 0, 1), 0.0f);  // space
  EXPECT_EQ(img.at(0, 0, 2), 1.0f);  // 'b'
}

TEST(ScriptImage, SimpleTransformIsLosslessPerCharacter) {
  core::ScriptImageOptions opts;
  opts.rows = opts.cols = 4;
  opts.transform = core::Transform::kSimple;
  const core::ScriptImageMapper mapper(opts);
  const auto img = mapper.map_2d("ab\n");
  const float a = img.at(0, 0, 0), b = img.at(0, 0, 1);
  EXPECT_NE(a, b);
  EXPECT_NEAR(a, 97.0f / 127.0f, 1e-6f);
  EXPECT_GE(a, 0.0f);
  EXPECT_LE(b, 1.0f);
}

TEST(ScriptImage, OneHotTransformSetsExactlyOneChannel) {
  core::ScriptImageOptions opts;
  opts.rows = opts.cols = 2;
  opts.transform = core::Transform::kOneHot;
  const core::ScriptImageMapper mapper(opts);
  EXPECT_EQ(mapper.channels(), 128u);
  const auto img = mapper.map_2d("A\n");
  float total = 0.0f;
  for (std::size_t c = 0; c < 128; ++c) total += img.at(c, 0, 0);
  EXPECT_FLOAT_EQ(total, 1.0f);
  EXPECT_FLOAT_EQ(img.at(65, 0, 0), 1.0f);
}

TEST(ScriptImage, Word2VecTransformUsesEmbedding) {
  core::ScriptImageOptions opts;
  opts.rows = opts.cols = 2;
  opts.transform = core::Transform::kWord2Vec;
  const core::ScriptImageMapper mapper(opts, tiny_embedding(4));
  EXPECT_EQ(mapper.channels(), 4u);
  const auto img = mapper.map_2d("x");
  const auto embedding = tiny_embedding(4);  // vector_of() returns a span into this
  const auto expected = embedding.vector_of('x');
  for (std::size_t d = 0; d < 4; ++d)
    EXPECT_FLOAT_EQ(img.at(d, 0, 0), expected[d]);
}

TEST(ScriptImage, Word2VecWithoutEmbeddingThrows) {
  core::ScriptImageOptions opts;
  opts.transform = core::Transform::kWord2Vec;
  EXPECT_THROW(core::ScriptImageMapper{opts}, std::invalid_argument);
}

TEST(ScriptImage, OneDimensionalIsFlattenedTwoDimensional) {
  core::ScriptImageOptions opts;
  opts.rows = 3;
  opts.cols = 4;
  opts.transform = core::Transform::kSimple;
  const core::ScriptImageMapper mapper(opts);
  const auto img2 = mapper.map_2d("ab\ncd\n");
  const auto img1 = mapper.map_1d("ab\ncd\n");
  EXPECT_EQ(img1.shape(), (prionn::tensor::Shape{1, 12}));
  for (std::size_t i = 0; i < img1.size(); ++i) EXPECT_EQ(img1[i], img2[i]);
}

TEST(ScriptImage, BatchMatchesSingle) {
  core::ScriptImageOptions opts;
  opts.rows = opts.cols = 8;
  opts.transform = core::Transform::kSimple;
  const core::ScriptImageMapper mapper(opts);
  const std::vector<std::string> scripts = {"one\n", "two two\n", "#!x\n"};
  const auto batch = mapper.map_batch_2d(scripts);
  EXPECT_EQ(batch.dim(0), 3u);
  for (std::size_t s = 0; s < scripts.size(); ++s) {
    const auto single = mapper.map_2d(scripts[s]);
    for (std::size_t i = 0; i < single.size(); ++i)
      ASSERT_EQ(batch[s * single.size() + i], single[i]);
  }
}

TEST(ScriptImage, TransformNames) {
  EXPECT_EQ(core::transform_name(core::Transform::kBinary), "binary");
  EXPECT_EQ(core::transform_name(core::Transform::kWord2Vec), "word2vec");
}

// ------------------------------------------------------------ model zoo ---

class ModelZooKinds : public ::testing::TestWithParam<core::ModelKind> {};

TEST_P(ModelZooKinds, BuildsAndPropagatesShape) {
  core::ModelConfig cfg;
  cfg.kind = GetParam();
  cfg.channels = 4;
  cfg.rows = cfg.cols = 16;
  cfg.classes = 10;
  cfg.preset = core::ModelPreset::kFast;
  auto net = core::build_model(cfg);
  const prionn::tensor::Shape input =
      cfg.kind == core::ModelKind::kCnn2d
          ? prionn::tensor::Shape{4, 16, 16}
          : prionn::tensor::Shape{4, 256};
  EXPECT_EQ(net.output_shape(input), (prionn::tensor::Shape{10}));
  EXPECT_GT(net.parameter_count(), 100u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ModelZooKinds,
                         ::testing::Values(core::ModelKind::kFullyConnected,
                                           core::ModelKind::kCnn1d,
                                           core::ModelKind::kCnn2d));

TEST(ModelZoo, PaperPresetIsLarger) {
  core::ModelConfig fast, paper;
  fast.rows = fast.cols = paper.rows = paper.cols = 64;
  fast.classes = paper.classes = 960;
  fast.preset = core::ModelPreset::kFast;
  paper.preset = core::ModelPreset::kPaper;
  EXPECT_GT(core::build_model(paper).parameter_count(),
            core::build_model(fast).parameter_count());
}

TEST(ModelZoo, PaperCnn2dHasFourConvAndFourDense) {
  core::ModelConfig cfg;
  cfg.preset = core::ModelPreset::kPaper;
  auto net = core::build_model(cfg);
  std::size_t convs = 0, denses = 0;
  for (std::size_t i = 0; i < net.depth(); ++i) {
    if (net.layer(i).kind() == "conv2d") ++convs;
    if (net.layer(i).kind() == "dense") ++denses;
  }
  EXPECT_EQ(convs, 4u);   // "four convolutional layers
  EXPECT_EQ(denses, 4u);  //  and four fully connected layers"
}

TEST(ModelZoo, RejectsBadGeometry) {
  core::ModelConfig cfg;
  cfg.rows = 30;  // not divisible by 16
  EXPECT_THROW(core::build_model(cfg), std::invalid_argument);
}

// ------------------------------------------------------------ predictor ---

namespace {

/// Small predictor configuration that trains in well under a second.
core::PredictorOptions tiny_predictor(core::Transform t =
                                          core::Transform::kSimple) {
  core::PredictorOptions o;
  o.image.rows = o.image.cols = 16;
  o.image.transform = t;
  o.runtime_bins = 64;
  o.io_bins = 16;
  o.epochs = 2;
  o.predict_io = true;
  return o;
}

std::vector<tr::JobRecord> tiny_jobs(std::size_t n) {
  tr::WorkloadGenerator gen(tr::WorkloadOptions::cab(n + n / 8));
  auto jobs = tr::completed_jobs(gen.generate());
  jobs.resize(std::min(jobs.size(), n));
  return jobs;
}

}  // namespace

TEST(Predictor, TrainPredictSmoke) {
  auto jobs = tiny_jobs(40);
  core::PrionnPredictor p(tiny_predictor());
  EXPECT_FALSE(p.trained());
  p.train(jobs);
  EXPECT_TRUE(p.trained());
  const auto pred = p.predict(jobs[0].script);
  EXPECT_GE(pred.runtime_minutes, 1.0);
  EXPECT_LT(pred.runtime_minutes, 64.0);
  EXPECT_GT(pred.bytes_read, 0.0);
  EXPECT_GT(pred.bytes_written, 0.0);
}

TEST(Predictor, PredictBeforeTrainThrows) {
  core::PrionnPredictor p(tiny_predictor());
  EXPECT_THROW(p.predict("#!/bin/bash\n"), std::logic_error);
}

TEST(Predictor, Word2VecRequiresEmbeddingFit) {
  auto jobs = tiny_jobs(20);
  core::PrionnPredictor p(tiny_predictor(core::Transform::kWord2Vec));
  EXPECT_THROW(p.train(jobs), std::logic_error);
  std::vector<std::string> scripts;
  for (const auto& j : jobs) scripts.push_back(j.script);
  p.fit_embedding(scripts);
  p.train(jobs);
  EXPECT_TRUE(p.trained());
}

TEST(Predictor, WarmStartAccumulatesTrainingEvents) {
  auto jobs = tiny_jobs(30);
  core::PrionnPredictor p(tiny_predictor());
  p.train(jobs);
  p.train(jobs);
  EXPECT_EQ(p.training_events(), 2u);
}

TEST(Predictor, BandwidthDerivedFromTotals) {
  core::JobPrediction p;
  p.runtime_minutes = 2.0;
  p.bytes_read = 1200.0;
  p.bytes_written = 240.0;
  EXPECT_DOUBLE_EQ(p.read_bandwidth(), 10.0);
  EXPECT_DOUBLE_EQ(p.write_bandwidth(), 2.0);
}

TEST(Predictor, RuntimeOnlyModeSkipsIoHeads) {
  auto opts = tiny_predictor();
  opts.predict_io = false;
  auto jobs = tiny_jobs(20);
  core::PrionnPredictor p(opts);
  p.train(jobs);
  const auto pred = p.predict(jobs[0].script);
  EXPECT_EQ(pred.bytes_read, 0.0);
  EXPECT_GE(pred.runtime_minutes, 1.0);
}

TEST(Predictor, LearnsRepeatedScripts) {
  // Memorisation check: a few distinct scripts with distinct runtimes,
  // repeated many times, must be predicted accurately after training.
  // One-hot gives the crispest per-character signal for a memorisation
  // check; no dropout since fitting the training set is the whole point.
  auto opts = tiny_predictor(core::Transform::kOneHot);
  opts.epochs = 40;
  opts.predict_io = false;
  opts.runtime_bins = 16;
  opts.dropout = 0.0;
  std::vector<tr::JobRecord> jobs;
  for (int rep = 0; rep < 20; ++rep) {
    for (int v = 0; v < 4; ++v) {
      tr::JobRecord j;
      // The distinguishing text must survive the 16x16 crop, so keep it in
      // the first columns of an early line.
      j.script = "# run v" + std::to_string(v) + "\nsrun -s " +
                 std::to_string(v) + "00\n";
      j.runtime_minutes = 2.0 + 3.0 * v;
      j.bytes_read = j.bytes_written = 1e6;
      jobs.push_back(j);
    }
  }
  core::PrionnPredictor p(opts);
  p.train(jobs);
  std::size_t hits = 0;
  for (int v = 0; v < 4; ++v) {
    const auto pred = p.predict(jobs[static_cast<std::size_t>(v)].script);
    if (std::abs(pred.runtime_minutes - (2.0 + 3.0 * v)) < 0.5) ++hits;
  }
  EXPECT_GE(hits, 3u);
}

TEST(Predictor, ConfidenceIsValidProbabilityAndConsistent) {
  auto jobs = tiny_jobs(30);
  core::PrionnPredictor p(tiny_predictor());
  p.train(jobs);
  const auto c = p.predict_with_confidence(jobs[0].script);
  EXPECT_GT(c.runtime_confidence, 0.0);
  EXPECT_LE(c.runtime_confidence, 1.0);
  EXPECT_GT(c.read_confidence, 0.0);
  EXPECT_LE(c.write_confidence, 1.0);
  // The confident prediction's argmax matches the plain predict path.
  const auto plain = p.predict(jobs[0].script);
  EXPECT_DOUBLE_EQ(c.value.runtime_minutes, plain.runtime_minutes);
  EXPECT_DOUBLE_EQ(c.value.bytes_read, plain.bytes_read);
}

TEST(Predictor, SaveLoadRoundTripPreservesPredictions) {
  auto jobs = tiny_jobs(30);
  core::PrionnPredictor p(tiny_predictor(core::Transform::kWord2Vec));
  std::vector<std::string> scripts;
  for (const auto& j : jobs) scripts.push_back(j.script);
  p.fit_embedding(scripts);
  p.train(jobs);

  std::stringstream ss;
  p.save(ss);
  auto loaded = core::PrionnPredictor::load(ss);
  EXPECT_TRUE(loaded.trained());
  EXPECT_EQ(loaded.training_events(), p.training_events());
  for (std::size_t i = 0; i < 5; ++i) {
    const auto a = p.predict(jobs[i].script);
    const auto b = loaded.predict(jobs[i].script);
    EXPECT_DOUBLE_EQ(a.runtime_minutes, b.runtime_minutes);
    EXPECT_DOUBLE_EQ(a.bytes_read, b.bytes_read);
    EXPECT_DOUBLE_EQ(a.bytes_written, b.bytes_written);
  }
  // The loaded predictor can keep training (warm start after restart).
  loaded.train(jobs);
  EXPECT_EQ(loaded.training_events(), p.training_events() + 1);
}

TEST(Predictor, LoadRejectsGarbage) {
  std::stringstream ss("definitely not a predictor checkpoint");
  EXPECT_THROW(core::PrionnPredictor::load(ss), std::runtime_error);
}

// --------------------------------------------------------------- online ---

TEST(Online, ProtocolProducesPredictionsAfterWarmup) {
  auto jobs = tiny_jobs(260);
  core::OnlineOptions opts;
  opts.predictor = tiny_predictor();
  opts.predictor.predict_io = false;
  opts.retrain_interval = 50;
  opts.train_window = 100;
  opts.min_initial_completions = 30;
  core::OnlineTrainer trainer(opts);
  const auto result = trainer.run(jobs);
  EXPECT_EQ(result.predictions.size(), jobs.size());
  EXPECT_GE(result.training_events, 2u);
  const auto idx = result.predicted_indices();
  EXPECT_GT(idx.size(), jobs.size() / 3);
  EXPECT_FALSE(result.predictions[0].has_value());  // cold start
  for (const std::size_t i : idx) {
    EXPECT_GE(result.predictions[i]->runtime_minutes, 1.0);
  }
  EXPECT_GT(result.train_seconds, 0.0);
}

TEST(Online, ColdRetrainAblationRuns) {
  auto jobs = tiny_jobs(200);
  core::OnlineOptions opts;
  opts.predictor = tiny_predictor(core::Transform::kWord2Vec);
  opts.predictor.predict_io = false;
  opts.retrain_interval = 40;
  opts.train_window = 80;
  opts.min_initial_completions = 30;
  opts.reinitialize_on_retrain = true;
  core::OnlineTrainer trainer(opts);
  const auto result = trainer.run(jobs);
  EXPECT_GE(result.training_events, 2u);
  // Cold restarts reset the training-event counter per predictor, so
  // after the run the live predictor has seen exactly one train() call.
  EXPECT_EQ(trainer.predictor().training_events(), 1u);
  EXPECT_FALSE(result.predicted_indices().empty());
}

TEST(Online, RejectsBadOptions) {
  core::OnlineOptions opts;
  opts.predictor = tiny_predictor();
  opts.retrain_interval = 0;
  EXPECT_THROW(core::OnlineTrainer{opts}, std::invalid_argument);
}

// ------------------------------------------------------------- pipeline ---

namespace {

std::vector<core::JobPrediction> perfect_predictions(
    const std::vector<tr::JobRecord>& jobs) {
  std::vector<core::JobPrediction> out(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out[i].runtime_minutes = jobs[i].runtime_minutes;
    out[i].bytes_read = jobs[i].bytes_read;
    out[i].bytes_written = jobs[i].bytes_written;
  }
  return out;
}

}  // namespace

TEST(Pipeline, PerfectRuntimePredictionsBeatUserEstimates) {
  const auto jobs = tiny_jobs(150);
  const auto preds = perfect_predictions(jobs);
  core::Phase2Options opts;
  opts.cluster.total_nodes = 128;
  const auto eval = core::evaluate_turnaround(jobs, preds, opts);
  ASSERT_EQ(eval.simulated.size(), jobs.size());

  std::vector<double> acc_user, acc_prionn;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (eval.simulated[i] <= 0.0) continue;
    acc_user.push_back(prionn::util::relative_accuracy(
        eval.simulated[i], eval.predicted_user[i]));
    acc_prionn.push_back(prionn::util::relative_accuracy(
        eval.simulated[i], eval.predicted_prionn[i]));
  }
  // Even perfect runtimes cannot anticipate future arrivals, so the
  // prediction is not exact under contention — but it must clearly beat
  // user-requested runtimes (Fig. 11b's ordering) and be strong overall.
  EXPECT_GT(prionn::util::mean(acc_prionn), 0.6);
  EXPECT_GT(prionn::util::mean(acc_prionn), prionn::util::mean(acc_user));
}

TEST(Pipeline, ActualIntervalsMatchSchedule) {
  const auto jobs = tiny_jobs(60);
  const auto preds = perfect_predictions(jobs);
  core::Phase2Options opts;
  opts.cluster.total_nodes = 128;
  const auto eval = core::evaluate_turnaround(jobs, preds, opts);
  const auto intervals = core::actual_io_intervals(jobs, eval.schedule);
  EXPECT_EQ(intervals.size(), eval.schedule.size());
  for (const auto& iv : intervals) {
    EXPECT_GT(iv.end_time, iv.start_time);
    EXPECT_GE(iv.bandwidth, 0.0);
  }
}

TEST(Pipeline, IdenticalTimelinesScorePerfectly) {
  const auto jobs = tiny_jobs(100);
  const auto preds = perfect_predictions(jobs);
  core::Phase2Options opts;
  opts.cluster.total_nodes = 128;
  const auto eval = core::evaluate_turnaround(jobs, preds, opts);
  const auto actual = core::actual_io_intervals(jobs, eval.schedule);
  const auto predicted =
      core::predicted_io_intervals_perfect(jobs, eval.schedule, preds);
  const auto io = core::evaluate_system_io(actual, predicted, opts);
  // Perfect IO predictions on the true schedule: accuracy 1 everywhere,
  // every burst matched.
  EXPECT_GT(prionn::util::mean(io.accuracies), 0.999);
  for (const auto& w : io.windows) {
    EXPECT_DOUBLE_EQ(w.score.sensitivity(),
                     w.score.true_positives == 0 &&
                             w.score.false_negatives == 0
                         ? 0.0
                         : 1.0);
    EXPECT_EQ(w.score.false_positives, 0u);
  }
}

TEST(Pipeline, PredictedIntervalsUseTurnaround) {
  tr::JobRecord j;
  j.submit_time = 100.0;
  j.runtime_minutes = 2.0;
  j.bytes_read = 6000.0;
  j.bytes_written = 6000.0;
  core::JobPrediction p;
  p.runtime_minutes = 2.0;
  p.bytes_read = 12000.0;
  p.bytes_written = 0.0;
  const auto intervals = core::predicted_io_intervals_predicted(
      {j}, {300.0}, {p});
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_DOUBLE_EQ(intervals[0].end_time, 400.0);     // submit + turnaround
  EXPECT_DOUBLE_EQ(intervals[0].start_time, 280.0);   // end - 2 min
  EXPECT_DOUBLE_EQ(intervals[0].bandwidth, 100.0);    // 12000 B / 120 s
}

TEST(Pipeline, NegativeTurnaroundSkipsJob) {
  tr::JobRecord j;
  core::JobPrediction p;
  p.runtime_minutes = 1.0;
  const auto intervals =
      core::predicted_io_intervals_predicted({j}, {-1.0}, {p});
  EXPECT_TRUE(intervals.empty());
}

TEST(Pipeline, SizeMismatchesThrow) {
  const auto jobs = tiny_jobs(10);
  EXPECT_THROW(core::evaluate_turnaround(jobs, {}), std::invalid_argument);
  EXPECT_THROW(core::predicted_io_intervals_predicted(jobs, {}, {}),
               std::invalid_argument);
}
