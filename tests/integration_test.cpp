// End-to-end integration: generate a workload, run the full phase-1 online
// protocol with the paper's chosen configuration (word2vec + 2D-CNN) at
// reduced scale, feed the predictions into phase 2, and validate the whole
// chain produces sane, paper-shaped outputs.
//
// The expensive online protocol runs once; all assertions live in a single
// test so ctest does not re-run the fixture per test process.
#include <gtest/gtest.h>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "ml/random_forest.hpp"
#include "trace/features.hpp"
#include "trace/stats.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"

namespace core = prionn::core;
namespace tr = prionn::trace;
using prionn::util::mean;
using prionn::util::relative_accuracy;

TEST(EndToEnd, FullPipelineReproducesPaperShape) {
  // ---- Phase 0: synthetic Cab-like workload. -------------------------
  tr::WorkloadGenerator gen(tr::WorkloadOptions::cab(700, 77));
  const auto jobs = tr::completed_jobs(gen.generate());
  const auto stats = tr::summarize(jobs);
  EXPECT_GT(stats.runtime_minutes.mean, 15.0);
  EXPECT_LT(stats.runtime_minutes.mean, 90.0);
  EXPECT_GT(stats.read_bandwidth.mean, stats.read_bandwidth.median);

  // ---- Phase 1: online protocol (word2vec + 2D-CNN). -----------------
  core::OnlineOptions opts;
  opts.predictor.image.transform = core::Transform::kWord2Vec;
  opts.predictor.model = core::ModelKind::kCnn2d;
  opts.predictor.preset = core::ModelPreset::kFast;
  opts.predictor.epochs = 8;
  opts.retrain_interval = 100;
  opts.train_window = 300;
  opts.min_initial_completions = 80;
  core::OnlineTrainer trainer(opts);
  const auto online = trainer.run(jobs);

  EXPECT_GE(online.training_events, 3u);
  const auto predicted = online.predicted_indices();
  ASSERT_GT(predicted.size(), jobs.size() / 2);
  EXPECT_FALSE(online.predictions[0].has_value());  // cold start

  std::vector<core::JobPrediction> predictions(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (online.predictions[i]) {
      predictions[i] = *online.predictions[i];
    } else {
      // Cold-start fallback: what a deployment would use before the first
      // training event.
      predictions[i].runtime_minutes = jobs[i].requested_minutes;
      predictions[i].bytes_read = 1e6;
      predictions[i].bytes_written = 1e6;
    }
  }

  // PRIONN beats the user baseline on runtime accuracy (Fig. 8b shape).
  std::vector<double> prionn_acc, user_acc;
  for (const std::size_t i : predicted) {
    prionn_acc.push_back(relative_accuracy(jobs[i].runtime_minutes,
                                           predictions[i].runtime_minutes));
    user_acc.push_back(relative_accuracy(jobs[i].runtime_minutes,
                                         jobs[i].requested_minutes));
  }
  EXPECT_GT(mean(prionn_acc), mean(user_acc) + 0.05);
  EXPECT_GT(mean(prionn_acc), 0.4);

  // RF baseline on the Table-1 features (train on first half, score on
  // predicted indices of the second half). At this tiny scale PRIONN is
  // still warming up, so only require it to be in RF's neighbourhood —
  // the full-scale comparison is bench/fig08_runtime_accuracy's job.
  {
    tr::FeatureEncoder enc;
    const std::size_t half = jobs.size() / 2;
    const std::vector<tr::JobRecord> train(
        jobs.begin(), jobs.begin() + static_cast<long>(half));
    auto train_data = enc.encode_jobs(
        train, [](const tr::JobRecord& j) { return j.runtime_minutes; });
    prionn::ml::RandomForestRegressor rf;
    rf.fit(train_data);
    std::vector<double> rf_acc, prionn_late;
    for (const std::size_t i : predicted) {
      if (i < half) continue;
      const auto row = enc.encode(tr::parse_script(jobs[i].script));
      rf_acc.push_back(relative_accuracy(
          jobs[i].runtime_minutes,
          rf.predict(std::span<const double>(row.data(), row.size()))));
      prionn_late.push_back(relative_accuracy(
          jobs[i].runtime_minutes, predictions[i].runtime_minutes));
    }
    ASSERT_GT(rf_acc.size(), 50u);
    EXPECT_GT(mean(prionn_late), mean(rf_acc) - 0.3);
    EXPECT_GT(mean(rf_acc), mean(user_acc));  // RF also beats users
  }

  // ---- Phase 2: turnaround via snapshot replay (section 4.2). --------
  core::Phase2Options p2;
  p2.cluster.total_nodes = 1296;
  const auto eval = core::evaluate_turnaround(jobs, predictions, p2);
  ASSERT_EQ(eval.schedule.size(), jobs.size());

  std::vector<double> ta_user, ta_prionn;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (eval.simulated[i] <= 0.0) continue;
    ta_user.push_back(
        relative_accuracy(eval.simulated[i], eval.predicted_user[i]));
    ta_prionn.push_back(
        relative_accuracy(eval.simulated[i], eval.predicted_prionn[i]));
  }
  for (const double a : ta_prionn) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  EXPECT_GE(mean(ta_prionn), mean(ta_user) - 0.02);  // Fig. 11b ordering

  // ---- Phase 2: system IO + bursts (section 4.3). --------------------
  const auto actual = core::actual_io_intervals(jobs, eval.schedule);

  // Evaluation 1: perfect turnaround, predicted IO (Figs. 12/13).
  const auto pred_perfect =
      core::predicted_io_intervals_perfect(jobs, eval.schedule, predictions);
  const auto io1 = core::evaluate_system_io(actual, pred_perfect, p2);
  EXPECT_GT(io1.accuracies.size(), 100u);
  EXPECT_GT(io1.burst_threshold, 0.0);
  EXPECT_GT(mean(io1.accuracies), 0.2);
  EXPECT_LE(mean(io1.accuracies), 1.0);
  ASSERT_FALSE(io1.windows.empty());
  for (std::size_t w = 1; w < io1.windows.size(); ++w)
    EXPECT_GE(io1.windows[w].score.sensitivity(),
              io1.windows[w - 1].score.sensitivity() - 1e-9);

  // Evaluation 2: predicted turnaround (Figs. 14/15).
  const auto pred_predicted = core::predicted_io_intervals_predicted(
      jobs, eval.predicted_prionn, predictions);
  const auto io2 = core::evaluate_system_io(actual, pred_predicted, p2);
  EXPECT_FALSE(io2.accuracies.empty());
  for (const auto& w : io2.windows) {
    EXPECT_GE(w.score.sensitivity(), 0.0);
    EXPECT_LE(w.score.precision(), 1.0);
  }
}
