// Unit tests for the tensor substrate: storage, GEMM against a naive
// reference, element-wise ops, and the im2col/col2im lowering (including
// the adjoint property that backs convolution backprop).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace t = prionn::tensor;

// -------------------------------------------------------------- Tensor ---

TEST(Tensor, ShapeSize) {
  EXPECT_EQ(t::shape_size({2, 3, 4}), 24u);
  EXPECT_EQ(t::shape_size({}), 0u);
  EXPECT_EQ(t::shape_size({7}), 7u);
}

TEST(Tensor, ZeroInitialised) {
  t::Tensor x({3, 4});
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], 0.0f);
  EXPECT_EQ(x.rank(), 2u);
  EXPECT_EQ(x.dim(0), 3u);
}

TEST(Tensor, FillConstructor) {
  t::Tensor x({2, 2}, 3.5f);
  EXPECT_EQ(x.at(1, 1), 3.5f);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(t::Tensor({2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, MultiIndexAccess) {
  t::Tensor x({2, 3, 4});
  x.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(x[1 * 12 + 2 * 4 + 3], 9.0f);
  t::Tensor y({2, 2, 2, 2});
  y.at(1, 0, 1, 0) = 5.0f;
  EXPECT_EQ(y[8 + 2], 5.0f);
}

TEST(Tensor, ReshapePreservesData) {
  t::Tensor x({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  x.reshape({3, 2});
  EXPECT_EQ(x.at(2, 1), 6.0f);
  EXPECT_THROW(x.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, RowExtraction) {
  t::Tensor x({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const auto r = x.row(1);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 4.0f);
  EXPECT_EQ(r[2], 6.0f);
}

TEST(Tensor, Arithmetic) {
  t::Tensor a({3}, std::vector<float>{1, 2, 3});
  t::Tensor b({3}, std::vector<float>{10, 20, 30});
  a += b;
  EXPECT_EQ(a[2], 33.0f);
  a -= b;
  EXPECT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a[0], 2.0f);
  a.axpy(0.5f, b);
  EXPECT_EQ(a[1], 14.0f);
}

TEST(Tensor, ArithmeticShapeMismatchThrows) {
  t::Tensor a({3}), b({4});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a.axpy(1.0f, b), std::invalid_argument);
}

TEST(Tensor, SaveLoadRoundTrip) {
  t::Tensor x({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  std::stringstream ss;
  x.save(ss);
  const auto y = t::Tensor::load(ss);
  EXPECT_EQ(y.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], y[i]);
}

TEST(Tensor, LoadRejectsGarbage) {
  std::stringstream ss("not a tensor");
  EXPECT_THROW(t::Tensor::load(ss), std::runtime_error);
}

// ---------------------------------------------------------------- GEMM ---

namespace {

void naive_gemm(std::size_t m, std::size_t k, std::size_t n, float alpha,
                const float* a, const float* b, float beta, float* c) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = alpha * acc + beta * c[i * n + j];
    }
}

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  prionn::util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

}  // namespace

struct GemmShape {
  std::size_t m, k, n;
};

class GemmVsNaive : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmVsNaive, MatchesReference) {
  const auto [m, k, n] = GetParam();
  const auto a = random_vec(m * k, 1);
  const auto b = random_vec(k * n, 2);
  auto c_fast = random_vec(m * n, 3);
  auto c_ref = c_fast;
  t::gemm(m, k, n, 0.5f, a.data(), b.data(), 0.25f, c_fast.data());
  naive_gemm(m, k, n, 0.5f, a.data(), b.data(), 0.25f, c_ref.data());
  for (std::size_t i = 0; i < c_fast.size(); ++i)
    ASSERT_NEAR(c_fast[i], c_ref[i], 1e-3f) << "at " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmVsNaive,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{4, 36, 64},
                      GemmShape{5, 7, 33},   // edge tiles in every direction
                      GemmShape{16, 72, 100}, GemmShape{33, 257, 65},
                      GemmShape{64, 300, 512}, GemmShape{3, 1000, 31}));

TEST(Gemm, BetaZeroOverwritesNanSafely) {
  // beta == 0 must ignore prior contents entirely.
  std::vector<float> a = {1.0f}, b = {2.0f};
  std::vector<float> c = {std::nanf("")};
  t::gemm(1, 1, 1, 1.0f, a.data(), b.data(), 0.0f, c.data());
  EXPECT_FLOAT_EQ(c[0], 2.0f);
}

class GemmTransposed : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmTransposed, AtMatchesReference) {
  const auto [m, k, n] = GetParam();
  const auto at = random_vec(k * m, 4);  // stored k x m
  const auto b = random_vec(k * n, 5);
  std::vector<float> c_fast(m * n, 0.0f), c_ref(m * n, 0.0f);
  // Reference: transpose manually.
  std::vector<float> a(m * k);
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t i = 0; i < m; ++i) a[i * k + p] = at[p * m + i];
  t::gemm_at(m, k, n, 1.0f, at.data(), b.data(), 0.0f, c_fast.data());
  naive_gemm(m, k, n, 1.0f, a.data(), b.data(), 0.0f, c_ref.data());
  for (std::size_t i = 0; i < c_fast.size(); ++i)
    ASSERT_NEAR(c_fast[i], c_ref[i], 1e-3f);
}

TEST_P(GemmTransposed, BtMatchesReference) {
  const auto [m, k, n] = GetParam();
  const auto a = random_vec(m * k, 6);
  const auto bt = random_vec(n * k, 7);  // stored n x k
  std::vector<float> c_fast(m * n, 1.0f), c_ref(m * n, 1.0f);
  std::vector<float> b(k * n);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t p = 0; p < k; ++p) b[p * n + j] = bt[j * k + p];
  t::gemm_bt(m, k, n, 1.0f, a.data(), bt.data(), 1.0f, c_fast.data());
  naive_gemm(m, k, n, 1.0f, a.data(), b.data(), 1.0f, c_ref.data());
  for (std::size_t i = 0; i < c_fast.size(); ++i)
    ASSERT_NEAR(c_fast[i], c_ref[i], 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmTransposed,
                         ::testing::Values(GemmShape{3, 5, 7},
                                           GemmShape{16, 33, 65},
                                           GemmShape{37, 128, 41}));

TEST(Gemv, MatchesGemmRow) {
  const auto a = random_vec(6 * 9, 8);
  const auto x = random_vec(9, 9);
  std::vector<float> y(6, 0.0f), y_ref(6, 0.0f);
  t::gemv(6, 9, a.data(), x.data(), 0.0f, y.data());
  naive_gemm(6, 9, 1, 1.0f, a.data(), x.data(), 0.0f, y_ref.data());
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-4f);
}

// ----------------------------------------------------------------- Ops ---

TEST(Ops, Argmax) {
  const std::vector<float> xs = {1, 5, 3, 5};
  EXPECT_EQ(t::argmax(xs), 1u);  // first of the ties
}

TEST(Ops, SoftmaxSumsToOne) {
  std::vector<float> xs = {1, 2, 3};
  t::softmax_inplace(xs);
  EXPECT_NEAR(xs[0] + xs[1] + xs[2], 1.0f, 1e-6f);
  EXPECT_GT(xs[2], xs[1]);
}

TEST(Ops, SoftmaxNumericallyStable) {
  std::vector<float> xs = {1000.0f, 1000.0f};
  t::softmax_inplace(xs);
  EXPECT_NEAR(xs[0], 0.5f, 1e-6f);
  std::vector<float> ys = {-1000.0f, 0.0f};
  t::softmax_inplace(ys);
  EXPECT_NEAR(ys[1], 1.0f, 1e-6f);
}

TEST(Ops, SoftmaxRows) {
  t::Tensor x({2, 2}, std::vector<float>{0, 0, 10, 0});
  t::softmax_rows_inplace(x);
  EXPECT_NEAR(x.at(0, 0), 0.5f, 1e-6f);
  EXPECT_GT(x.at(1, 0), 0.99f);
}

TEST(Ops, SumDotNorm) {
  const std::vector<float> a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_FLOAT_EQ(t::sum(a), 6.0f);
  EXPECT_FLOAT_EQ(t::dot(a, b), 32.0f);
  EXPECT_FLOAT_EQ(t::squared_norm(a), 14.0f);
}

TEST(Ops, ClipInPlace) {
  std::vector<float> xs = {-5, -1, 0, 1, 5};
  const auto clipped = t::clip_inplace(xs, 2.0f);
  EXPECT_EQ(clipped, 2u);
  EXPECT_FLOAT_EQ(xs[0], -2.0f);
  EXPECT_FLOAT_EQ(xs[4], 2.0f);
  EXPECT_FLOAT_EQ(xs[2], 0.0f);
}

// -------------------------------------------------------------- im2col ---

TEST(Im2col, IdentityKernelNoPad) {
  // 1x1 kernel: cols should equal the image.
  t::Conv2dGeom g;
  g.channels = 1;
  g.height = g.width = 3;
  g.kernel_h = g.kernel_w = 1;
  const std::vector<float> image = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> cols(g.patch_rows() * g.patch_cols());
  t::im2col(g, image.data(), cols.data());
  EXPECT_EQ(cols, image);
}

TEST(Im2col, KnownSmallCase) {
  // 2x2 image, 2x2 kernel, stride 1, no pad: one output pixel capturing
  // the whole image.
  t::Conv2dGeom g;
  g.channels = 1;
  g.height = g.width = 2;
  g.kernel_h = g.kernel_w = 2;
  const std::vector<float> image = {1, 2, 3, 4};
  std::vector<float> cols(4);
  t::im2col(g, image.data(), cols.data());
  EXPECT_EQ(cols, image);
  EXPECT_EQ(g.out_h(), 1u);
}

TEST(Im2col, PaddingYieldsZeros) {
  t::Conv2dGeom g;
  g.channels = 1;
  g.height = g.width = 1;
  g.kernel_h = g.kernel_w = 3;
  g.pad_h = g.pad_w = 1;
  const std::vector<float> image = {7};
  std::vector<float> cols(9);
  t::im2col(g, image.data(), cols.data());
  // Centre tap sees the pixel; every other tap is padding.
  float total = 0.0f;
  for (const float v : cols) total += v;
  EXPECT_FLOAT_EQ(total, 7.0f);
  EXPECT_FLOAT_EQ(cols[4], 7.0f);
}

struct ConvGeomCase {
  std::size_t channels, height, width, kernel, stride, pad;
};

class Im2colAdjoint : public ::testing::TestWithParam<ConvGeomCase> {};

// <im2col(x), y> == <x, col2im(y)> — the defining property of the adjoint,
// which is exactly what convolution backprop relies on.
TEST_P(Im2colAdjoint, DotProductIdentity) {
  const auto p = GetParam();
  t::Conv2dGeom g;
  g.channels = p.channels;
  g.height = p.height;
  g.width = p.width;
  g.kernel_h = g.kernel_w = p.kernel;
  g.stride_h = g.stride_w = p.stride;
  g.pad_h = g.pad_w = p.pad;

  const std::size_t image_size = p.channels * p.height * p.width;
  const std::size_t cols_size = g.patch_rows() * g.patch_cols();
  const auto x = random_vec(image_size, 11);
  const auto y = random_vec(cols_size, 12);

  std::vector<float> ix(cols_size);
  t::im2col(g, x.data(), ix.data());
  std::vector<float> cy(image_size, 0.0f);
  t::col2im(g, y.data(), cy.data());

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols_size; ++i)
    lhs += static_cast<double>(ix[i]) * y[i];
  for (std::size_t i = 0; i < image_size; ++i)
    rhs += static_cast<double>(x[i]) * cy[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colAdjoint,
    ::testing::Values(ConvGeomCase{1, 4, 4, 3, 1, 1},
                      ConvGeomCase{3, 8, 8, 3, 1, 1},
                      ConvGeomCase{2, 6, 5, 3, 2, 0},
                      ConvGeomCase{4, 7, 7, 5, 1, 2},
                      ConvGeomCase{1, 16, 16, 3, 1, 0}));

TEST(Im2col, StridedMatchesContiguous) {
  t::Conv2dGeom g;
  g.channels = 2;
  g.height = g.width = 5;
  g.kernel_h = g.kernel_w = 3;
  g.pad_h = g.pad_w = 1;
  const auto image = random_vec(2 * 5 * 5, 13);
  const std::size_t pc = g.patch_cols(), pr = g.patch_rows();
  std::vector<float> plain(pr * pc);
  t::im2col(g, image.data(), plain.data());
  // Strided with a wider leading dimension and an offset.
  const std::size_t ld = pc * 3;
  std::vector<float> wide(pr * ld, -1.0f);
  t::im2col_strided(g, image.data(), wide.data() + pc, ld);
  for (std::size_t r = 0; r < pr; ++r)
    for (std::size_t c = 0; c < pc; ++c)
      ASSERT_EQ(plain[r * pc + c], wide[r * ld + pc + c]);
}

TEST(Im2col1d, AdjointIdentity) {
  t::Conv1dGeom g;
  g.channels = 3;
  g.length = 17;
  g.kernel = 5;
  g.stride = 2;
  g.pad = 2;
  const std::size_t signal_size = g.channels * g.length;
  const std::size_t cols_size = g.patch_rows() * g.patch_cols();
  const auto x = random_vec(signal_size, 14);
  const auto y = random_vec(cols_size, 15);
  std::vector<float> ix(cols_size);
  t::im2col_1d(g, x.data(), ix.data());
  std::vector<float> cy(signal_size, 0.0f);
  t::col2im_1d(g, y.data(), cy.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cols_size; ++i)
    lhs += static_cast<double>(ix[i]) * y[i];
  for (std::size_t i = 0; i < signal_size; ++i)
    rhs += static_cast<double>(x[i]) * cy[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2col1d, GeometryArithmetic) {
  t::Conv1dGeom g;
  g.channels = 2;
  g.length = 10;
  g.kernel = 3;
  g.stride = 1;
  g.pad = 1;
  EXPECT_EQ(g.out_len(), 10u);
  EXPECT_EQ(g.patch_rows(), 6u);
  EXPECT_EQ(g.patch_cols(), 10u);
}

TEST(Im2col, GeometryArithmetic2d) {
  t::Conv2dGeom g;
  g.channels = 4;
  g.height = 64;
  g.width = 64;
  g.kernel_h = g.kernel_w = 3;
  g.pad_h = g.pad_w = 1;
  EXPECT_EQ(g.out_h(), 64u);
  EXPECT_EQ(g.out_w(), 64u);
  EXPECT_EQ(g.patch_rows(), 36u);
  EXPECT_EQ(g.patch_cols(), 4096u);
}
