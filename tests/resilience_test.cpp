// Resilient-serving tests: CRC-32 vectors, the deterministic fault
// harness, the checkpoint frame (round trip + rejection of truncated /
// bit-flipped / wrong-version streams, last-good fallback), predictor
// snapshot bit-exactness, divergence rollback, graceful degradation
// provenance, input quarantine, kill/resume equivalence, and the
// end-to-end acceptance scenario with every fault class armed at once.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/fallback.hpp"
#include "core/predictor.hpp"
#include "core/resilient_online.hpp"
#include "nn/loss.hpp"
#include "trace/store.hpp"
#include "trace/swf.hpp"
#include "trace/workload.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"

namespace core = prionn::core;
namespace tr = prionn::trace;
namespace fault = prionn::util::fault;
namespace fs = std::filesystem;

namespace {

core::PredictorOptions tiny_predictor_options() {
  core::PredictorOptions o;
  o.image.rows = o.image.cols = 16;
  o.image.transform = core::Transform::kSimple;
  o.runtime_bins = 64;
  o.io_bins = 16;
  o.epochs = 2;
  o.predict_io = true;
  return o;
}

std::vector<tr::JobRecord> tiny_jobs(std::size_t n,
                                     std::uint64_t seed = 2016) {
  tr::WorkloadGenerator gen(tr::WorkloadOptions::cab(n + n / 8, seed));
  return tr::completed_jobs(gen.generate());
}

std::string predictor_bytes(const core::PrionnPredictor& p) {
  std::ostringstream os(std::ios::binary);
  p.save(os);
  return std::move(os).str();
}

/// Unique-per-test checkpoint path under the system temp dir.
class CheckpointPath {
 public:
  explicit CheckpointPath(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    cleanup();
  }
  ~CheckpointPath() { cleanup(); }
  const std::string& str() const noexcept { return path_; }

 private:
  void cleanup() {
    fs::remove(path_);
    fs::remove(core::last_good_path(path_));
    fs::remove(path_ + ".tmp");
  }
  std::string path_;
};

// ---------------------------------------------------------------- crc32 ---

TEST(Crc32, KnownVectors) {
  // The classic check value from the CRC catalogue (zlib-compatible).
  EXPECT_EQ(prionn::util::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(prionn::util::crc32(""), 0x00000000u);
  EXPECT_EQ(prionn::util::crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  prionn::util::Crc32 crc;
  crc.update(data.data(), 10);
  crc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc.value(), prionn::util::crc32(data));
}

// -------------------------------------------------------- fault harness ---

TEST(FaultHarness, DisarmedNeverFires) {
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(fault::fire(fault::FaultPoint::kIngestGarbage));
}

TEST(FaultHarness, FireAtHitsTheExactOccurrence) {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.point(fault::FaultPoint::kNanPoisonBatch).fire_at = {3, 5};
  fault::ScopedFaultPlan armed(plan);
  std::vector<int> fired;
  for (int i = 1; i <= 6; ++i)
    if (fault::fire(fault::FaultPoint::kNanPoisonBatch)) fired.push_back(i);
  EXPECT_EQ(fired, (std::vector<int>{3, 5}));
}

TEST(FaultHarness, SameSeedSameSchedule) {
  const auto schedule = [](std::uint64_t seed) {
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.point(fault::FaultPoint::kIngestGarbage).probability = 0.2;
    fault::ScopedFaultPlan armed(plan);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i)
      fires.push_back(fault::fire(fault::FaultPoint::kIngestGarbage));
    return fires;
  };
  EXPECT_EQ(schedule(42), schedule(42));
  EXPECT_NE(schedule(42), schedule(43));
}

TEST(FaultHarness, MaxFiresBoundsTheDamage) {
  fault::FaultPlan plan;
  plan.seed = 1;
  plan.point(fault::FaultPoint::kIngestGarbage).probability = 1.0;
  plan.point(fault::FaultPoint::kIngestGarbage).max_fires = 2;
  fault::ScopedFaultPlan armed(plan);
  int fires = 0;
  for (int i = 0; i < 10; ++i)
    if (fault::fire(fault::FaultPoint::kIngestGarbage)) ++fires;
  EXPECT_EQ(fires, 2);
}

TEST(FaultHarness, GarbleLineIsDeterministic) {
  const std::string line = "1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18";
  EXPECT_EQ(fault::garble_line(line, 9), fault::garble_line(line, 9));
  EXPECT_NE(fault::garble_line(line, 9), line);
}

TEST(FaultHarness, PoisonWithNansPlantsNans) {
  std::vector<float> data(256, 1.0f);
  fault::poison_with_nans(data, 5);
  std::size_t nans = 0;
  for (const float v : data)
    if (std::isnan(v)) ++nans;
  EXPECT_GE(nans, 1u);
  EXPECT_LE(nans, 8u);
}

// ------------------------------------------------ NaN bandwidth guard ---

TEST(JobPrediction, BandwidthGuardsAgainstNonFiniteRuntime) {
  core::JobPrediction p;
  p.bytes_read = 6e9;
  p.bytes_written = 6e9;
  p.runtime_minutes = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(p.read_bandwidth(), 0.0);
  EXPECT_EQ(p.write_bandwidth(), 0.0);
  p.runtime_minutes = std::numeric_limits<double>::infinity();
  EXPECT_EQ(p.read_bandwidth(), 0.0);
  p.runtime_minutes = 0.0;
  EXPECT_EQ(p.read_bandwidth(), 0.0);
  p.runtime_minutes = 100.0;
  EXPECT_DOUBLE_EQ(p.read_bandwidth(), 1e6);
  EXPECT_DOUBLE_EQ(p.write_bandwidth(), 1e6);
}

// --------------------------------------------- predictor save/load ---

TEST(PredictorSnapshot, RoundTripsBitIdenticalPredictions) {
  const auto jobs = tiny_jobs(48);
  core::PrionnPredictor p(tiny_predictor_options());
  p.train(jobs);

  const std::string bytes = predictor_bytes(p);
  std::istringstream is(bytes, std::ios::binary);
  core::PrionnPredictor q = core::PrionnPredictor::load(is);

  // save -> load -> save is byte-stable, and predictions match bit for
  // bit (same weights, same bins, same mapper).
  EXPECT_EQ(predictor_bytes(q), bytes);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto a = p.predict(jobs[i].script);
    const auto b = q.predict(jobs[i].script);
    EXPECT_EQ(a.runtime_minutes, b.runtime_minutes);
    EXPECT_EQ(a.bytes_read, b.bytes_read);
    EXPECT_EQ(a.bytes_written, b.bytes_written);
  }
}

TEST(PredictorSnapshot, ResumedTrainingMatchesUninterrupted) {
  // The snapshot carries the whole trajectory (Adam moments, dropout RNG
  // streams, event counter): retraining after a restore must produce the
  // same weights as never having restarted.
  const auto jobs = tiny_jobs(64);
  const std::vector<tr::JobRecord> first(jobs.begin(), jobs.begin() + 32);
  const std::vector<tr::JobRecord> second(jobs.begin() + 32, jobs.end());

  core::PrionnPredictor p(tiny_predictor_options());
  p.train(first);
  const std::string snapshot = predictor_bytes(p);

  p.train(second);
  const std::string uninterrupted = predictor_bytes(p);

  std::istringstream is(snapshot, std::ios::binary);
  core::PrionnPredictor q = core::PrionnPredictor::load(is);
  q.train(second);
  EXPECT_EQ(predictor_bytes(q), uninterrupted);
}

TEST(PredictorSnapshot, RejectsDamagedStreams) {
  core::PrionnPredictor p(tiny_predictor_options());
  const std::string bytes = predictor_bytes(p);

  std::istringstream truncated(bytes.substr(0, bytes.size() / 2),
                               std::ios::binary);
  EXPECT_THROW(core::PrionnPredictor::load(truncated), std::runtime_error);

  std::string magicless = bytes;
  magicless[0] = 'X';
  std::istringstream bad_magic(magicless, std::ios::binary);
  EXPECT_THROW(core::PrionnPredictor::load(bad_magic), std::runtime_error);
}

// ----------------------------------------------------- checkpoint frame ---

TEST(Checkpoint, FrameRoundTrips) {
  const std::string payload = "predictor bytes stand-in";
  std::ostringstream os(std::ios::binary);
  core::write_checkpoint(os, payload);
  std::istringstream is(std::move(os).str(), std::ios::binary);
  EXPECT_EQ(core::read_checkpoint(is), payload);
}

TEST(Checkpoint, RejectsTruncatedBitFlippedAndWrongVersion) {
  const std::string payload(1024, 'p');
  std::ostringstream os(std::ios::binary);
  core::write_checkpoint(os, payload);
  const std::string frame = std::move(os).str();

  for (const std::size_t keep : {std::size_t{3}, frame.size() / 2}) {
    std::istringstream is(frame.substr(0, keep), std::ios::binary);
    EXPECT_THROW(core::read_checkpoint(is), core::CheckpointError);
  }

  // Flip one payload bit: the CRC must catch it.
  std::string flipped = frame;
  flipped[frame.size() - 7] ^= 0x10;
  std::istringstream bad_crc(flipped, std::ios::binary);
  EXPECT_THROW(core::read_checkpoint(bad_crc), core::CheckpointError);

  // Bump the version field (bytes 4..8 after the magic).
  std::string versioned = frame;
  versioned[4] = 99;
  std::istringstream bad_version(versioned, std::ios::binary);
  EXPECT_THROW(core::read_checkpoint(bad_version), core::CheckpointError);

  std::string magicless = frame;
  magicless[0] ^= 0xFF;
  std::istringstream bad_magic(magicless, std::ios::binary);
  EXPECT_THROW(core::read_checkpoint(bad_magic), core::CheckpointError);
}

TEST(Checkpoint, FileRoundTripAndLastGoodFallback) {
  CheckpointPath path("prionn_test_fallback.ckpt");
  const auto jobs = tiny_jobs(48);
  core::PrionnPredictor p(tiny_predictor_options());
  p.train(jobs);

  core::OnlineCheckpointState st;
  st.next_index = 40;
  st.submissions_since_train = 0;
  st.embedding_ready = true;
  core::write_checkpoint_file(path.str(), p, st);

  auto primary = core::resume_checkpoint(path.str());
  ASSERT_TRUE(primary.checkpoint.has_value());
  EXPECT_EQ(primary.source, core::CheckpointSource::kPrimary);
  EXPECT_EQ(primary.checkpoint->state.next_index, 40u);
  EXPECT_TRUE(primary.checkpoint->state.embedding_ready);
  EXPECT_EQ(predictor_bytes(primary.checkpoint->predictor),
            predictor_bytes(p));

  // Second generation, then tear the primary: resume must fall back to
  // the rotated last-good file, which still holds generation one.
  st.next_index = 80;
  core::write_checkpoint_file(path.str(), p, st);
  fs::resize_file(path.str(), fs::file_size(path.str()) / 2);
  auto fallback = core::resume_checkpoint(path.str());
  ASSERT_TRUE(fallback.checkpoint.has_value());
  EXPECT_EQ(fallback.source, core::CheckpointSource::kLastGood);
  EXPECT_FALSE(fallback.primary_error.empty());
  EXPECT_EQ(fallback.checkpoint->state.next_index, 40u);

  fs::remove(path.str());
  fs::remove(core::last_good_path(path.str()));
  const auto cold = core::resume_checkpoint(path.str());
  EXPECT_FALSE(cold.checkpoint.has_value());
  EXPECT_EQ(cold.source, core::CheckpointSource::kNone);
}

TEST(Checkpoint, TruncateFaultTearsPrimaryNotLastGood) {
  CheckpointPath path("prionn_test_torn.ckpt");
  core::PrionnPredictor p(tiny_predictor_options());
  p.train(tiny_jobs(48));

  fault::FaultPlan plan;
  plan.seed = 11;
  plan.point(fault::FaultPoint::kCheckpointTruncate).fire_at = {2};
  fault::ScopedFaultPlan armed(plan);

  core::OnlineCheckpointState st;
  st.next_index = 1;
  core::write_checkpoint_file(path.str(), p, st);  // survives
  st.next_index = 2;
  core::write_checkpoint_file(path.str(), p, st);  // torn after rename

  const auto resumed = core::resume_checkpoint(path.str());
  ASSERT_TRUE(resumed.checkpoint.has_value());
  EXPECT_EQ(resumed.source, core::CheckpointSource::kLastGood);
  EXPECT_EQ(resumed.checkpoint->state.next_index, 1u);
}

// -------------------------------------------------- divergence rollback ---

TEST(DivergenceRollback, PoisonedTrainThrowsAndSnapshotRestoresBitExact) {
  const auto jobs = tiny_jobs(48);
  core::PrionnPredictor p(tiny_predictor_options());
  p.train(jobs);
  const std::string snapshot = predictor_bytes(p);

  fault::FaultPlan plan;
  plan.seed = 3;
  plan.point(fault::FaultPoint::kNanPoisonBatch).fire_at = {1};
  {
    fault::ScopedFaultPlan armed(plan);
    EXPECT_THROW(p.train(jobs), prionn::nn::TrainingDiverged);
  }

  std::istringstream is(snapshot, std::ios::binary);
  p = core::PrionnPredictor::load(is);
  EXPECT_EQ(predictor_bytes(p), snapshot);
}

TEST(DivergenceRollback, GradientNormGuardTrips) {
  auto options = tiny_predictor_options();
  options.max_gradient_norm = 1e-12;  // everything is an explosion
  core::PrionnPredictor p(options);
  EXPECT_THROW(p.train(tiny_jobs(32)), prionn::nn::TrainingDiverged);
}

// ----------------------------------------------- graceful degradation ---

TEST(FallbackChain, ProvenanceWalksNnForestRequested) {
  const auto jobs = tiny_jobs(48);
  core::FallbackPredictor fallback;

  // No NN, no baseline: the user's requested runtime.
  auto p = fallback.predict(nullptr, jobs[0]);
  EXPECT_EQ(p.source, core::PredictionSource::kRequested);
  EXPECT_DOUBLE_EQ(p.value.runtime_minutes,
                   std::max(1.0, jobs[0].requested_minutes));

  // Baseline fitted: random forest on the Table-1 features.
  fallback.fit_baseline(jobs);
  EXPECT_TRUE(fallback.baseline_ready());
  p = fallback.predict(nullptr, jobs[0]);
  EXPECT_EQ(p.source, core::PredictionSource::kRandomForest);
  EXPECT_GE(p.value.runtime_minutes, 1.0);

  // Trained NN outranks the forest...
  core::PrionnPredictor nn(tiny_predictor_options());
  nn.train(jobs);
  p = fallback.predict(&nn, jobs[0]);
  EXPECT_EQ(p.source, core::PredictionSource::kNeuralNet);
  EXPECT_GT(p.confidence, 0.0);

  // ...unless the confidence gate rejects it.
  core::FallbackOptions strict;
  strict.min_confidence = 1.1;  // unattainable
  core::FallbackPredictor picky(strict);
  picky.fit_baseline(jobs);
  p = picky.predict(&nn, jobs[0]);
  EXPECT_EQ(p.source, core::PredictionSource::kRandomForest);
}

// -------------------------------------------------- input quarantine ---

TEST(Quarantine, SwfSkipsAndCountsMalformedRows) {
  std::stringstream swf;
  swf << "; comment\n";
  swf << "1 0 0 60 4 -1 -1 4 3600 -1 1 1 1 1 1 1 -1 -1\n";
  swf << "2 10 0 sixty 4 -1 -1 4 3600 -1 1 1 1 1 1 1 -1 -1\n";  // bad col 4
  swf << "3 20 0 60 4\n";                                        // short
  swf << "4 30 0 60 4 -1 -1 4 3600 -1 1 1 1 1 1 1 -1 -1\n";
  swf << "5 40 0 nan 4 -1 -1 4 3600 -1 1 1 2 1 1 1 -1 -1\n";     // nan
  tr::SwfOptions options;
  options.max_quarantine_fraction = 0.8;
  tr::QuarantineReport report;
  const auto jobs = tr::load_swf(swf, options, &report);

  EXPECT_EQ(jobs.size(), 2u);
  EXPECT_EQ(report.accepted(), 2u);
  EXPECT_EQ(report.quarantined(), 3u);
  ASSERT_EQ(report.lines().size(), 3u);
  EXPECT_EQ(report.lines()[0].line_number, 3u);
  EXPECT_NE(report.lines()[0].reason.find("non-numeric field 4"),
            std::string::npos);
  EXPECT_EQ(report.lines()[1].line_number, 4u);
  EXPECT_NE(report.lines()[1].reason.find("short line"), std::string::npos);
  EXPECT_NE(report.lines()[2].reason.find("non-numeric field 4"),
            std::string::npos);
}

TEST(Quarantine, SwfToleranceExceededThrows) {
  std::stringstream swf;
  swf << "garbage line\n";
  swf << "1 0 0 60 4 -1 -1 4 3600 -1 1 1 1 1 1 1 -1 -1\n";
  tr::SwfOptions options;
  options.max_quarantine_fraction = 0.05;  // 1 of 2 rows is way past 5%
  EXPECT_THROW(tr::load_swf(swf, options), std::runtime_error);
}

TEST(Quarantine, TraceStoreResyncsOnDamagedRecord) {
  auto jobs = tiny_jobs(3);
  jobs.resize(3);
  std::ostringstream os;
  tr::save_trace(os, jobs);
  std::string text = std::move(os).str();

  // Mangle the second record's runtime line into a non-numeric value.
  const auto pos = text.find("runtime_min", text.find("runtime_min") + 1);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("runtime_min").size(), "runtime_rot");

  tr::TraceLoadOptions options;
  options.max_quarantine_fraction = 0.5;
  tr::QuarantineReport report;
  std::istringstream is(text, std::ios::binary);
  const auto loaded = tr::load_trace(is, options, &report);

  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(report.quarantined(), 1u);
  EXPECT_EQ(loaded[0].job_id, jobs[0].job_id);
  EXPECT_EQ(loaded[1].job_id, jobs[2].job_id);
  EXPECT_EQ(loaded[1].script, jobs[2].script);

  // The default tolerance is strict: the same stream fails the load.
  std::istringstream strict_is(text, std::ios::binary);
  EXPECT_THROW(tr::load_trace(strict_is), std::runtime_error);
}

// --------------------------------------------- resilient online loop ---

core::ResilientOptions tiny_resilient_options(const std::string& path) {
  core::ResilientOptions o;
  o.online.predictor = tiny_predictor_options();
  o.online.predictor.epochs = 1;
  o.online.predictor.predict_io = false;
  o.online.retrain_interval = 40;
  o.online.train_window = 80;
  o.online.min_initial_completions = 40;
  o.fallback.min_confidence = 0.35;  // let some predictions fall to the RF
  o.fallback.forest.trees = 10;
  o.checkpoint_path = path;
  return o;
}

TEST(ResilientOnline, PoisonedRetrainRollsBackAndServingContinues) {
  CheckpointPath path("prionn_test_rollback.ckpt");
  const auto jobs = tiny_jobs(220);

  fault::FaultPlan plan;
  plan.seed = 5;
  plan.point(fault::FaultPoint::kNanPoisonBatch).fire_at = {2};
  fault::ScopedFaultPlan armed(plan);

  core::ResilientOnlineTrainer trainer(tiny_resilient_options(path.str()));
  const auto result = trainer.run(jobs);

  EXPECT_EQ(result.rejected_retrains, 1u);
  EXPECT_EQ(result.rollbacks, 1u);
  EXPECT_FALSE(result.nn_benched);
  EXPECT_GE(result.training_events, 2u);
  for (const auto& p : result.predictions) {
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(std::isfinite(p->value.runtime_minutes));
    EXPECT_GE(p->value.runtime_minutes, 1.0);
  }
}

TEST(ResilientOnline, KillAndResumeMatchesUninterruptedRun) {
  const auto jobs = tiny_jobs(220);

  CheckpointPath clean_path("prionn_test_clean.ckpt");
  core::ResilientOnlineTrainer clean(
      tiny_resilient_options(clean_path.str()));
  const auto uninterrupted = clean.run(jobs);
  ASSERT_FALSE(uninterrupted.crashed);
  ASSERT_GE(uninterrupted.training_events, 3u);

  CheckpointPath crash_path("prionn_test_crash.ckpt");
  const auto options = tiny_resilient_options(crash_path.str());
  std::size_t crash_index = 0;
  {
    fault::FaultPlan plan;
    plan.seed = 23;
    plan.point(fault::FaultPoint::kCrash).fire_at = {2};
    fault::ScopedFaultPlan armed(plan);
    core::ResilientOnlineTrainer doomed(options);
    const auto before_crash = doomed.run(jobs);
    ASSERT_TRUE(before_crash.crashed);
    crash_index = before_crash.crash_index;
    ASSERT_GT(crash_index, 0u);
    // The prefix the dead process served matches the uninterrupted run.
    for (std::size_t i = 0; i < crash_index; ++i) {
      ASSERT_TRUE(before_crash.predictions[i].has_value());
      EXPECT_EQ(before_crash.predictions[i]->value.runtime_minutes,
                uninterrupted.predictions[i]->value.runtime_minutes);
    }
  }

  // A fresh process resumes from the checkpoint: every surviving
  // prediction must match the uninterrupted run bit for bit.
  core::ResilientOnlineTrainer revived(options);
  const auto resumed = revived.run(jobs);
  EXPECT_EQ(resumed.resume_source, core::CheckpointSource::kPrimary);
  EXPECT_EQ(resumed.resume_index, crash_index);
  ASSERT_FALSE(resumed.crashed);
  for (std::size_t i = 0; i < crash_index; ++i)
    EXPECT_FALSE(resumed.predictions[i].has_value());
  for (std::size_t i = crash_index; i < jobs.size(); ++i) {
    ASSERT_TRUE(resumed.predictions[i].has_value()) << "job " << i;
    ASSERT_TRUE(uninterrupted.predictions[i].has_value());
    EXPECT_EQ(resumed.predictions[i]->value.runtime_minutes,
              uninterrupted.predictions[i]->value.runtime_minutes)
        << "job " << i;
    EXPECT_EQ(resumed.predictions[i]->source,
              uninterrupted.predictions[i]->source)
        << "job " << i;
  }
}

TEST(ResilientOnline, RepeatedRejectionsBenchTheNn) {
  CheckpointPath path("prionn_test_bench.ckpt");
  const auto jobs = tiny_jobs(220);

  auto options = tiny_resilient_options(path.str());
  options.online.predictor.max_gradient_norm = 1e-12;  // every train fails
  options.max_consecutive_rejections = 2;
  core::ResilientOnlineTrainer trainer(options);
  const auto result = trainer.run(jobs);

  EXPECT_TRUE(result.nn_benched);
  EXPECT_EQ(result.training_events, 0u);
  EXPECT_EQ(result.rejected_retrains, 2u);
  const auto counts = result.source_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(
                core::PredictionSource::kNeuralNet)],
            0u);
  // Serving never stopped: everything fell through to the last resort.
  for (const auto& p : result.predictions) ASSERT_TRUE(p.has_value());
}

// ------------------------------------------------- e2e acceptance ---

// The ISSUE's acceptance scenario: checkpoint truncation + one
// NaN-poisoned retrain + 5% garbage SWF rows, one seed, end to end. The
// run must complete without aborting, every job gets a prediction with
// provenance, and the same seed reproduces the same fault schedule.
TEST(ResilienceAcceptance, EndToEndFaultSoup) {
  std::ostringstream swf_os;
  tr::save_swf(swf_os, tiny_jobs(260));
  const std::string swf_text = std::move(swf_os).str();

  const auto serve = [&](const std::string& checkpoint) {
    fault::FaultPlan plan;
    plan.seed = 77;
    plan.point(fault::FaultPoint::kIngestGarbage).probability = 0.05;
    plan.point(fault::FaultPoint::kNanPoisonBatch).fire_at = {2};
    plan.point(fault::FaultPoint::kCheckpointTruncate).fire_at = {1};
    fault::ScopedFaultPlan armed(plan);

    tr::SwfOptions swf_options;
    swf_options.max_quarantine_fraction = 0.2;
    tr::QuarantineReport report;
    std::istringstream swf_is(swf_text);
    const auto jobs = tr::load_swf(swf_is, swf_options, &report);
    EXPECT_GT(report.quarantined(), 0u);
    EXPECT_LE(report.fraction(), 0.2);

    core::ResilientOnlineTrainer trainer(
        tiny_resilient_options(checkpoint));
    auto result = trainer.run(jobs);
    return std::pair(std::move(result), report.quarantined());
  };

  CheckpointPath path_a("prionn_test_e2e_a.ckpt");
  const auto [result, quarantined] = serve(path_a.str());

  EXPECT_EQ(result.rejected_retrains, 1u);
  EXPECT_GE(result.training_events, 2u);
  for (const auto& p : result.predictions) {
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(std::isfinite(p->value.runtime_minutes));
  }
  const auto counts = result.source_counts();
  EXPECT_EQ(counts[0] + counts[1] + counts[2], result.predictions.size());
  // The torn first checkpoint means a restart resumes from last-good.
  const auto restart = core::resume_checkpoint(path_a.str());
  ASSERT_TRUE(restart.checkpoint.has_value());

  // Same seed, fresh run: identical fault schedule, identical outcome.
  CheckpointPath path_b("prionn_test_e2e_b.ckpt");
  const auto [replay, requarantined] = serve(path_b.str());
  EXPECT_EQ(requarantined, quarantined);
  EXPECT_EQ(replay.rejected_retrains, result.rejected_retrains);
  EXPECT_EQ(replay.training_events, result.training_events);
  ASSERT_EQ(replay.predictions.size(), result.predictions.size());
  for (std::size_t i = 0; i < result.predictions.size(); ++i) {
    EXPECT_EQ(replay.predictions[i]->value.runtime_minutes,
              result.predictions[i]->value.runtime_minutes);
    EXPECT_EQ(replay.predictions[i]->source,
              result.predictions[i]->source);
  }
}

}  // namespace
