// Death tests for the PRIONN_CHECK contract macros and a thread-pool
// stress suite sized so a TSan build has real interleavings to examine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <numeric>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using prionn::util::Rng;
using prionn::util::ThreadPool;

class CheckDeathTest : public testing::Test {
 protected:
  void SetUp() override {
    // Death-test children must not inherit live pool threads.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST(CheckTest, PassingCheckHasNoEffectAndEvaluatesOnce) {
  int evaluations = 0;
  PRIONN_CHECK(++evaluations > 0) << "never shown";
  EXPECT_EQ(evaluations, 1);
}

TEST_F(CheckDeathTest, FailureReportsExpressionAndLocation) {
  EXPECT_DEATH(PRIONN_CHECK(1 == 2),
               "check_test\\.cpp.*PRIONN_CHECK\\(1 == 2\\) failed");
}

TEST_F(CheckDeathTest, FailureCarriesStreamedMessage) {
  const int got = 41;
  EXPECT_DEATH(PRIONN_CHECK(got == 42) << "expected 42, got " << got,
               "expected 42, got 41");
}

TEST_F(CheckDeathTest, CheckFiniteRejectsNanAndInfinity) {
  const double nan = std::nan("");
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_DEATH(PRIONN_CHECK_FINITE(nan), "non-finite value in `nan`");
  EXPECT_DEATH(PRIONN_CHECK_FINITE(inf), "non-finite value in `inf`");
}

TEST(CheckTest, CheckFiniteAcceptsFiniteScalarsAndSpans) {
  PRIONN_CHECK_FINITE(0.0);
  PRIONN_CHECK_FINITE(-1.5f);
  const std::vector<float> values{1.0f, -2.0f, 0.0f};
  PRIONN_CHECK_FINITE(std::span<const float>(values));
}

TEST_F(CheckDeathTest, CheckFiniteScansSpans) {
  std::vector<float> values(64, 1.0f);
  values[37] = std::numeric_limits<float>::quiet_NaN();
  const std::span<const float> span(values);
  EXPECT_DEATH(PRIONN_CHECK_FINITE(span) << "poisoned buffer",
               "poisoned buffer");
}

#if PRIONN_DCHECK_IS_ON()
TEST_F(CheckDeathTest, DcheckFiresInCheckedBuilds) {
  EXPECT_DEATH(PRIONN_DCHECK(false) << "debug contract", "debug contract");
}
#else
TEST(CheckTest, DisabledDcheckDoesNotEvaluateItsCondition) {
  int evaluations = 0;
  PRIONN_DCHECK(++evaluations > 0) << "never shown";
  EXPECT_EQ(evaluations, 0);
}
#endif

// --- Thread-pool stress -----------------------------------------------
//
// The pool below is always created with more workers than this machine
// may have cores so the signalling paths (generation bump, remaining_
// countdown, cv handoff) are exercised with real contention under TSan.

TEST(ThreadPoolStressTest, EveryIndexVisitedExactlyOnceAcrossManyRounds) {
  ThreadPool pool(4);
  constexpr std::size_t kRounds = 200;
  constexpr std::size_t kItems = 97;  // not a multiple of the pool size
  for (std::size_t round = 0; round < kRounds; ++round) {
    std::vector<int> visits(kItems, 0);
    pool.parallel_for(0, kItems, [&](std::size_t i) { ++visits[i]; });
    const int total = std::accumulate(visits.begin(), visits.end(), 0);
    ASSERT_EQ(total, static_cast<int>(kItems)) << "round " << round;
    for (std::size_t i = 0; i < kItems; ++i)
      ASSERT_EQ(visits[i], 1) << "index " << i << " round " << round;
  }
}

TEST(ThreadPoolStressTest, ChunksPartitionTheRangeExactly) {
  ThreadPool pool(4);
  for (std::size_t items : {1u, 2u, 5u, 64u, 1000u}) {
    std::atomic<std::size_t> covered{0};
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for_chunks(10, 10 + items,
                             [&](std::size_t lo, std::size_t hi) {
                               ASSERT_LT(lo, hi);
                               covered += hi - lo;
                               std::lock_guard lock(m);
                               chunks.emplace_back(lo, hi);
                             });
    EXPECT_EQ(covered.load(), items);
    std::sort(chunks.begin(), chunks.end());
    std::size_t expect_lo = 10;
    for (const auto& [lo, hi] : chunks) {
      EXPECT_EQ(lo, expect_lo);  // disjoint and gap-free
      expect_lo = hi;
    }
    EXPECT_EQ(expect_lo, 10 + items);
  }
}

TEST(ThreadPoolStressTest, SharedCounterSeesAllIncrements) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> counter{0};
  constexpr std::size_t kRounds = 50;
  constexpr std::size_t kItems = 512;
  for (std::size_t round = 0; round < kRounds; ++round)
    pool.parallel_for(0, kItems,
                      [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), kRounds * kItems);
}

TEST(ThreadPoolStressTest, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(pool.parallel_for(0, 64,
                                   [&](std::size_t i) {
                                     if (i == 33)
                                       throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool must stay usable after an exceptional round.
    std::atomic<int> ok{0};
    pool.parallel_for(0, 8, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 8);
  }
}

TEST(ThreadPoolStressTest, PerThreadRngChildrenAreIndependent) {
  // The repo-wide idiom for randomness inside parallel regions: pre-draw
  // one child seed per task, never share an Rng across threads. This test
  // pins the idiom down (and gives TSan a target if someone regresses it
  // to a shared generator).
  ThreadPool pool(4);
  Rng parent(1234);
  constexpr std::size_t kTasks = 64;
  std::vector<std::uint64_t> seeds(kTasks);
  for (auto& s : seeds) s = parent();
  std::vector<std::uint64_t> first_draw(kTasks, 0);
  pool.parallel_for(0, kTasks, [&](std::size_t t) {
    Rng rng(seeds[t]);
    first_draw[t] = rng();
  });
  std::vector<std::uint64_t> sorted = first_draw;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
      << "per-task generators must not repeat each other";

  // Deterministic: a second identical pass reproduces the draws.
  std::vector<std::uint64_t> second_draw(kTasks, 0);
  pool.parallel_for(0, kTasks, [&](std::size_t t) {
    Rng rng(seeds[t]);
    second_draw[t] = rng();
  });
  EXPECT_EQ(first_draw, second_draw);
}

TEST(ThreadPoolStressTest, GlobalPoolHandlesEmptyAndTinyRanges) {
  prionn::util::parallel_for(5, 5, [](std::size_t) { FAIL(); });
  std::atomic<int> hits{0};
  prionn::util::parallel_for(0, 1, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 1);
}

}  // namespace
