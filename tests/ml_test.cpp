// Tests for the traditional-ML substrate (the paper's kNN / DT / RF
// baselines) and its dataset/encoding plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/knn.hpp"
#include "ml/label_encoder.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ml = prionn::ml;

// ------------------------------------------------------------- Dataset ---

TEST(Dataset, AddAndAccess) {
  ml::Dataset d(2);
  d.add_row(std::vector<double>{1.0, 2.0}, 10.0);
  d.add_row(std::vector<double>{3.0, 4.0}, 20.0);
  EXPECT_EQ(d.rows(), 2u);
  EXPECT_EQ(d.features(), 2u);
  EXPECT_DOUBLE_EQ(d.feature(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.target(1), 20.0);
  EXPECT_DOUBLE_EQ(d.row(0)[1], 2.0);
}

TEST(Dataset, RejectsWrongWidth) {
  ml::Dataset d(3);
  EXPECT_THROW(d.add_row(std::vector<double>{1.0}, 0.0),
               std::invalid_argument);
}

TEST(Dataset, Subset) {
  ml::Dataset d(1);
  for (int i = 0; i < 5; ++i)
    d.add_row(std::vector<double>{static_cast<double>(i)}, i * 10.0);
  const std::vector<std::size_t> idx = {4, 0};
  const auto s = d.subset(idx);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s.target(0), 40.0);
  EXPECT_DOUBLE_EQ(s.target(1), 0.0);
}

// -------------------------------------------------------- LabelEncoder ---

TEST(LabelEncoder, AssignsStableIds) {
  ml::LabelEncoder enc;
  EXPECT_DOUBLE_EQ(enc.encode("alice"), 0.0);
  EXPECT_DOUBLE_EQ(enc.encode("bob"), 1.0);
  EXPECT_DOUBLE_EQ(enc.encode("alice"), 0.0);
  EXPECT_EQ(enc.classes(), 2u);
  EXPECT_EQ(enc.decode(1), "bob");
}

TEST(LabelEncoder, ConstLookupDoesNotInsert) {
  ml::LabelEncoder enc;
  enc.encode("known");
  EXPECT_DOUBLE_EQ(enc.encode_const("known"), 0.0);
  EXPECT_DOUBLE_EQ(enc.encode_const("unknown"), -1.0);
  EXPECT_EQ(enc.classes(), 1u);
}

// -------------------------------------------------------- DecisionTree ---

namespace {

/// y = step function of x0 (+ optional noise): one split suffices.
ml::Dataset step_data(std::size_t n, double noise, std::uint64_t seed) {
  prionn::util::Rng rng(seed);
  ml::Dataset d(2);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-1.0, 1.0);
    const double x1 = rng.uniform(-1.0, 1.0);  // irrelevant feature
    const double y = (x0 > 0.0 ? 10.0 : -10.0) + noise * rng.normal();
    d.add_row(std::vector<double>{x0, x1}, y);
  }
  return d;
}

}  // namespace

TEST(DecisionTree, FitsConstantTarget) {
  ml::Dataset d(1);
  for (int i = 0; i < 10; ++i)
    d.add_row(std::vector<double>{static_cast<double>(i)}, 7.0);
  ml::DecisionTreeRegressor tree;
  tree.fit(d);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{3.0}), 7.0);
  EXPECT_EQ(tree.node_count(), 1u);  // single leaf, no pointless splits
}

TEST(DecisionTree, FindsTheObviousSplit) {
  const auto d = step_data(200, 0.0, 1);
  ml::DecisionTreeRegressor tree;
  tree.fit(d);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.5, 0.0}), 10.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{-0.5, 0.0}), -10.0, 1e-9);
}

TEST(DecisionTree, MaxDepthLimitsTree) {
  const auto d = step_data(200, 3.0, 2);
  ml::DecisionTreeOptions opts;
  opts.max_depth = 1;
  ml::DecisionTreeRegressor tree(opts);
  tree.fit(d);
  EXPECT_LE(tree.depth(), 1u);
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const auto d = step_data(20, 1.0, 3);
  ml::DecisionTreeOptions opts;
  opts.min_samples_leaf = 10;
  ml::DecisionTreeRegressor tree(opts);
  tree.fit(d);
  // With 20 rows and a 10-row floor per leaf, depth can be at most 1.
  EXPECT_LE(tree.depth(), 1u);
}

TEST(DecisionTree, MemorisesWithoutConstraints) {
  prionn::util::Rng rng(4);
  ml::Dataset d(1);
  for (int i = 0; i < 64; ++i)
    d.add_row(std::vector<double>{static_cast<double>(i)},
              rng.uniform(0.0, 100.0));
  ml::DecisionTreeRegressor tree;
  tree.fit(d);
  for (int i = 0; i < 64; ++i)
    EXPECT_NEAR(tree.predict(std::vector<double>{static_cast<double>(i)}),
                d.target(static_cast<std::size_t>(i)), 1e-9);
}

TEST(DecisionTree, UnfittedPredictThrows) {
  ml::DecisionTreeRegressor tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(DecisionTree, EmptyFitThrows) {
  ml::DecisionTreeRegressor tree;
  ml::Dataset d(1);
  EXPECT_THROW(tree.fit(d), std::invalid_argument);
}

// -------------------------------------------------------- RandomForest ---

TEST(RandomForest, BeatsSingleNoisyTreeOutOfSample) {
  // Nonlinear target with noise: averaging should reduce variance.
  prionn::util::Rng rng(5);
  const auto make = [&rng](std::size_t n) {
    ml::Dataset d(3);
    for (std::size_t i = 0; i < n; ++i) {
      const double a = rng.uniform(-2.0, 2.0), b = rng.uniform(-2.0, 2.0),
                   c = rng.uniform(-2.0, 2.0);
      const double y = std::sin(a) * 3.0 + b * b + 0.5 * rng.normal();
      d.add_row(std::vector<double>{a, b, c}, y);
    }
    return d;
  };
  const auto train = make(400), test = make(200);

  ml::RandomForestOptions fopts;
  fopts.trees = 40;
  ml::RandomForestRegressor forest(fopts);
  forest.fit(train);

  ml::DecisionTreeRegressor tree;
  tree.fit(train);

  const auto truth = std::vector<double>(test.targets().begin(),
                                         test.targets().end());
  const double forest_mae =
      prionn::util::mean_absolute_error(truth, forest.predict_all(test));
  const double tree_mae =
      prionn::util::mean_absolute_error(truth, tree.predict_all(test));
  EXPECT_LT(forest_mae, tree_mae);
}

TEST(RandomForest, DeterministicForSeed) {
  const auto d = step_data(100, 2.0, 6);
  ml::RandomForestOptions opts;
  opts.trees = 10;
  opts.seed = 99;
  ml::RandomForestRegressor a(opts), b(opts);
  a.fit(d);
  b.fit(d);
  const std::vector<double> x = {0.3, -0.1};
  EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
}

TEST(RandomForest, TreeCount) {
  const auto d = step_data(50, 1.0, 7);
  ml::RandomForestOptions opts;
  opts.trees = 7;
  ml::RandomForestRegressor forest(opts);
  forest.fit(d);
  EXPECT_EQ(forest.tree_count(), 7u);
}

TEST(RandomForest, RejectsZeroTrees) {
  ml::RandomForestOptions opts;
  opts.trees = 0;
  EXPECT_THROW(ml::RandomForestRegressor{opts}, std::invalid_argument);
}

TEST(RandomForest, UnfittedThrows) {
  ml::RandomForestRegressor forest;
  EXPECT_THROW(forest.predict(std::vector<double>{1.0, 2.0}),
               std::logic_error);
}

TEST(DecisionTree, FeatureImportanceIdentifiesSignal) {
  // Only feature 0 carries signal; importance must concentrate there.
  const auto d = step_data(300, 0.5, 9);
  ml::DecisionTreeRegressor tree;
  tree.fit(d);
  const auto& imp = tree.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], 0.9);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(DecisionTree, ConstantTargetHasZeroImportance) {
  ml::Dataset d(2);
  for (int i = 0; i < 10; ++i)
    d.add_row(std::vector<double>{static_cast<double>(i), 1.0}, 5.0);
  ml::DecisionTreeRegressor tree;
  tree.fit(d);
  for (const double g : tree.feature_importance()) EXPECT_EQ(g, 0.0);
}

TEST(RandomForest, FeatureImportanceAveragesTrees) {
  const auto d = step_data(300, 1.0, 10);
  ml::RandomForestOptions opts;
  opts.trees = 15;
  ml::RandomForestRegressor forest(opts);
  forest.fit(d);
  const auto imp = forest.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-6);
}

TEST(RandomForest, ImportanceBeforeFitThrows) {
  ml::RandomForestRegressor forest;
  EXPECT_THROW(forest.feature_importance(), std::logic_error);
}

// ----------------------------------------------------------------- kNN ---

TEST(Knn, OneNearestNeighbourMemorises) {
  ml::Dataset d(1);
  d.add_row(std::vector<double>{0.0}, 1.0);
  d.add_row(std::vector<double>{10.0}, 2.0);
  ml::KnnOptions opts;
  opts.k = 1;
  ml::KnnRegressor knn(opts);
  knn.fit(d);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{1.0}), 1.0);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{9.0}), 2.0);
}

TEST(Knn, AveragesKNeighbours) {
  ml::Dataset d(1);
  d.add_row(std::vector<double>{0.0}, 0.0);
  d.add_row(std::vector<double>{1.0}, 10.0);
  d.add_row(std::vector<double>{100.0}, 1000.0);
  ml::KnnOptions opts;
  opts.k = 2;
  ml::KnnRegressor knn(opts);
  knn.fit(d);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.5}), 5.0);
}

TEST(Knn, DistanceWeightingFavoursCloser) {
  ml::Dataset d(1);
  d.add_row(std::vector<double>{0.0}, 0.0);
  d.add_row(std::vector<double>{10.0}, 100.0);
  ml::KnnOptions opts;
  opts.k = 2;
  opts.distance_weighted = true;
  ml::KnnRegressor knn(opts);
  knn.fit(d);
  const double near_zero = knn.predict(std::vector<double>{1.0});
  EXPECT_LT(near_zero, 50.0);
}

TEST(Knn, KLargerThanDataClamps) {
  ml::Dataset d(1);
  d.add_row(std::vector<double>{0.0}, 4.0);
  ml::KnnOptions opts;
  opts.k = 100;
  ml::KnnRegressor knn(opts);
  knn.fit(d);
  EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{5.0}), 4.0);
}

TEST(Knn, RejectsBadOptionsAndUsage) {
  ml::KnnOptions zero_k;
  zero_k.k = 0;
  EXPECT_THROW(ml::KnnRegressor{zero_k}, std::invalid_argument);
  ml::KnnRegressor knn;
  EXPECT_THROW(knn.predict(std::vector<double>{1.0}), std::logic_error);
  ml::Dataset d(2);
  d.add_row(std::vector<double>{1.0, 2.0}, 1.0);
  knn.fit(d);
  EXPECT_THROW(knn.predict(std::vector<double>{1.0}), std::invalid_argument);
}

// -------------------------------------------- comparative sanity check ---

// The paper (section 2.4) finds RF to be the strongest of the three
// traditional baselines on job-like data. Reproduce the ordering on a
// synthetic regression task with categorical-style features.
TEST(Baselines, ForestAtLeastMatchesPeersOnCategoricalData) {
  prionn::util::Rng rng(8);
  const auto make = [&rng](std::size_t n) {
    ml::Dataset d(4);
    for (std::size_t i = 0; i < n; ++i) {
      // Label-encoded categorical features, exactly like Table 1 data.
      const double user = std::floor(rng.uniform(0.0, 20.0));
      const double app = std::floor(rng.uniform(0.0, 8.0));
      const double nodes = std::pow(2.0, std::floor(rng.uniform(0.0, 5.0)));
      const double hours = std::floor(rng.uniform(1.0, 9.0));
      // Runtime depends on app and nodes in a tree-friendly way; the label
      // encoding of `user` carries no metric information (kNN's weakness).
      const double y = (app + 1.0) * 20.0 / std::sqrt(nodes) +
                       hours * 5.0 + rng.normal() * 2.0;
      d.add_row(std::vector<double>{hours, nodes, user, app}, y);
    }
    return d;
  };
  const auto train = make(500), test = make(250);
  const std::vector<double> truth(test.targets().begin(),
                                  test.targets().end());

  ml::RandomForestRegressor rf;
  rf.fit(train);
  ml::DecisionTreeRegressor dt;
  dt.fit(train);
  ml::KnnRegressor knn;
  knn.fit(train);

  const double rf_mae =
      prionn::util::mean_absolute_error(truth, rf.predict_all(test));
  const double dt_mae =
      prionn::util::mean_absolute_error(truth, dt.predict_all(test));
  const double knn_mae =
      prionn::util::mean_absolute_error(truth, knn.predict_all(test));
  EXPECT_LE(rf_mae, dt_mae * 1.05);
  EXPECT_LT(rf_mae, knn_mae);
}
