// Unit tests for the NN substrate: finite-difference gradient checks for
// every layer, loss correctness, optimiser behaviour, end-to-end learning
// on a tiny task, and serialisation round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/pool.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace nn = prionn::nn;
using prionn::tensor::Tensor;

namespace {

Tensor random_tensor(prionn::tensor::Shape shape, std::uint64_t seed) {
  prionn::util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

/// Scalar objective: sum of squares of the layer output / 2 — its gradient
/// w.r.t. the output is simply the output itself.
double objective(nn::Layer& layer, const Tensor& input) {
  const Tensor out = layer.forward(input, /*training=*/false);
  double acc = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i)
    acc += 0.5 * static_cast<double>(out[i]) * out[i];
  return acc;
}

/// Finite-difference check of both input and parameter gradients.
void check_gradients(nn::Layer& layer, Tensor input, double tolerance) {
  // Analytic gradients.
  layer.zero_gradients();
  const Tensor out = layer.forward(input, /*training=*/false);
  const Tensor grad_in = layer.backward(out);  // dObj/dOut == out

  constexpr float kEps = 1e-2f;
  // Input gradient: spot-check a spread of coordinates.
  for (std::size_t i = 0; i < input.size();
       i += std::max<std::size_t>(1, input.size() / 17)) {
    const float saved = input[i];
    input[i] = saved + kEps;
    const double up = objective(layer, input);
    input[i] = saved - kEps;
    const double down = objective(layer, input);
    input[i] = saved;
    const double numeric = (up - down) / (2.0 * kEps);
    EXPECT_NEAR(grad_in[i], numeric, tolerance)
        << "input gradient at " << i;
  }
  // Parameter gradients.
  const auto params = layer.parameters();
  const auto grads = layer.gradients();
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& w = *params[p];
    const Tensor& g = *grads[p];
    for (std::size_t i = 0; i < w.size();
         i += std::max<std::size_t>(1, w.size() / 13)) {
      const float saved = w[i];
      w[i] = saved + kEps;
      const double up = objective(layer, input);
      w[i] = saved - kEps;
      const double down = objective(layer, input);
      w[i] = saved;
      const double numeric = (up - down) / (2.0 * kEps);
      EXPECT_NEAR(g[i], numeric, tolerance)
          << "param " << p << " gradient at " << i;
    }
  }
}

}  // namespace

// ---------------------------------------------------- gradient checks ---

TEST(GradCheck, Dense) {
  prionn::util::Rng rng(1);
  nn::Dense layer(6, 4, rng);
  check_gradients(layer, random_tensor({3, 6}, 2), 2e-2);
}

TEST(GradCheck, Conv2d) {
  prionn::util::Rng rng(3);
  nn::Conv2d layer(2, 3, 3, 3, 1, 1, rng);
  check_gradients(layer, random_tensor({2, 2, 5, 5}, 4), 3e-2);
}

TEST(GradCheck, Conv2dStride2NoPad) {
  prionn::util::Rng rng(5);
  nn::Conv2d layer(1, 2, 3, 3, 2, 0, rng);
  check_gradients(layer, random_tensor({2, 1, 7, 7}, 6), 3e-2);
}

TEST(GradCheck, Conv1d) {
  prionn::util::Rng rng(7);
  nn::Conv1d layer(2, 3, 5, 1, 2, rng);
  check_gradients(layer, random_tensor({2, 2, 9}, 8), 3e-2);
}

TEST(GradCheck, Relu) {
  nn::Relu layer;
  check_gradients(layer, random_tensor({4, 6}, 9), 1e-2);
}

TEST(GradCheck, TanhLayer) {
  nn::Tanh layer;
  check_gradients(layer, random_tensor({4, 6}, 10), 1e-2);
}

TEST(GradCheck, SigmoidLayer) {
  nn::Sigmoid layer;
  check_gradients(layer, random_tensor({4, 6}, 11), 1e-2);
}

TEST(GradCheck, MaxPool2d) {
  nn::MaxPool2d layer(2);
  check_gradients(layer, random_tensor({2, 2, 6, 6}, 12), 1e-2);
}

TEST(GradCheck, MaxPool1d) {
  nn::MaxPool1d layer(2);
  check_gradients(layer, random_tensor({2, 2, 8}, 13), 1e-2);
}

TEST(GradCheck, FlattenLayer) {
  nn::Flatten layer;
  check_gradients(layer, random_tensor({3, 2, 4}, 14), 1e-2);
}

// ----------------------------------------------------------- batchnorm ---

TEST(BatchNorm, NormalisesTrainingBatch) {
  nn::BatchNorm layer(2);
  prionn::util::Rng rng(50);
  Tensor x({64, 2});
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>(rng.normal(5.0, 3.0));
  const Tensor y = layer.forward(x, /*training=*/true);
  // With gamma=1, beta=0 the output is standardised per channel.
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t n = 0; n < 64; ++n) mean += y.at(n, c);
    mean /= 64.0;
    for (std::size_t n = 0; n < 64; ++n) {
      const double d = y.at(n, c) - mean;
      var += d * d;
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, InferenceUsesRunningStatistics) {
  nn::BatchNorm layer(1, /*momentum=*/0.0);  // adopt batch stats at once
  Tensor x({4, 1}, std::vector<float>{2.0f, 4.0f, 6.0f, 8.0f});
  layer.forward(x, /*training=*/true);
  EXPECT_NEAR(layer.running_mean()[0], 5.0f, 1e-5f);
  // A constant inference input shifted by the running mean maps near 0.
  Tensor probe({1, 1}, std::vector<float>{5.0f});
  const Tensor out = layer.forward(probe, /*training=*/false);
  EXPECT_NEAR(out[0], 0.0f, 1e-3f);
}

TEST(BatchNorm, GradCheckThroughNormalisation) {
  // BatchNorm's training and inference paths differ (batch vs running
  // statistics), so the generic helper does not apply: check against the
  // training-mode objective explicitly.
  nn::BatchNorm layer(3);
  Tensor input = random_tensor({6, 3}, 51);
  const auto objective_training = [&](const Tensor& x) {
    const Tensor out = layer.forward(x, /*training=*/true);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      acc += 0.5 * static_cast<double>(out[i]) * out[i];
    return acc;
  };
  layer.zero_gradients();
  const Tensor out = layer.forward(input, /*training=*/true);
  const Tensor grad_in = layer.backward(out);

  constexpr float kEps = 1e-2f;
  for (std::size_t i = 0; i < input.size(); i += 3) {
    const float saved = input[i];
    input[i] = saved + kEps;
    const double up = objective_training(input);
    input[i] = saved - kEps;
    const double down = objective_training(input);
    input[i] = saved;
    EXPECT_NEAR(grad_in[i], (up - down) / (2.0 * kEps), 3e-2)
        << "input gradient at " << i;
  }
  const auto params = layer.parameters();
  const auto grads = layer.gradients();
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& w = *params[p];
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float saved = w[i];
      w[i] = saved + kEps;
      const double up = objective_training(input);
      w[i] = saved - kEps;
      const double down = objective_training(input);
      w[i] = saved;
      EXPECT_NEAR((*grads[p])[i], (up - down) / (2.0 * kEps), 3e-2)
          << "param " << p << " gradient at " << i;
    }
  }
}

TEST(BatchNorm, ConvolutionalShapeSupported) {
  nn::BatchNorm layer(4);
  const Tensor x = random_tensor({2, 4, 5, 5}, 52);
  const Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
  const Tensor gx = layer.backward(y);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(BatchNorm, SaveLoadRoundTrip) {
  nn::BatchNorm layer(2, 0.5);
  layer.forward(random_tensor({8, 2}, 53), true);  // populate running stats
  std::stringstream ss;
  layer.save(ss);
  auto loaded = nn::BatchNorm::load(ss);
  const Tensor probe = random_tensor({3, 2}, 54);
  nn::BatchNorm& typed = static_cast<nn::BatchNorm&>(*loaded);
  const Tensor a = layer.forward(probe, false);
  const Tensor b = typed.forward(probe, false);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(BatchNorm, RejectsInvalidConfig) {
  EXPECT_THROW(nn::BatchNorm(0), std::invalid_argument);
  EXPECT_THROW(nn::BatchNorm(2, 1.0), std::invalid_argument);
}

// --------------------------------------------------------------- shapes ---

TEST(Shapes, DensePropagation) {
  prionn::util::Rng rng(1);
  nn::Dense layer(8, 3, rng);
  EXPECT_EQ(layer.output_shape({8}), (prionn::tensor::Shape{3}));
  EXPECT_THROW(layer.output_shape({9}), std::invalid_argument);
  EXPECT_THROW(layer.output_shape({2, 4}), std::invalid_argument);
}

TEST(Shapes, Conv2dPropagation) {
  prionn::util::Rng rng(1);
  nn::Conv2d layer(3, 8, 3, 3, 1, 1, rng);
  EXPECT_EQ(layer.output_shape({3, 64, 64}),
            (prionn::tensor::Shape{8, 64, 64}));
  EXPECT_THROW(layer.output_shape({2, 64, 64}), std::invalid_argument);
}

TEST(Shapes, Conv2dStrideShrinks) {
  prionn::util::Rng rng(1);
  nn::Conv2d layer(1, 4, 3, 3, 2, 1, rng);
  EXPECT_EQ(layer.output_shape({1, 9, 9}), (prionn::tensor::Shape{4, 5, 5}));
}

TEST(Shapes, PoolPropagation) {
  nn::MaxPool2d pool(2);
  EXPECT_EQ(pool.output_shape({4, 8, 8}), (prionn::tensor::Shape{4, 4, 4}));
  EXPECT_THROW(pool.output_shape({4, 1, 1}), std::invalid_argument);
  nn::MaxPool1d pool1(4);
  EXPECT_EQ(pool1.output_shape({2, 64}), (prionn::tensor::Shape{2, 16}));
}

TEST(Shapes, FlattenCollapses) {
  nn::Flatten f;
  EXPECT_EQ(f.output_shape({4, 8, 8}), (prionn::tensor::Shape{256}));
}

// ---------------------------------------------------------------- loss ---

TEST(Loss, CrossEntropyKnownValue) {
  // Two classes, logits {0, 0}: p = 0.5, loss = ln 2.
  Tensor logits({1, 2});
  const std::vector<std::uint32_t> labels = {0};
  const auto r = nn::softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(r.value, std::log(2.0), 1e-6);
  // Gradient: p - onehot = {0.5 - 1, 0.5}.
  EXPECT_NEAR(r.grad[0], -0.5f, 1e-6f);
  EXPECT_NEAR(r.grad[1], 0.5f, 1e-6f);
}

TEST(Loss, CrossEntropyGradRowsSumToZero) {
  const Tensor logits = random_tensor({5, 7}, 21);
  const std::vector<std::uint32_t> labels = {0, 1, 2, 3, 4};
  const auto r = nn::softmax_cross_entropy(logits, labels);
  for (std::size_t n = 0; n < 5; ++n) {
    float row = 0.0f;
    for (std::size_t c = 0; c < 7; ++c) row += r.grad.at(n, c);
    EXPECT_NEAR(row, 0.0f, 1e-5f);
  }
}

TEST(Loss, CrossEntropyRejectsBadLabels) {
  Tensor logits({2, 3});
  const std::vector<std::uint32_t> bad = {0, 3};
  EXPECT_THROW(nn::softmax_cross_entropy(logits, bad), std::out_of_range);
  const std::vector<std::uint32_t> mismatch = {0};
  EXPECT_THROW(nn::softmax_cross_entropy(logits, mismatch),
               std::invalid_argument);
}

TEST(Loss, MseKnownValue) {
  Tensor out({2}, std::vector<float>{1, 3});
  Tensor target({2}, std::vector<float>{0, 0});
  const auto r = nn::mean_squared_error(out, target);
  EXPECT_NEAR(r.value, (1.0 + 9.0) / 2.0, 1e-6);
  EXPECT_NEAR(r.grad[1], 2.0f * 3.0f / 2.0f, 1e-6f);
}

// ------------------------------------------------------------ dropout ---

TEST(Dropout, InferenceIsIdentity) {
  nn::Dropout layer(0.5);
  const Tensor x = random_tensor({4, 8}, 22);
  const Tensor y = layer.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], y[i]);
}

TEST(Dropout, TrainingZeroesAndRescales) {
  nn::Dropout layer(0.5);
  Tensor x({1, 10000}, 1.0f);
  const Tensor y = layer.forward(x, /*training=*/true);
  std::size_t zeros = 0;
  double total = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f)
      ++zeros;
    else
      EXPECT_NEAR(y[i], 2.0f, 1e-6f);  // inverted scaling 1/(1-0.5)
    total += y[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.5, 0.05);
  EXPECT_NEAR(total / y.size(), 1.0, 0.1);  // expectation preserved
}

TEST(Dropout, BackwardUsesSameMask) {
  nn::Dropout layer(0.3);
  Tensor x({1, 100}, 1.0f);
  const Tensor y = layer.forward(x, /*training=*/true);
  Tensor g({1, 100}, 1.0f);
  const Tensor gx = layer.backward(g);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(gx[i], y[i]);
}

TEST(Dropout, RejectsInvalidRate) {
  EXPECT_THROW(nn::Dropout(-0.1), std::invalid_argument);
  EXPECT_THROW(nn::Dropout(1.0), std::invalid_argument);
}

// ---------------------------------------------------------- optimisers ---

TEST(Optimizer, SgdStepDirection) {
  Tensor w({2}, std::vector<float>{1.0f, 1.0f});
  Tensor g({2}, std::vector<float>{0.5f, -0.5f});
  nn::Sgd opt(0.1);
  opt.step({&w}, {&g});
  EXPECT_NEAR(w[0], 0.95f, 1e-6f);
  EXPECT_NEAR(w[1], 1.05f, 1e-6f);
}

TEST(Optimizer, SgdMomentumAccumulates) {
  Tensor w({1}, std::vector<float>{0.0f});
  Tensor g({1}, std::vector<float>{1.0f});
  nn::Sgd opt(1.0, 0.9);
  opt.step({&w}, {&g});
  const float first = w[0];
  opt.step({&w}, {&g});
  const float second_step = w[0] - first;
  EXPECT_NEAR(first, -1.0f, 1e-6f);
  EXPECT_NEAR(second_step, -1.9f, 1e-6f);
}

TEST(Optimizer, SgdWeightDecayShrinks) {
  Tensor w({1}, std::vector<float>{1.0f});
  Tensor g({1}, std::vector<float>{0.0f});
  nn::Sgd opt(0.1, 0.0, 0.5);
  opt.step({&w}, {&g});
  EXPECT_NEAR(w[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Optimizer, AdamFirstStepMagnitude) {
  // With bias correction, the first Adam step is ~lr regardless of scale.
  Tensor w({1}, std::vector<float>{0.0f});
  Tensor g({1}, std::vector<float>{123.0f});
  nn::Adam opt(0.01);
  opt.step({&w}, {&g});
  EXPECT_NEAR(w[0], -0.01f, 1e-4f);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  // Minimise (w - 3)^2.
  Tensor w({1}, std::vector<float>{0.0f});
  nn::Adam opt(0.1);
  for (int i = 0; i < 500; ++i) {
    Tensor g({1}, std::vector<float>{2.0f * (w[0] - 3.0f)});
    opt.step({&w}, {&g});
  }
  EXPECT_NEAR(w[0], 3.0f, 0.05f);
}

TEST(Optimizer, RejectsNonPositiveLr) {
  EXPECT_THROW(nn::Sgd(0.0), std::invalid_argument);
  EXPECT_THROW(nn::Adam(-1.0), std::invalid_argument);
}

TEST(Optimizer, MismatchedParamsThrow) {
  Tensor w({1});
  nn::Sgd opt(0.1);
  EXPECT_THROW(opt.step({&w}, {}), std::invalid_argument);
}

// ------------------------------------------------------------- network ---

namespace {

/// Tiny 2-class spiral-ish task: class = (x0 * x1 > 0).
void make_xor_data(Tensor& x, std::vector<std::uint32_t>& y, std::size_t n,
                   std::uint64_t seed) {
  prionn::util::Rng rng(seed);
  x = Tensor({n, 2});
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(-1.0, 1.0), b = rng.uniform(-1.0, 1.0);
    x.at(i, 0) = static_cast<float>(a);
    x.at(i, 1) = static_cast<float>(b);
    y[i] = (a * b > 0.0) ? 1 : 0;
  }
}

nn::Network make_mlp(std::uint64_t seed) {
  prionn::util::Rng rng(seed);
  nn::Network net;
  net.emplace<nn::Dense>(2, 16, rng);
  net.emplace<nn::Tanh>();
  net.emplace<nn::Dense>(16, 2, rng);
  return net;
}

}  // namespace

TEST(Network, LearnsXor) {
  Tensor x;
  std::vector<std::uint32_t> y;
  make_xor_data(x, y, 256, 31);
  auto net = make_mlp(32);
  nn::Adam opt(0.01);
  nn::FitOptions fit;
  fit.epochs = 60;
  fit.batch_size = 32;
  const auto report = net.fit(x, y, opt, fit);
  EXPECT_LT(report.final_loss(), report.epoch_loss.front());
  EXPECT_GT(net.accuracy(x, y), 0.9);
}

TEST(Network, WarmStartImproves) {
  Tensor x;
  std::vector<std::uint32_t> y;
  make_xor_data(x, y, 256, 33);
  auto net = make_mlp(34);
  nn::Adam opt(0.01);
  nn::FitOptions fit;
  fit.epochs = 10;
  net.fit(x, y, opt, fit);
  const double acc1 = net.accuracy(x, y);
  net.fit(x, y, opt, fit);  // continue training — warm start
  net.fit(x, y, opt, fit);
  const double acc2 = net.accuracy(x, y);
  EXPECT_GE(acc2, acc1 - 0.02);  // monotone up to batch noise
  EXPECT_GT(acc2, 0.85);
}

TEST(Network, PredictClassesMatchesArgmaxOfProbabilities) {
  auto net = make_mlp(35);
  const Tensor x = random_tensor({8, 2}, 36);
  const auto classes = net.predict_classes(x);
  const Tensor probs = net.predict_probabilities(x);
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t cls =
        probs.at(i, 0) >= probs.at(i, 1) ? 0u : 1u;
    EXPECT_EQ(classes[i], cls);
    EXPECT_NEAR(probs.at(i, 0) + probs.at(i, 1), 1.0f, 1e-5f);
  }
}

TEST(Network, OutputShapeComposition) {
  prionn::util::Rng rng(37);
  nn::Network net;
  net.emplace<nn::Conv2d>(1, 4, 3, 3, 1, 1, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::MaxPool2d>(2);
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(4 * 8 * 8, 10, rng);
  EXPECT_EQ(net.output_shape({1, 16, 16}), (prionn::tensor::Shape{10}));
  EXPECT_GT(net.parameter_count(), 0u);
  const auto text = net.summary({1, 16, 16});
  EXPECT_NE(text.find("conv2d"), std::string::npos);
  EXPECT_NE(text.find("dense"), std::string::npos);
}

TEST(Network, SaveLoadRoundTripPreservesPredictions) {
  Tensor x;
  std::vector<std::uint32_t> y;
  make_xor_data(x, y, 64, 38);
  auto net = make_mlp(39);
  nn::Adam opt(0.01);
  nn::FitOptions fit;
  fit.epochs = 5;
  net.fit(x, y, opt, fit);

  std::stringstream ss;
  net.save(ss);
  auto loaded = nn::Network::load(ss);
  const auto before = net.predict_classes(x);
  const auto after = loaded.predict_classes(x);
  EXPECT_EQ(before, after);
}

TEST(Network, SaveLoadAllLayerKinds) {
  prionn::util::Rng rng(40);
  nn::Network net;
  net.emplace<nn::Conv2d>(1, 2, 3, 3, 1, 1, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::MaxPool2d>(2);
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dropout>(0.2);
  net.emplace<nn::Dense>(2 * 4 * 4, 6, rng);
  net.emplace<nn::Tanh>();
  net.emplace<nn::Dense>(6, 3, rng);
  net.emplace<nn::Sigmoid>();

  std::stringstream ss;
  net.save(ss);
  auto loaded = nn::Network::load(ss);
  EXPECT_EQ(loaded.depth(), net.depth());
  const Tensor x = random_tensor({2, 1, 8, 8}, 41);
  const Tensor a = net.forward(x, false);
  const Tensor b = loaded.forward(x, false);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Network, LoadRejectsBadMagic) {
  std::stringstream ss("garbage data here");
  EXPECT_THROW(nn::Network::load(ss), std::runtime_error);
}

TEST(Network, Conv1dNetworkTrains) {
  // Signal classification: class 1 if the mean of the signal is positive.
  prionn::util::Rng rng(42);
  const std::size_t n = 128;
  Tensor x({n, 1, 16});
  std::vector<std::uint32_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double offset = rng.uniform(-1.0, 1.0);
    for (std::size_t j = 0; j < 16; ++j)
      x.at(i, 0, j) = static_cast<float>(offset + 0.1 * rng.normal());
    y[i] = offset > 0.0 ? 1 : 0;
  }
  nn::Network net;
  net.emplace<nn::Conv1d>(1, 4, 3, 1, 1, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::MaxPool1d>(4);
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(16, 2, rng);
  nn::Adam opt(0.01);
  nn::FitOptions fit;
  fit.epochs = 30;
  net.fit(x, y, opt, fit);
  EXPECT_GT(net.accuracy(x, y), 0.9);
}

TEST(Network, LrDecayScheduleRestoresBaseRate) {
  Tensor x;
  std::vector<std::uint32_t> y;
  make_xor_data(x, y, 64, 45);
  auto net = make_mlp(46);
  nn::Adam opt(0.01);
  nn::FitOptions fit;
  fit.epochs = 5;
  fit.lr_decay_per_epoch = 0.5;
  net.fit(x, y, opt, fit);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.01);  // restored after fit
}

TEST(Network, EarlyStoppingHaltsOnPlateau) {
  Tensor x;
  std::vector<std::uint32_t> y;
  make_xor_data(x, y, 64, 47);
  auto net = make_mlp(48);
  // A tiny learning rate plateaus immediately.
  nn::Adam opt(1e-9);
  nn::FitOptions fit;
  fit.epochs = 50;
  fit.early_stop_patience = 3;
  fit.min_loss_delta = 1e-3;
  const auto report = net.fit(x, y, opt, fit);
  EXPECT_LT(report.epoch_loss.size(), 50u);
  EXPECT_GE(report.epoch_loss.size(), 3u);
}

TEST(Network, BatchNormNetworkTrains) {
  Tensor x;
  std::vector<std::uint32_t> y;
  make_xor_data(x, y, 256, 49);
  prionn::util::Rng rng(55);
  nn::Network net;
  net.emplace<nn::Dense>(2, 16, rng);
  net.emplace<nn::BatchNorm>(16);
  net.emplace<nn::Tanh>();
  net.emplace<nn::Dense>(16, 2, rng);
  nn::Adam opt(0.01);
  nn::FitOptions fit;
  fit.epochs = 60;
  net.fit(x, y, opt, fit);
  EXPECT_GT(net.accuracy(x, y), 0.85);
}

TEST(Network, GradientClippingBounds) {
  Tensor x;
  std::vector<std::uint32_t> y;
  make_xor_data(x, y, 32, 43);
  auto net = make_mlp(44);
  nn::Adam opt(0.01);
  // Train one clipped batch; gradients afterwards must respect the bound.
  net.train_batch(x, y, opt, /*gradient_clip=*/1e-4);
  for (const auto* g : net.gradients())
    for (std::size_t i = 0; i < g->size(); ++i)
      EXPECT_LE(std::abs((*g)[i]), 1e-4f + 1e-7f);
}
