// Tests for the character-level word2vec substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "embed/char_vocab.hpp"
#include "embed/word2vec.hpp"

namespace e = prionn::embed;

TEST(CharVocab, AsciiIdentity) {
  EXPECT_EQ(e::CharVocab::token('A'), 65u);
  EXPECT_EQ(e::CharVocab::token(' '), 32u);
  EXPECT_EQ(e::CharVocab::token('\n'), 10u);
}

TEST(CharVocab, NonAsciiMapsToZero) {
  EXPECT_EQ(e::CharVocab::token(static_cast<char>(0xC3)), 0u);
}

TEST(CharVocab, Tokenize) {
  const auto toks = e::CharVocab::tokenize("ab");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], 97u);
  EXPECT_EQ(toks[1], 98u);
}

TEST(CharVocab, CountFrequencies) {
  const std::vector<std::vector<std::size_t>> corpus = {{97, 97, 98}, {97}};
  const auto counts = e::CharVocab::count_frequencies(corpus);
  EXPECT_EQ(counts[97], 3u);
  EXPECT_EQ(counts[98], 1u);
  EXPECT_EQ(counts[99], 0u);
}

TEST(CharEmbedding, RejectsWrongTableSize) {
  EXPECT_THROW(e::CharEmbedding(4, std::vector<float>(10)),
               std::invalid_argument);
}

TEST(CharEmbedding, VectorLookup) {
  std::vector<float> table(e::CharVocab::kSize * 2, 0.0f);
  table[97 * 2] = 1.0f;
  table[97 * 2 + 1] = 2.0f;
  const e::CharEmbedding emb(2, std::move(table));
  const auto v = emb.vector_of('a');
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 1.0f);
  EXPECT_EQ(v[1], 2.0f);
}

TEST(CharEmbedding, SaveLoadRoundTrip) {
  std::vector<float> table(e::CharVocab::kSize * 3);
  for (std::size_t i = 0; i < table.size(); ++i)
    table[i] = static_cast<float>(i) * 0.25f;
  const e::CharEmbedding emb(3, table);
  std::stringstream ss;
  emb.save(ss);
  const auto loaded = e::CharEmbedding::load(ss);
  EXPECT_EQ(loaded.dimension(), 3u);
  for (std::size_t t = 0; t < e::CharVocab::kSize; ++t) {
    const auto a = emb.vector(t), b = loaded.vector(t);
    for (std::size_t d = 0; d < 3; ++d) EXPECT_EQ(a[d], b[d]);
  }
}

TEST(CharEmbedding, LoadRejectsGarbage) {
  std::stringstream ss("junk");
  EXPECT_THROW(e::CharEmbedding::load(ss), std::runtime_error);
}

namespace {

/// Synthetic corpus where digits always appear between the same delimiters
/// and letters in a different context — word2vec should group digits
/// together.
std::vector<std::string> contextual_corpus() {
  std::vector<std::string> corpus;
  for (int rep = 0; rep < 60; ++rep) {
    for (char d = '0'; d <= '9'; ++d)
      corpus.push_back(std::string("=") + d + ";" + "=" + d + ";" + "=" + d +
                       ";");
    for (char c = 'a'; c <= 'j'; ++c)
      corpus.push_back(std::string(" ") + c + "_" + " " + c + "_" + " " + c +
                       "_");
  }
  return corpus;
}

}  // namespace

TEST(Word2Vec, TrainsAndProducesFiniteVectors) {
  e::Word2VecOptions opts;
  opts.dimension = 4;
  opts.epochs = 1;
  e::Word2VecTrainer trainer(opts);
  const auto emb = trainer.train(contextual_corpus());
  EXPECT_EQ(emb.dimension(), 4u);
  for (std::size_t t = 0; t < e::CharVocab::kSize; ++t)
    for (const float v : emb.vector(t)) EXPECT_TRUE(std::isfinite(v));
}

TEST(Word2Vec, SimilarContextsYieldSimilarVectors) {
  e::Word2VecOptions opts;
  opts.dimension = 8;
  opts.epochs = 6;
  opts.seed = 5;
  e::Word2VecTrainer trainer(opts);
  const auto emb = trainer.train(contextual_corpus());
  // Digits share contexts with digits; letters with letters. Averaged
  // within-group similarity should exceed the cross-group similarity.
  double within = 0.0, across = 0.0;
  int wn = 0, an = 0;
  for (char a = '0'; a <= '9'; ++a)
    for (char b = '0'; b <= '9'; ++b)
      if (a != b) {
        within += emb.similarity(a, b);
        ++wn;
      }
  for (char a = '0'; a <= '9'; ++a)
    for (char b = 'a'; b <= 'j'; ++b) {
      across += emb.similarity(a, b);
      ++an;
    }
  EXPECT_GT(within / wn, across / an);
}

TEST(Word2Vec, DeterministicForSeed) {
  e::Word2VecOptions opts;
  opts.dimension = 4;
  opts.epochs = 1;
  opts.seed = 17;
  const auto corpus = contextual_corpus();
  const auto a = e::Word2VecTrainer(opts).train(corpus);
  const auto b = e::Word2VecTrainer(opts).train(corpus);
  for (std::size_t t = 0; t < e::CharVocab::kSize; ++t) {
    const auto va = a.vector(t), vb = b.vector(t);
    for (std::size_t d = 0; d < 4; ++d) ASSERT_EQ(va[d], vb[d]);
  }
}

TEST(Word2Vec, DifferentSeedsDiffer) {
  e::Word2VecOptions a_opts, b_opts;
  a_opts.epochs = b_opts.epochs = 1;
  a_opts.seed = 1;
  b_opts.seed = 2;
  const auto corpus = contextual_corpus();
  const auto a = e::Word2VecTrainer(a_opts).train(corpus);
  const auto b = e::Word2VecTrainer(b_opts).train(corpus);
  bool any_diff = false;
  for (std::size_t t = 0; t < e::CharVocab::kSize && !any_diff; ++t) {
    const auto va = a.vector(t), vb = b.vector(t);
    for (std::size_t d = 0; d < va.size(); ++d)
      if (va[d] != vb[d]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Word2Vec, EmptyCorpusYieldsEmbedding) {
  e::Word2VecTrainer trainer;
  const auto emb = trainer.train(std::vector<std::string>{});
  EXPECT_EQ(emb.dimension(), 4u);  // defaults still hold
}

TEST(Word2Vec, RejectsInvalidOptions) {
  e::Word2VecOptions zero_dim;
  zero_dim.dimension = 0;
  EXPECT_THROW(e::Word2VecTrainer{zero_dim}, std::invalid_argument);
  e::Word2VecOptions zero_window;
  zero_window.window = 0;
  EXPECT_THROW(e::Word2VecTrainer{zero_window}, std::invalid_argument);
}

TEST(Word2Vec, CbowAlsoGroupsSimilarContexts) {
  e::Word2VecOptions opts;
  opts.algorithm = e::Word2VecAlgorithm::kCbow;
  opts.dimension = 8;
  opts.epochs = 6;
  opts.seed = 5;
  const auto emb = e::Word2VecTrainer(opts).train(contextual_corpus());
  double within = 0.0, across = 0.0;
  int wn = 0, an = 0;
  for (char a = '0'; a <= '9'; ++a)
    for (char b = '0'; b <= '9'; ++b)
      if (a != b) {
        within += emb.similarity(a, b);
        ++wn;
      }
  for (char a = '0'; a <= '9'; ++a)
    for (char b = 'a'; b <= 'j'; ++b) {
      across += emb.similarity(a, b);
      ++an;
    }
  EXPECT_GT(within / wn, across / an);
}

TEST(Word2Vec, CbowAndSkipGramProduceDifferentEmbeddings) {
  e::Word2VecOptions sg, cb;
  sg.epochs = cb.epochs = 1;
  cb.algorithm = e::Word2VecAlgorithm::kCbow;
  const auto corpus = contextual_corpus();
  const auto a = e::Word2VecTrainer(sg).train(corpus);
  const auto b = e::Word2VecTrainer(cb).train(corpus);
  bool any_diff = false;
  for (std::size_t t = 0; t < e::CharVocab::kSize && !any_diff; ++t) {
    const auto va = a.vector(t), vb = b.vector(t);
    for (std::size_t d = 0; d < va.size(); ++d)
      if (va[d] != vb[d]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

class Word2VecDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Word2VecDims, OutputDimensionMatches) {
  e::Word2VecOptions opts;
  opts.dimension = GetParam();
  opts.epochs = 1;
  const auto emb = e::Word2VecTrainer(opts).train(
      std::vector<std::string>{"hello world", "goodbye world"});
  EXPECT_EQ(emb.dimension(), GetParam());
}

// The paper evaluates output vector sizes 4 and 8.
INSTANTIATE_TEST_SUITE_P(PaperSizes, Word2VecDims,
                         ::testing::Values(2u, 4u, 8u, 16u));
