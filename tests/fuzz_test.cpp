// Robustness tests: the text-facing components (script parser, image
// mapper, trace/SWF loaders) must handle arbitrary and adversarial input
// without crashing — scripts on production systems contain anything.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/script_image.hpp"
#include "trace/features.hpp"
#include "trace/store.hpp"
#include "trace/swf.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace {

std::string random_bytes(std::size_t n, std::uint64_t seed) {
  prionn::util::Rng rng(seed);
  std::string s(n, '\0');
  for (auto& c : s)
    c = static_cast<char>(rng.uniform_int(0, 255));
  return s;
}

std::string random_scriptish(std::size_t lines, std::uint64_t seed) {
  prionn::util::Rng rng(seed);
  static const char* fragments[] = {
      "#SBATCH --time=",       "#SBATCH --nodes",  "#SBATCH",
      "srun -N ",              "cd /tmp/",         "# submitted from ",
      "--time",                "=",                ":::",
      "#SBATCH --mail-user=@", "\t \t",            "12:34:56:78",
      "#SBATCH --ntasks-per-node=x",
  };
  std::string s;
  for (std::size_t l = 0; l < lines; ++l) {
    const int pieces = static_cast<int>(rng.uniform_int(0, 4));
    for (int p = 0; p < pieces; ++p) {
      s += fragments[rng.uniform_int(0, std::size(fragments) - 1)];
      s += std::to_string(rng.uniform_int(-100, 100000));
    }
    s += '\n';
  }
  return s;
}

}  // namespace

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrashParser) {
  const auto text = random_bytes(2048, GetParam());
  const auto f = prionn::trace::parse_script(text);
  // Whatever came out must be structurally sane.
  EXPECT_GE(f.requested_nodes, 0.0);
  EXPECT_TRUE(std::isfinite(f.requested_hours));
}

TEST_P(ParserFuzz, ScriptLikeGarbageNeverCrashParser) {
  const auto text = random_scriptish(80, GetParam());
  const auto f = prionn::trace::parse_script(text);
  EXPECT_TRUE(std::isfinite(f.requested_tasks));
}

TEST_P(ParserFuzz, MapperHandlesArbitraryBytes) {
  prionn::core::ScriptImageOptions opts;
  opts.rows = opts.cols = 16;
  for (const auto transform :
       {prionn::core::Transform::kBinary, prionn::core::Transform::kSimple,
        prionn::core::Transform::kOneHot}) {
    opts.transform = transform;
    const prionn::core::ScriptImageMapper mapper(opts);
    const auto img = mapper.map_2d(random_bytes(4096, GetParam()));
    for (std::size_t i = 0; i < img.size(); ++i)
      ASSERT_TRUE(std::isfinite(img[i]));
  }
}

TEST_P(ParserFuzz, TraceLoaderRejectsGarbageGracefully) {
  std::stringstream ss(random_bytes(512, GetParam()));
  EXPECT_THROW(prionn::trace::load_trace(ss), std::runtime_error);
}

TEST_P(ParserFuzz, SwfLoaderHandlesNumericNoise) {
  // Lines of random numbers in roughly SWF shape must either parse into
  // sane records or throw; never crash or produce NaNs.
  prionn::util::Rng rng(GetParam());
  std::stringstream ss;
  for (int line = 0; line < 30; ++line) {
    for (int f = 0; f < 18; ++f)
      ss << rng.uniform_int(-5, 100000) << ' ';
    ss << '\n';
  }
  try {
    const auto jobs = prionn::trace::load_swf(ss);
    for (const auto& j : jobs) {
      EXPECT_TRUE(std::isfinite(j.runtime_minutes));
      EXPECT_GE(j.runtime_minutes, 0.0);
      EXPECT_LE(j.runtime_minutes, 960.0);
      EXPECT_GE(j.requested_nodes, 1u);
    }
  } catch (const std::runtime_error&) {
    // Acceptable outcome for malformed input.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

// Hand-picked adversarial script fragments.
TEST(ParserAdversarial, DegenerateSbatchLines) {
  const char* cases[] = {
      "#SBATCH\n",
      "#SBATCH --time\n",
      "#SBATCH --time=\n",
      "#SBATCH --time=::\n",
      "#SBATCH --time=-5:00:00\n",
      "#SBATCH --nodes=999999999999999999999\n",
      "#SBATCH --nodes=NaN\n",
      "#SBATCH --mail-user=\n",
      "cd\n",
      "cd \n",
      "# submitted from\n",
      "\r\n\r\n\r\n",
      "#SBATCH --time=1:2:3:4:5\n",
  };
  for (const char* text : cases) {
    const auto f = prionn::trace::parse_script(text);
    EXPECT_TRUE(std::isfinite(f.requested_hours)) << text;
    EXPECT_TRUE(std::isfinite(f.requested_nodes)) << text;
  }
}

TEST(ParserAdversarial, EnormousSingleLine) {
  std::string huge = "#SBATCH --job-name=";
  huge += std::string(1 << 20, 'x');
  huge += '\n';
  const auto f = prionn::trace::parse_script(huge);
  EXPECT_FALSE(f.job_name.empty());

  prionn::core::ScriptImageOptions opts;
  opts.rows = opts.cols = 64;
  opts.transform = prionn::core::Transform::kSimple;
  const prionn::core::ScriptImageMapper mapper(opts);
  const auto grid = mapper.to_grid(huge);
  EXPECT_EQ(grid.size(), 64u);
  EXPECT_EQ(grid[0].size(), 64u);  // cropped, not exploded
}

TEST(ParserAdversarial, EmptyScript) {
  const auto f = prionn::trace::parse_script("");
  EXPECT_EQ(f.user, "");
  prionn::core::ScriptImageOptions opts;
  opts.rows = opts.cols = 8;
  opts.transform = prionn::core::Transform::kBinary;
  const prionn::core::ScriptImageMapper mapper(opts);
  const auto img = mapper.map_2d("");
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_EQ(img[i], 0.0f);
}

TEST(StringUtilAdversarial, SplitLinesOnPathologicalInput) {
  EXPECT_TRUE(prionn::util::split_lines("").empty());
  EXPECT_EQ(prionn::util::split_lines("\n\n\n").size(), 3u);
  EXPECT_EQ(prionn::util::split_lines("\r\n").size(), 1u);
  EXPECT_EQ(prionn::util::split_lines(std::string(1, '\0')).size(), 1u);
}
