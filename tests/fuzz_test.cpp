// Robustness tests: the text-facing components (script parser, image
// mapper, trace/SWF loaders) must handle arbitrary and adversarial input
// without crashing — scripts on production systems contain anything.
// The byte diets come from fuzz/harness/generators.hpp and the decoder
// sweeps drive the same entry points as the libFuzzer harnesses, so this
// suite, the corpus replayer, and the fuzzers exercise identical code.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "core/checkpoint.hpp"
#include "core/script_image.hpp"
#include "harness/fuzz_entry.hpp"
#include "harness/generators.hpp"
#include "obs/json.hpp"
#include "trace/features.hpp"
#include "trace/store.hpp"
#include "trace/swf.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

using prionn::fuzz::mutate;
using prionn::fuzz::random_bytes;
using prionn::fuzz::random_scriptish;

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrashParser) {
  const auto text = random_bytes(2048, GetParam());
  const auto f = prionn::trace::parse_script(text);
  // Whatever came out must be structurally sane.
  EXPECT_GE(f.requested_nodes, 0.0);
  EXPECT_TRUE(std::isfinite(f.requested_hours));
}

TEST_P(ParserFuzz, ScriptLikeGarbageNeverCrashParser) {
  const auto text = random_scriptish(80, GetParam());
  const auto f = prionn::trace::parse_script(text);
  EXPECT_TRUE(std::isfinite(f.requested_tasks));
}

TEST_P(ParserFuzz, MapperHandlesArbitraryBytes) {
  prionn::core::ScriptImageOptions opts;
  opts.rows = opts.cols = 16;
  for (const auto transform :
       {prionn::core::Transform::kBinary, prionn::core::Transform::kSimple,
        prionn::core::Transform::kOneHot}) {
    opts.transform = transform;
    const prionn::core::ScriptImageMapper mapper(opts);
    const auto img = mapper.map_2d(random_bytes(4096, GetParam()));
    for (std::size_t i = 0; i < img.size(); ++i)
      ASSERT_TRUE(std::isfinite(img[i]));
  }
}

TEST_P(ParserFuzz, TraceLoaderRejectsGarbageGracefully) {
  std::stringstream ss(random_bytes(512, GetParam()));
  EXPECT_THROW(prionn::trace::load_trace(ss), std::runtime_error);
}

TEST_P(ParserFuzz, SwfLoaderHandlesNumericNoise) {
  // Lines of random numbers in roughly SWF shape must either parse into
  // sane records or throw; never crash or produce NaNs.
  prionn::util::Rng rng(GetParam());
  std::stringstream ss;
  for (int line = 0; line < 30; ++line) {
    for (int f = 0; f < 18; ++f)
      ss << rng.uniform_int(-5, 100000) << ' ';
    ss << '\n';
  }
  try {
    const auto jobs = prionn::trace::load_swf(ss);
    for (const auto& j : jobs) {
      EXPECT_TRUE(std::isfinite(j.runtime_minutes));
      EXPECT_GE(j.runtime_minutes, 0.0);
      EXPECT_LE(j.runtime_minutes, 960.0);
      EXPECT_GE(j.requested_nodes, 1u);
    }
  } catch (const std::runtime_error&) {
    // Acceptable outcome for malformed input.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

// Hand-picked adversarial script fragments.
TEST(ParserAdversarial, DegenerateSbatchLines) {
  const char* cases[] = {
      "#SBATCH\n",
      "#SBATCH --time\n",
      "#SBATCH --time=\n",
      "#SBATCH --time=::\n",
      "#SBATCH --time=-5:00:00\n",
      "#SBATCH --nodes=999999999999999999999\n",
      "#SBATCH --nodes=NaN\n",
      "#SBATCH --mail-user=\n",
      "cd\n",
      "cd \n",
      "# submitted from\n",
      "\r\n\r\n\r\n",
      "#SBATCH --time=1:2:3:4:5\n",
  };
  for (const char* text : cases) {
    const auto f = prionn::trace::parse_script(text);
    EXPECT_TRUE(std::isfinite(f.requested_hours)) << text;
    EXPECT_TRUE(std::isfinite(f.requested_nodes)) << text;
  }
}

TEST(ParserAdversarial, EnormousSingleLine) {
  std::string huge = "#SBATCH --job-name=";
  huge += std::string(1 << 20, 'x');
  huge += '\n';
  const auto f = prionn::trace::parse_script(huge);
  EXPECT_FALSE(f.job_name.empty());

  prionn::core::ScriptImageOptions opts;
  opts.rows = opts.cols = 64;
  opts.transform = prionn::core::Transform::kSimple;
  const prionn::core::ScriptImageMapper mapper(opts);
  const auto grid = mapper.to_grid(huge);
  EXPECT_EQ(grid.size(), 64u);
  EXPECT_EQ(grid[0].size(), 64u);  // cropped, not exploded
}

TEST(ParserAdversarial, EmptyScript) {
  const auto f = prionn::trace::parse_script("");
  EXPECT_EQ(f.user, "");
  prionn::core::ScriptImageOptions opts;
  opts.rows = opts.cols = 8;
  opts.transform = prionn::core::Transform::kBinary;
  const prionn::core::ScriptImageMapper mapper(opts);
  const auto img = mapper.map_2d("");
  for (std::size_t i = 0; i < img.size(); ++i) EXPECT_EQ(img[i], 0.0f);
}

TEST(StringUtilAdversarial, SplitLinesOnPathologicalInput) {
  EXPECT_TRUE(prionn::util::split_lines("").empty());
  EXPECT_EQ(prionn::util::split_lines("\n\n\n").size(), 3u);
  EXPECT_EQ(prionn::util::split_lines("\r\n").size(), 1u);
  EXPECT_EQ(prionn::util::split_lines(std::string(1, '\0')).size(), 1u);
}

namespace {

void drive(prionn::fuzz::FuzzEntry entry, const std::string& bytes) {
  entry(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
}

/// A well-formed checkpoint frame around `payload`.
std::string frame_of(const std::string& payload) {
  std::ostringstream os(std::ios::binary);
  prionn::core::write_checkpoint(os, payload);
  return std::move(os).str();
}

}  // namespace

// Every harness entry point survives raw noise and structure-aware
// mutations of a valid document — the same property the fuzzers check,
// pinned here so GCC-only environments still run a small randomized
// sweep on every ctest invocation.
class HarnessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HarnessSweep, AllEntryPointsSurviveRandomBytes) {
  const auto seed = GetParam();
  for (const auto& h : prionn::fuzz::harnesses()) {
    SCOPED_TRACE(h.name);
    drive(h.entry, random_bytes(1024, seed));
    drive(h.entry, random_bytes(7, seed ^ 0xabcdef));
    drive(h.entry, "");
  }
}

TEST_P(HarnessSweep, CheckpointFrameSurvivesMutatedFrames) {
  const auto seed = GetParam();
  const std::string valid = frame_of("payload bytes for mutation");
  for (std::uint64_t i = 0; i < 16; ++i)
    drive(prionn::fuzz::fuzz_checkpoint_frame, mutate(valid, seed * 97 + i));
}

TEST_P(HarnessSweep, ScriptHarnessSurvivesScriptishGarbage) {
  drive(prionn::fuzz::fuzz_script_image, random_scriptish(60, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HarnessSweep,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// Frame-level resume property: a truncated checkpoint frame must be
// rejected with CheckpointError at EVERY truncation point — the torn
// write modelled by the resilience layer, which relies on the reader
// never accepting a prefix.
TEST(CheckpointFrameFuzz, EveryTruncationIsRejected) {
  const std::string full = frame_of("resume state 0123456789");
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream is(full.substr(0, cut), std::ios::binary);
    EXPECT_THROW(prionn::core::read_checkpoint(is),
                 prionn::core::CheckpointError)
        << "prefix of " << cut << " bytes accepted";
  }
  // And the whole frame still reads back.
  std::istringstream is(full, std::ios::binary);
  EXPECT_EQ(prionn::core::read_checkpoint(is), "resume state 0123456789");
}

// Truncating valid JSON anywhere must yield nullopt or a parse that
// re-serialises to a fixpoint — never a crash or an exception.
TEST(ObsJsonFuzz, TruncatedDocumentsParseOrRejectCleanly) {
  const std::string doc =
      R"({"accepted":true,"loss":[0.5,0.25],"name":"x\"y","v":-1.5e-3})";
  for (std::size_t cut = 0; cut <= doc.size(); ++cut) {
    const std::string prefix = doc.substr(0, cut);
    const auto parsed = prionn::obs::json_parse(prefix);
    if (parsed) {
      const auto once = prionn::obs::json_serialize(*parsed);
      const auto again = prionn::obs::json_parse(once);
      ASSERT_TRUE(again.has_value()) << prefix;
      EXPECT_EQ(prionn::obs::json_serialize(*again), once) << prefix;
    }
    drive(prionn::fuzz::fuzz_obs_json, prefix);
  }
}
