// Corpus-replay regression driver. Replays every committed corpus entry
// under fuzz/corpus/<harness>/ through the matching entry point, on any
// compiler and any build type — this is what keeps the fuzz substrate a
// permanent regression suite on toolchains without libFuzzer. A harness
// with an empty or missing corpus fails the run: corpora are part of the
// contract, not an optional extra.
//
// Usage:
//   fuzz_regression                     replay the committed corpora
//   fuzz_regression <root>              replay corpora under <root>
//   fuzz_regression <harness> <file>..  replay specific inputs (crash
//                                       reproduction / triage)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/fuzz_entry.hpp"

#ifndef PRIONN_FUZZ_CORPUS_DIR
#define PRIONN_FUZZ_CORPUS_DIR "fuzz/corpus"
#endif

namespace fs = std::filesystem;

namespace {

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

const prionn::fuzz::Harness* find_harness(const std::string& name) {
  for (const auto& h : prionn::fuzz::harnesses())
    if (name == h.name) return &h;
  return nullptr;
}

int replay_files(const prionn::fuzz::Harness& h,
                 const std::vector<fs::path>& files) {
  for (const auto& f : files) {
    const auto bytes = slurp(f);
    std::fprintf(stderr, "  %s: %s (%zu bytes)\n", h.name,
                 f.filename().string().c_str(), bytes.size());
    h.entry(bytes.data(), bytes.size());  // a crash here IS the failure
  }
  return 0;
}

int replay_corpus(const fs::path& root) {
  bool failed = false;
  std::size_t total = 0;
  for (const auto& h : prionn::fuzz::harnesses()) {
    const fs::path dir = root / h.name;
    std::vector<fs::path> files;
    if (fs::is_directory(dir))
      for (const auto& entry : fs::directory_iterator(dir))
        if (entry.is_regular_file()) files.push_back(entry.path());
    if (files.empty()) {
      std::fprintf(stderr, "FAIL %s: no corpus entries under %s\n", h.name,
                   dir.string().c_str());
      failed = true;
      continue;
    }
    std::sort(files.begin(), files.end());  // deterministic replay order
    for (const auto& f : files) {
      const auto bytes = slurp(f);
      h.entry(bytes.data(), bytes.size());
    }
    std::fprintf(stderr, "ok   %-18s %3zu entries\n", h.name, files.size());
    total += files.size();
  }
  if (failed) return 1;
  std::fprintf(stderr, "replayed %zu corpus entries, no crashes\n", total);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3) {
    const auto* h = find_harness(argv[1]);
    if (!h) {
      std::fprintf(stderr, "unknown harness '%s'; known:", argv[1]);
      for (const auto& known : prionn::fuzz::harnesses())
        std::fprintf(stderr, " %s", known.name);
      std::fprintf(stderr, "\n");
      return 2;
    }
    std::vector<fs::path> files(argv + 2, argv + argc);
    return replay_files(*h, files);
  }
  const fs::path root = argc == 2 ? fs::path(argv[1])
                                  : fs::path(PRIONN_FUZZ_CORPUS_DIR);
  return replay_corpus(root);
}
