// Harness for core/checkpoint: the "PRCK" frame reader and the payload
// decoder behind it (PrionnPredictor::load, Adam moments, dropout RNG).
// The frame reader's contract is CheckpointError on any damage; the
// decoder additionally wraps the predictor loader's runtime_errors. A
// frame that *reads* cleanly is also round-tripped through the writer.
#include "harness/fuzz_entry.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include "core/checkpoint.hpp"

namespace prionn::fuzz {

int fuzz_checkpoint_frame(const std::uint8_t* data, std::size_t size) {
  // Bound per-input work: a frame header can legitimately announce up to
  // 1 GiB, but the fuzzer should not spend its budget streaming it.
  if (size > (1u << 20)) return -1;
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  std::istringstream is(bytes, std::ios::binary);
  std::string payload;
  try {
    payload = core::read_checkpoint(is);
  } catch (const core::CheckpointError&) {
    return 0;  // the documented rejection path
  }

  // A frame that passed magic/version/CRC must round-trip bit-exactly.
  std::ostringstream os(std::ios::binary);
  core::write_checkpoint(os, payload);
  std::istringstream back(std::move(os).str(), std::ios::binary);
  if (core::read_checkpoint(back) != payload) __builtin_trap();

  // CRC-valid payloads still carry untrusted predictor state; the decoder
  // must reject damage with CheckpointError, never crash or OOM.
  try {
    const core::DecodedCheckpoint decoded = core::decode_checkpoint(payload);
    static_cast<void>(decoded);
  } catch (const core::CheckpointError&) {
  }
  return 0;
}

}  // namespace prionn::fuzz

#if defined(PRIONN_FUZZ_MAIN)
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return prionn::fuzz::fuzz_checkpoint_frame(data, size);
}
#endif
