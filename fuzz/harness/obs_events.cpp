// Harness for obs/events: the typed JSONL parsers (retrain / window /
// ingest records) and their round-trip law. The parsers return nullopt on
// anything malformed; when a line does parse, appending the typed record
// to a fresh EventLog and re-parsing its serialisation must converge to a
// fixpoint in one step.
#include "harness/fuzz_entry.hpp"

#include <string>

#include "obs/events.hpp"

namespace prionn::fuzz {

namespace {

/// Append `e`, return the (single) serialised line.
template <typename Event>
std::string reserialize(const Event& e) {
  obs::EventLog log;
  log.append(e);
  return log.lines().front();
}

}  // namespace

int fuzz_obs_events(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 20)) return -1;
  const std::string line(reinterpret_cast<const char*>(data), size);

  if (const auto e = obs::EventLog::parse_retrain(line)) {
    const std::string out = reserialize(*e);
    const auto again = obs::EventLog::parse_retrain(out);
    if (!again || reserialize(*again) != out) __builtin_trap();
  }
  if (const auto e = obs::EventLog::parse_window(line)) {
    const std::string out = reserialize(*e);
    const auto again = obs::EventLog::parse_window(out);
    if (!again || reserialize(*again) != out) __builtin_trap();
  }
  if (const auto e = obs::EventLog::parse_ingest(line)) {
    const std::string out = reserialize(*e);
    const auto again = obs::EventLog::parse_ingest(out);
    if (!again || reserialize(*again) != out) __builtin_trap();
  }
  return 0;
}

}  // namespace prionn::fuzz

#if defined(PRIONN_FUZZ_MAIN)
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return prionn::fuzz::fuzz_obs_events(data, size);
}
#endif
