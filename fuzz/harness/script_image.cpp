// Harness for the script-facing front door: trace/features' SBATCH parser
// and core/script_image's character-grid mapper. Job scripts are the one
// input PRIONN ingests straight from users, so this path has no rejection
// branch at all — every byte string must produce finite features and a
// finite image. Any exception is a finding.
#include "harness/fuzz_entry.hpp"

#include <cmath>
#include <string>
#include <string_view>

#include "core/script_image.hpp"
#include "trace/features.hpp"

namespace prionn::fuzz {

int fuzz_script_image(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 20)) return -1;
  const std::string script(reinterpret_cast<const char*>(data), size);

  const auto f = trace::parse_script(script);
  if (!std::isfinite(f.requested_hours) || !std::isfinite(f.requested_nodes) ||
      !std::isfinite(f.requested_tasks))
    __builtin_trap();

  core::ScriptImageOptions opts;
  opts.rows = opts.cols = 16;
  for (const auto transform :
       {core::Transform::kBinary, core::Transform::kSimple,
        core::Transform::kOneHot}) {
    opts.transform = transform;
    const core::ScriptImageMapper mapper(opts);
    const auto grid = mapper.to_grid(script);
    if (grid.size() != opts.rows || grid[0].size() != opts.cols)
      __builtin_trap();
    const auto img = mapper.map_2d(script);
    for (std::size_t i = 0; i < img.size(); ++i)
      if (!std::isfinite(img[i])) __builtin_trap();
    const auto flat = mapper.map_1d(script);
    if (flat.size() != img.size()) __builtin_trap();
  }
  return 0;
}

}  // namespace prionn::fuzz

#if defined(PRIONN_FUZZ_MAIN)
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return prionn::fuzz::fuzz_script_image(data, size);
}
#endif
