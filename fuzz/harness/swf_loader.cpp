// Harness for trace/swf: the SWF importer through the quarantine path.
// Two passes per input — a tolerant load (quarantine fraction 1.0) that
// must accept anything and only route damage into the report, and the
// default strict load, whose sole escape hatch is std::runtime_error when
// the tolerance is exceeded. Script synthesis stays on: the app-catalogue
// reconstruction is part of the importer's attack surface.
#include "harness/fuzz_entry.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/quarantine.hpp"
#include "trace/swf.hpp"

namespace prionn::fuzz {

int fuzz_swf_loader(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 18)) return -1;  // script synthesis makes rows pricey
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  {
    trace::SwfOptions tolerant;
    tolerant.max_quarantine_fraction = 1.0;
    trace::QuarantineReport report;
    std::istringstream is(bytes);
    const auto jobs = trace::load_swf(is, tolerant, &report);
    // The tolerant load never throws; records it emits must be sane.
    for (const auto& j : jobs) {
      if (!std::isfinite(j.runtime_minutes) || j.runtime_minutes < 0.0)
        __builtin_trap();
      if (j.requested_nodes < 1) __builtin_trap();
    }
    if (report.fraction() < 0.0 || report.fraction() > 1.0) __builtin_trap();
  }

  try {
    std::istringstream is(bytes);
    const auto jobs = trace::load_swf(is);
    static_cast<void>(jobs);
  } catch (const std::runtime_error&) {
  }
  return 0;
}

}  // namespace prionn::fuzz

#if defined(PRIONN_FUZZ_MAIN)
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return prionn::fuzz::fuzz_swf_loader(data, size);
}
#endif
