// Harness for nn/serialize: the tagged layer-sequence loader, including
// every Layer::load (tensor headers, conv geometry, dropout RNG state).
// Contract: std::runtime_error for damage, std::invalid_argument for
// decoded-but-inconsistent layer shapes. A network that loads cleanly is
// save/load round-tripped to pin the format.
#include "harness/fuzz_entry.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include "nn/network.hpp"
#include "nn/serialize.hpp"

namespace prionn::fuzz {

int fuzz_nn_serialize(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 20)) return -1;
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  std::istringstream is(bytes, std::ios::binary);
  try {
    nn::Network net = nn::load_network(is);
    std::ostringstream os(std::ios::binary);
    nn::save_network(os, net);
    std::istringstream back(std::move(os).str(), std::ios::binary);
    nn::Network again = nn::load_network(back);
    if (again.depth() != net.depth()) __builtin_trap();
  } catch (const std::invalid_argument&) {
  } catch (const std::runtime_error&) {
  }
  return 0;
}

}  // namespace prionn::fuzz

#if defined(PRIONN_FUZZ_MAIN)
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return prionn::fuzz::fuzz_nn_serialize(data, size);
}
#endif
