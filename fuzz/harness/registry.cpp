#include "harness/fuzz_entry.hpp"

namespace prionn::fuzz {

std::span<const Harness> harnesses() {
  static const Harness table[] = {
      {"checkpoint_frame", &fuzz_checkpoint_frame},
      {"nn_serialize", &fuzz_nn_serialize},
      {"obs_json", &fuzz_obs_json},
      {"obs_events", &fuzz_obs_events},
      {"swf_loader", &fuzz_swf_loader},
      {"trace_store", &fuzz_trace_store},
      {"script_image", &fuzz_script_image},
  };
  return table;
}

}  // namespace prionn::fuzz
