// Catalogue of libFuzzer-compatible entry points over every untrusted
// input decoder in the repository. Each entry point has the classic
//   int entry(const std::uint8_t* data, std::size_t size)
// shape and the libFuzzer contract: it must return 0 (or -1 to reject an
// input from the corpus) and must NEVER crash, abort, leak, or loop
// unboundedly, whatever the bytes are. Expected parse failures are the
// decoders' documented exceptions and are caught inside the entry point;
// anything else escaping (std::bad_alloc from an allocation bomb,
// std::logic_error from a broken invariant, a signal) is a finding.
//
// The same functions are driven three ways:
//   - fuzz_<name> libFuzzer binaries under -DPRIONN_FUZZ=ON (clang only);
//   - the fuzz_regression ctest binary, which replays every committed
//     corpus entry on ordinary builds (the corpora are permanent
//     regression tests even where libFuzzer is unavailable);
//   - tests/fuzz_test.cpp, which sweeps them with randomized inputs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace prionn::fuzz {

/// core/checkpoint: "PRCK" frame reader + checkpoint payload decoder.
int fuzz_checkpoint_frame(const std::uint8_t* data, std::size_t size);
/// nn/serialize: tagged layer-sequence network loader.
int fuzz_nn_serialize(const std::uint8_t* data, std::size_t size);
/// obs/json: flat JSON reader, plus the serialize∘parse fixpoint law.
int fuzz_obs_json(const std::uint8_t* data, std::size_t size);
/// obs/events: typed JSONL event parsers + re-append round-trip.
int fuzz_obs_events(const std::uint8_t* data, std::size_t size);
/// trace/swf: SWF importer through the quarantine path.
int fuzz_swf_loader(const std::uint8_t* data, std::size_t size);
/// trace/store: PRIONN trace loader through the resync/quarantine path.
int fuzz_trace_store(const std::uint8_t* data, std::size_t size);
/// core/script_image + trace/features: script parser and image mapper.
int fuzz_script_image(const std::uint8_t* data, std::size_t size);

using FuzzEntry = int (*)(const std::uint8_t*, std::size_t);

struct Harness {
  const char* name;  // also the corpus subdirectory under fuzz/corpus/
  FuzzEntry entry;
};

/// Every harness above, in a stable order. The regression driver, the
/// corpus generator, and the randomized tests all iterate this table, so
/// adding a harness here is the single registration point.
std::span<const Harness> harnesses();

}  // namespace prionn::fuzz
