// Harness for trace/store: the line-oriented trace loader with its
// resync-on-"job " quarantine path. The header check throws for streams
// that are not traces at all; past it, a tolerant load must survive any
// interior damage, and accepted records must round-trip through the
// writer (save_trace ∘ load_trace is the persistence contract).
#include "harness/fuzz_entry.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include "trace/quarantine.hpp"
#include "trace/store.hpp"

namespace prionn::fuzz {

int fuzz_trace_store(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 20)) return -1;
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  trace::TraceLoadOptions tolerant;
  tolerant.max_quarantine_fraction = 1.0;
  // A corrupt length prefix must be rejected by the cap, not allocated;
  // keep the cap small so the fuzzer's own memory budget stays intact.
  tolerant.max_script_bytes = 1u << 16;

  std::vector<trace::JobRecord> jobs;
  try {
    trace::QuarantineReport report;
    std::istringstream is(bytes);
    jobs = trace::load_trace(is, tolerant, &report);
    if (report.fraction() < 0.0 || report.fraction() > 1.0) __builtin_trap();
  } catch (const std::runtime_error&) {
    return 0;  // not a trace (bad header / bad record count)
  }

  // Accepted records round-trip bit-exactly through the writer.
  std::ostringstream os;
  trace::save_trace(os, jobs);
  std::istringstream back(std::move(os).str());
  const auto again = trace::load_trace(back, tolerant);
  if (again.size() != jobs.size()) __builtin_trap();
  for (std::size_t i = 0; i < jobs.size(); ++i)
    if (again[i].job_id != jobs[i].job_id ||
        again[i].script != jobs[i].script)
      __builtin_trap();
  return 0;
}

}  // namespace prionn::fuzz

#if defined(PRIONN_FUZZ_MAIN)
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return prionn::fuzz::fuzz_trace_store(data, size);
}
#endif
