// Deterministic adversarial-input generators shared by the randomized
// robustness tests (tests/fuzz_test.cpp) and the corpus generator. Kept
// next to the harness entry points so the byte diets of the sweeps and
// of the fuzzers stay in sync.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>

#include "util/rng.hpp"

namespace prionn::fuzz {

/// Uniform random bytes, the baseline diet of every harness.
inline std::string random_bytes(std::size_t n, std::uint64_t seed) {
  prionn::util::Rng rng(seed);
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.uniform_int(0, 255));
  return s;
}

/// Structure-aware mutation: take a well-formed document and damage it the
/// way real corruption does — truncation, bit flips, byte stomps, splices
/// of random garbage — rather than starting from noise.
inline std::string mutate(const std::string& seed_doc, std::uint64_t seed) {
  prionn::util::Rng rng(seed);
  std::string s = seed_doc;
  switch (rng.uniform_int(0, 3)) {
    case 0:  // truncate
      s.resize(s.size() * static_cast<std::size_t>(rng.uniform_int(0, 99)) /
               100);
      break;
    case 1: {  // flip a handful of bits
      if (s.empty()) break;
      const int flips = static_cast<int>(rng.uniform_int(1, 8));
      for (int i = 0; i < flips; ++i) {
        const auto at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 1));
        s[at] = static_cast<char>(s[at] ^
                                  (1u << rng.uniform_int(0, 7)));
      }
      break;
    }
    case 2: {  // stomp a run of bytes with noise
      if (s.empty()) break;
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 1));
      const std::size_t run =
          std::min(s.size() - at,
                   static_cast<std::size_t>(rng.uniform_int(1, 16)));
      for (std::size_t i = 0; i < run; ++i)
        s[at + i] = static_cast<char>(rng.uniform_int(0, 255));
      break;
    }
    default:  // splice random garbage into the middle
      s.insert(s.size() / 2, random_bytes(
                                 static_cast<std::size_t>(
                                     rng.uniform_int(1, 64)),
                                 seed ^ 0x5eedULL));
  }
  return s;
}

/// Script-shaped garbage: fragments of SBATCH directives glued together
/// with random numbers, exercising the parser's token paths.
inline std::string random_scriptish(std::size_t lines, std::uint64_t seed) {
  prionn::util::Rng rng(seed);
  static const char* fragments[] = {
      "#SBATCH --time=",       "#SBATCH --nodes",  "#SBATCH",
      "srun -N ",              "cd /tmp/",         "# submitted from ",
      "--time",                "=",                ":::",
      "#SBATCH --mail-user=@", "\t \t",            "12:34:56:78",
      "#SBATCH --ntasks-per-node=x",
  };
  std::string s;
  for (std::size_t l = 0; l < lines; ++l) {
    const int pieces = static_cast<int>(rng.uniform_int(0, 4));
    for (int p = 0; p < pieces; ++p) {
      s += fragments[rng.uniform_int(0, std::size(fragments) - 1)];
      s += std::to_string(rng.uniform_int(-100, 100000));
    }
    s += '\n';
  }
  return s;
}

}  // namespace prionn::fuzz
