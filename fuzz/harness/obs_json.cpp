// Harness for obs/json: the flat JSON reader behind the telemetry event
// log. json_parse never throws — it returns nullopt on malformed input —
// so ANY exception is a finding. For inputs that do parse, the harness
// checks the serialize∘parse fixpoint law: re-serialising the parsed
// object and parsing that must reproduce the same serialised form
// (deterministic sorted-key order makes the comparison exact).
#include "harness/fuzz_entry.hpp"

#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace prionn::fuzz {

int fuzz_obs_json(const std::uint8_t* data, std::size_t size) {
  if (size > (1u << 20)) return -1;
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const auto object = obs::json_parse(text);
  if (!object) return 0;

  const std::string first = obs::json_serialize(*object);
  const auto reparsed = obs::json_parse(first);
  // Whatever we serialise must parse back, and must serialise identically.
  if (!reparsed) __builtin_trap();
  if (obs::json_serialize(*reparsed) != first) __builtin_trap();
  return 0;
}

}  // namespace prionn::fuzz

#if defined(PRIONN_FUZZ_MAIN)
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return prionn::fuzz::fuzz_obs_json(data, size);
}
#endif
