// Deterministic seed-corpus generator. Emits, for every harness, a small
// set of *valid* documents produced by the real writers (write_checkpoint,
// save_network, EventLog, save_trace, ...) plus deterministic mutations of
// them — so a fuzzer starts from deep inside each format instead of
// rediscovering magic numbers, and the committed corpus doubles as a
// writer/reader round-trip regression set. Every generated file is
// replayed through its harness before being written; the tool refuses to
// emit a seed that crashes.
//
// Usage: make_corpus [corpus_root]   (default: the committed fuzz/corpus)
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "harness/fuzz_entry.hpp"
#include "harness/generators.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/flatten.hpp"
#include "nn/network.hpp"
#include "nn/serialize.hpp"
#include "obs/events.hpp"
#include "trace/job_record.hpp"
#include "trace/store.hpp"
#include "util/rng.hpp"

#ifndef PRIONN_FUZZ_CORPUS_DIR
#define PRIONN_FUZZ_CORPUS_DIR "fuzz/corpus"
#endif

namespace fs = std::filesystem;
using prionn::fuzz::mutate;

namespace {

std::vector<std::string> checkpoint_seeds() {
  std::vector<std::string> seeds;
  const std::string payloads[] = {std::string(),
                                  std::string("not a checkpoint payload"),
                                  std::string(256, '\0')};
  for (const auto& payload : payloads) {
    std::ostringstream os(std::ios::binary);
    prionn::core::write_checkpoint(os, payload);
    seeds.push_back(std::move(os).str());
  }
  // A complete, decodable checkpoint: tiny predictor + replay cursor.
  prionn::core::PredictorOptions opts;
  opts.image.rows = opts.image.cols = 16;
  opts.image.transform = prionn::core::Transform::kBinary;
  opts.model = prionn::core::ModelKind::kFullyConnected;
  opts.preset = prionn::core::ModelPreset::kFast;
  opts.runtime_bins = 8;
  opts.io_bins = 4;
  opts.predict_io = false;
  const prionn::core::PrionnPredictor predictor(opts);
  prionn::core::OnlineCheckpointState state;
  state.next_index = 7;
  state.submissions_since_train = 3;
  std::ostringstream os(std::ios::binary);
  prionn::core::write_checkpoint(
      os, prionn::core::encode_checkpoint(predictor, state));
  seeds.push_back(std::move(os).str());
  return seeds;
}

std::vector<std::string> network_seeds() {
  prionn::util::Rng rng(42);
  prionn::nn::Network net;
  net.emplace<prionn::nn::Flatten>();
  net.emplace<prionn::nn::Dense>(6, 4, rng);
  net.emplace<prionn::nn::Relu>();
  net.emplace<prionn::nn::Dense>(4, 3, rng);
  std::ostringstream os(std::ios::binary);
  prionn::nn::save_network(os, net);
  return {std::move(os).str()};
}

std::vector<std::string> json_seeds() {
  return {
      R"({"type":"retrain","window_id":3})",
      R"({"a":1.5,"b":null,"c":true,"d":"x\"y\\z","e":[1,2,3]})",
      R"({"empty":[],"nested":"{\"not\":\"parsed\"}","neg":-1e-3})",
      "{}",
  };
}

std::vector<std::string> event_seeds() {
  prionn::obs::EventLog log;
  prionn::obs::RetrainEvent r;
  r.window_id = 4;
  r.job_index = 512;
  r.window_size = 100;
  r.holdback_size = 10;
  r.loss = {0.9, 0.7, 0.5};
  r.holdback_accuracy = 0.85;
  r.accepted = true;
  r.checkpoint_generation = 4;
  r.duration_ms = 123.5;
  log.append(r);
  prionn::obs::WindowEvent w;
  w.window_id = 5;
  w.first_job_index = 612;
  w.predictions = 100;
  w.from_neural_net = 90;
  w.from_random_forest = 8;
  w.from_requested = 2;
  w.checkpoint_generation = 4;
  log.append(w);
  prionn::obs::IngestEvent i;
  i.source = "swf:anl-intrepid";
  i.rows_accepted = 68936;
  i.rows_quarantined = 42;
  i.quarantined_fraction = 42.0 / 68978.0;
  log.append(i);
  return log.lines();
}

std::vector<std::string> swf_seeds() {
  return {
      "; Computer: fuzz fixture\n"
      "; MaxNodes: 128\n"
      "1 0 10 3600 64 3600 -1 64 7200 -1 1 1 1 1 1 -1 -1 -1\n"
      "2 30 -1 1800 32 1790 -1 32 3600 -1 0 2 1 2 1 -1 -1 -1\n"
      "3 60 5 60 1 55 -1 1 120 -1 1 3 2 1 2 -1 -1 -1\n",
      "1 0 0 1 1 1 -1 1 1 -1 1 1 1 1 1 -1 -1 -1\n",
  };
}

std::vector<std::string> trace_seeds() {
  std::vector<prionn::trace::JobRecord> jobs(2);
  jobs[0].job_id = 1;
  jobs[0].user = "u001";
  jobs[0].job_name = "sim_a";
  jobs[0].script = "#!/bin/bash\n#SBATCH -t 01:00:00\n./a.out\n";
  jobs[0].requested_minutes = 60;
  jobs[0].runtime_minutes = 42.5;
  jobs[1].job_id = 2;
  jobs[1].user = "u002";
  jobs[1].requested_nodes = 16;
  jobs[1].script = "#!/bin/bash\nsrun ./b.out --steps 100\n";
  jobs[1].runtime_minutes = 10.0;
  std::ostringstream os;
  prionn::trace::save_trace(os, jobs);
  return {std::move(os).str()};
}

std::vector<std::string> script_seeds() {
  return {
      "#!/bin/bash\n"
      "#SBATCH --job-name=wrf_run\n"
      "#SBATCH --nodes=32\n"
      "#SBATCH --ntasks=512\n"
      "#SBATCH --time=02:30:00\n"
      "cd /scratch/u001/wrf\n"
      "srun ./wrf.exe\n",
      "",
      std::string(64 * 64 + 7, 'x'),
  };
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root =
      argc > 1 ? fs::path(argv[1]) : fs::path(PRIONN_FUZZ_CORPUS_DIR);

  const std::map<std::string, std::vector<std::string>> seeds = {
      {"checkpoint_frame", checkpoint_seeds()},
      {"nn_serialize", network_seeds()},
      {"obs_json", json_seeds()},
      {"obs_events", event_seeds()},
      {"swf_loader", swf_seeds()},
      {"trace_store", trace_seeds()},
      {"script_image", script_seeds()},
  };

  std::size_t written = 0;
  for (const auto& h : prionn::fuzz::harnesses()) {
    const auto it = seeds.find(h.name);
    if (it == seeds.end()) {
      std::fprintf(stderr, "no seed generator for harness '%s'\n", h.name);
      return 1;
    }
    const fs::path dir = root / h.name;
    fs::create_directories(dir);

    // Valid documents first, then three deterministic mutations of each:
    // the mutants land in the rejection paths right next to the accept
    // path, which is where the interesting branches live.
    std::vector<std::string> docs = it->second;
    const std::size_t valid = docs.size();
    for (std::size_t i = 0; i < valid; ++i)
      for (std::uint64_t m = 0; m < 3; ++m)
        docs.push_back(mutate(docs[i], 1000 * (i + 1) + m));

    for (std::size_t i = 0; i < docs.size(); ++i) {
      const auto& doc = docs[i];
      // Refuse to commit a seed that crashes its own harness.
      h.entry(reinterpret_cast<const std::uint8_t*>(doc.data()), doc.size());
      char name[32];
      std::snprintf(name, sizeof(name), "seed-%03zu%s", i,
                    i < valid ? "" : "-mut");
      std::ofstream os(dir / name, std::ios::binary);
      os.write(doc.data(), static_cast<std::streamsize>(doc.size()));
      ++written;
    }
  }
  std::fprintf(stderr, "wrote %zu corpus files under %s\n", written,
               root.string().c_str());
  return 0;
}
