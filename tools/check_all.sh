#!/usr/bin/env bash
# Full correctness gate: format check, clang-tidy, and the ctest suite
# under a plain Release build and under each sanitizer.
#
#   tools/check_all.sh                 # run every stage
#   tools/check_all.sh format tidy     # just the static stages
#   tools/check_all.sh address thread  # just those sanitizer suites
#
# Stages: format, tidy, release, obs-off, address, undefined, thread,
# tsa, serve, fuzz-smoke.
# Stages whose tooling is unavailable (no clang-format / clang-tidy /
# clang++ on PATH) are reported as SKIPPED and do not fail the gate;
# sanitizer and test stages always run and must pass.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

jobs="$(nproc 2>/dev/null || echo 2)"
suppressions="$repo_root/tools/sanitizer-suppressions.txt"
# Every suite in tests/serve_test.cpp, for builds where only that target
# (plus its ctest discovery stub) exists.
serve_tests='EncodingCache|ServeOptions|OnlineProtocol|Serving'
serve_tests+='|PredictionService|OnlineResult|BatchedPrediction'
stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=(format tidy release obs-off address undefined thread tsa serve
          fuzz-smoke)
fi

declare -a results=()
note() { printf '\n== %s ==\n' "$*"; }
record() { results+=("$1"); }

run_suite() {  # run_suite <name> <sanitize-value>
  local name="$1" sanitize="$2"
  local build_dir="build-check-$name"
  note "configure+build+ctest: $name (PRIONN_SANITIZE=$sanitize)"
  cmake -B "$build_dir" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DPRIONN_SANITIZE="$sanitize" >/dev/null
  cmake --build "$build_dir" -j "$jobs"
  # The suppressions file is the single ledger for tolerated findings;
  # halt_on_error keeps ASan/TSan failures from being reported-and-ignored.
  env \
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
    UBSAN_OPTIONS="print_stacktrace=1" \
    LSAN_OPTIONS="suppressions=$suppressions" \
    TSAN_OPTIONS="halt_on_error=1:suppressions=$suppressions" \
    ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
  record "PASS  $name"
}

for stage in "${stages[@]}"; do
  case "$stage" in
    format)
      if command -v clang-format >/dev/null 2>&1; then
        note "clang-format --dry-run"
        git ls-files '*.cpp' '*.hpp' |
          xargs clang-format --dry-run --Werror
        record "PASS  format"
      else
        record "SKIP  format (clang-format not on PATH)"
      fi
      ;;
    tidy)
      if command -v clang-tidy >/dev/null 2>&1; then
        note "clang-tidy build (PRIONN_TIDY=ON)"
        cmake -B build-check-tidy -S . \
          -DCMAKE_BUILD_TYPE=Release -DPRIONN_TIDY=ON >/dev/null
        cmake --build build-check-tidy -j "$jobs"
        record "PASS  tidy"
      else
        record "SKIP  tidy (clang-tidy not on PATH)"
      fi
      ;;
    release)   run_suite release off ;;
    obs-off)
      # Telemetry compiled out: the obs classes still build and their
      # tests still pass, but every instrumentation call site is gone.
      note "configure+build+ctest: obs-off (PRIONN_OBS=OFF)"
      cmake -B build-check-obs-off -S . \
        -DCMAKE_BUILD_TYPE=Release \
        -DPRIONN_OBS=OFF >/dev/null
      cmake --build build-check-obs-off -j "$jobs"
      ctest --test-dir build-check-obs-off --output-on-failure -j "$jobs"
      record "PASS  obs-off"
      ;;
    address)   run_suite asan address ;;
    undefined) run_suite ubsan undefined ;;
    thread)    run_suite tsan thread ;;
    tsa)
      # Thread-safety analysis (clang capability attributes): compile-only
      # gate — a -Wthread-safety diagnostic is a locking bug.
      if command -v clang++ >/dev/null 2>&1; then
        note "thread-safety analysis build (PRIONN_TSA=ON, clang)"
        cmake -B build-check-tsa -S . \
          -DCMAKE_BUILD_TYPE=Release \
          -DCMAKE_CXX_COMPILER=clang++ \
          -DPRIONN_TSA=ON >/dev/null
        cmake --build build-check-tsa -j "$jobs"
        record "PASS  tsa"
      else
        record "SKIP  tsa (clang++ not on PATH)"
      fi
      ;;
    serve)
      # Serving subsystem gate, both halves: the PredictionService
      # concurrency tests under TSan (submit/retrain/swap races), then
      # the unsanitized micro_serve binary whose exit status enforces
      # bit-exact replay, throughput >= sequential, and the 2x retrain
      # p99 ceiling. The 'thread' and 'release' stages cover these tests
      # too; this stage is the quick loop for serving-path changes.
      note "serve: PredictionService tests under TSan"
      cmake -B build-check-serve-tsan -S . \
        -DCMAKE_BUILD_TYPE=Release \
        -DPRIONN_SANITIZE=thread >/dev/null
      cmake --build build-check-serve-tsan -j "$jobs" --target serve_test
      env TSAN_OPTIONS="halt_on_error=1:suppressions=$suppressions" \
        ctest --test-dir build-check-serve-tsan --output-on-failure \
          -j "$jobs" -R "$serve_tests"
      note "serve: micro_serve gate (unsanitized)"
      cmake -B build-check-serve -S . \
        -DCMAKE_BUILD_TYPE=Release \
        -DPRIONN_SANITIZE=off >/dev/null
      cmake --build build-check-serve -j "$jobs" --target micro_serve
      ctest --test-dir build-check-serve --output-on-failure -R micro_serve
      record "PASS  serve"
      ;;
    fuzz-smoke)
      # Bounded coverage-guided run of every libFuzzer harness under
      # ASan+UBSan, seeded from the committed corpora. ~60s per harness:
      # a smoke pass that catches shallow regressions, not a campaign.
      if command -v clang++ >/dev/null 2>&1; then
        note "fuzz smoke (PRIONN_FUZZ=ON, clang, ${FUZZ_SMOKE_SECONDS:-60}s/harness)"
        cmake -B build-check-fuzz -S . \
          -DCMAKE_BUILD_TYPE=Release \
          -DCMAKE_CXX_COMPILER=clang++ \
          -DPRIONN_FUZZ=ON >/dev/null
        cmake --build build-check-fuzz -j "$jobs"
        mkdir -p build-check-fuzz/fuzz-artifacts
        for target in build-check-fuzz/fuzz/fuzz_*; do
          name="$(basename "$target")"
          [ "$name" = "fuzz_regression" ] && continue
          corpus="fuzz/corpus/${name#fuzz_}"
          # Scratch working corpus: libFuzzer writes new inputs into its
          # first corpus dir, and the committed seeds must stay pristine.
          scratch="build-check-fuzz/corpus-work/${name#fuzz_}"
          rm -rf "$scratch" && mkdir -p "$scratch"
          cp "$corpus"/* "$scratch"/
          note "fuzz smoke: $name"
          env ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
              UBSAN_OPTIONS="print_stacktrace=1" \
              LSAN_OPTIONS="suppressions=$suppressions" \
            "$target" -max_total_time="${FUZZ_SMOKE_SECONDS:-60}" \
              -dict=fuzz/prionn.dict -print_final_stats=1 \
              -artifact_prefix=build-check-fuzz/fuzz-artifacts/ \
              "$scratch"
        done
        record "PASS  fuzz-smoke"
      else
        record "SKIP  fuzz-smoke (clang++ not on PATH)"
      fi
      ;;
    *)
      echo "unknown stage: $stage" >&2
      echo "stages: format tidy release obs-off address undefined thread" \
           "tsa serve fuzz-smoke" >&2
      exit 2
      ;;
  esac
done

note "summary"
printf '%s\n' "${results[@]}"
