// Fig. 4: time to train a 2D-CNN for 10 epochs on 500 jobs, per transform.
// Paper shape: one-hot costs far more than the other three (its input has
// 128 channels); binary/simple/word2vec are comparable.
#include <cstdio>

#include "bench/common.hpp"
#include "core/predictor.hpp"
#include "trace/workload.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 500;
  // 10 epochs as in the paper, scaled down by default for the single-core
  // CI box; relative costs across transforms are preserved.
  const std::size_t epochs = args.epochs ? args.epochs : 4;

  bench::print_banner(
      "Fig. 4",
      "Seconds to train a 2D-CNN per transform (paper: 10 epochs x 500 jobs)",
      "one-hot slowest by roughly an order of magnitude; others comparable",
      std::to_string(epochs) + " epochs x " + std::to_string(n_jobs) +
          " jobs, fast preset (relative ordering is the claim)");

  trace::WorkloadGenerator gen(trace::WorkloadOptions::cab(
      n_jobs + n_jobs / 8, args.seed));
  auto jobs = trace::completed_jobs(gen.generate());
  jobs.resize(std::min(jobs.size(), n_jobs));

  util::Table table({"transform", "train seconds", "vs word2vec"});
  double w2v_seconds = 0.0;
  const core::Transform transforms[] = {
      core::Transform::kWord2Vec, core::Transform::kBinary,
      core::Transform::kSimple, core::Transform::kOneHot};
  for (const auto t : transforms) {
    core::PredictorOptions opts;
    opts.image.transform = t;
    opts.epochs = epochs;
    opts.predict_io = false;  // Fig. 4 times the runtime model
    core::PrionnPredictor predictor(opts);
    if (t == core::Transform::kWord2Vec) {
      std::vector<std::string> scripts;
      for (const auto& j : jobs) scripts.push_back(j.script);
      predictor.fit_embedding(scripts);
    }
    util::Timer timer;
    predictor.train(jobs);
    const double seconds = timer.seconds();
    if (t == core::Transform::kWord2Vec) w2v_seconds = seconds;
    table.add_row({std::string(core::transform_name(t)),
                   util::fmt(seconds, 2),
                   util::fmt(seconds / w2v_seconds, 2) + "x"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: one-hot >> binary ~ simple ~ word2vec\n");
  return 0;
}
