// Ablation (paper section 2.4, narrative): among the traditional
// baselines, RF slightly outperforms DT (~+2 points) and kNN (~+3
// points), and each trains in well under a second per 500-job batch.
#include <cstdio>

#include "bench/common.hpp"
#include "ml/decision_tree.hpp"
#include "ml/knn.hpp"
#include "ml/random_forest.hpp"
#include "trace/features.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 4000;

  bench::print_banner(
      "Table A (ablation, section 2.4)",
      "Traditional baselines on Table-1 features: kNN vs DT vs RF",
      "RF best: +2 points over DT, +3 over kNN; training < 1 s / 500 jobs",
      std::to_string(n_jobs) + " jobs, chronological half split");

  trace::WorkloadGenerator gen(trace::WorkloadOptions::cab(n_jobs,
                                                           args.seed));
  const auto jobs = trace::completed_jobs(gen.generate());
  const std::size_t half = jobs.size() / 2;

  trace::FeatureEncoder encoder;
  const std::vector<trace::JobRecord> train_jobs(
      jobs.begin(), jobs.begin() + static_cast<long>(half));
  auto train = encoder.encode_jobs(
      train_jobs, [](const trace::JobRecord& j) { return j.runtime_minutes; });

  // Per-500-jobs training cost, as quoted in the paper.
  std::vector<std::size_t> first500(std::min<std::size_t>(500, half));
  for (std::size_t i = 0; i < first500.size(); ++i) first500[i] = i;
  const auto batch = train.subset(first500);

  struct Entry {
    const char* name;
    std::unique_ptr<ml::Regressor> model;
  };
  std::vector<Entry> entries;
  entries.push_back({"kNN (k=5)", std::make_unique<ml::KnnRegressor>()});
  entries.push_back(
      {"Decision Tree", std::make_unique<ml::DecisionTreeRegressor>()});
  entries.push_back(
      {"Random Forest", std::make_unique<ml::RandomForestRegressor>()});

  util::Table table({"model", "mean accuracy", "median accuracy",
                     "fit 500 jobs (s)"});
  for (auto& e : entries) {
    util::Timer timer;
    e.model->fit(batch);  // the paper quotes the 500-job fit cost
    const double fit_seconds = timer.seconds();

    e.model->fit(train);
    std::vector<double> acc;
    for (std::size_t i = half; i < jobs.size(); ++i) {
      const auto row = encoder.encode(trace::parse_script(jobs[i].script));
      const double pred = std::max(
          1.0, e.model->predict(std::span<const double>(row.data(),
                                                        row.size())));
      acc.push_back(
          util::relative_accuracy(jobs[i].runtime_minutes, pred));
    }
    table.add_row({e.name, util::fmt(100.0 * util::mean(acc), 1) + "%",
                   util::fmt(100.0 * util::median(acc), 1) + "%",
                   util::fmt(fit_seconds, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: RF >= DT > kNN, all sub-second fits\n");
  return 0;
}
