// Telemetry overhead gate. Measures the per-op cost of the PRIONN_OBS_*
// instrumentation primitives and the real per-job prediction latency,
// then asserts that the instrumentation budget of the serve path stays
// under 2% of a prediction with telemetry runtime-disabled. Registered as
// a ctest test so a regression in the disabled fast path fails the gate;
// the assertion is only enforced in unsanitized builds (sanitizers
// inflate atomics far more than the surrounding model math).
//
// Also reports the enabled-mode cost (span collection on) so the price of
// turning telemetry on is visible in bench output.
//
//   ./build/bench/micro_obs
#include <cstdio>
#include <cstdlib>

#include "core/predictor.hpp"
#include "obs/obs.hpp"
#include "trace/workload.hpp"
#include "util/timer.hpp"

using namespace prionn;

namespace {

// Keep the measured loops from being optimized away without pulling in
// google-benchmark (this binary needs a plain exit status for ctest).
inline void clobber() { asm volatile("" ::: "memory"); }

template <typename Fn>
double ns_per_op(std::size_t reps, Fn&& fn) {
  util::Timer timer;
  for (std::size_t i = 0; i < reps; ++i) {
    fn();
    clobber();
  }
  return static_cast<double>(timer.elapsed_ns()) /
         static_cast<double>(reps);
}

}  // namespace

int main() {
  constexpr std::size_t kReps = 1'000'000;

  // --- primitive instrumentation costs -------------------------------
  obs::set_enabled(false);
  const double span_off =
      ns_per_op(kReps, [] { PRIONN_OBS_SPAN("micro.span"); });
  const double counter_inc = ns_per_op(kReps, [] {
    PRIONN_OBS_INC("micro_obs_counter_total", "micro-bench counter");
  });
  const double observe = ns_per_op(kReps, [] {
    PRIONN_OBS_OBSERVE_NS("micro_obs_latency_ns", "micro-bench histogram",
                          12345);
  });
  obs::set_enabled(true);
  const double span_on =
      ns_per_op(kReps, [] { PRIONN_OBS_SPAN("micro.span"); });

  std::printf("primitive costs (ns/op, %zu reps):\n", kReps);
  std::printf("  span   disabled  %8.2f\n", span_off);
  std::printf("  span   enabled   %8.2f\n", span_on);
  std::printf("  counter inc      %8.2f\n", counter_inc);
  std::printf("  histogram observe%8.2f\n", observe);

  // --- real hot-path cost: one NN prediction -------------------------
  trace::WorkloadGenerator generator(trace::WorkloadOptions::cab(96));
  const auto jobs = trace::completed_jobs(generator.generate());

  core::PredictorOptions options;
  options.image.rows = 32;
  options.image.cols = 32;
  options.image.transform = core::Transform::kSimple;
  options.epochs = 1;
  options.runtime_bins = 96;
  options.predict_io = false;
  core::PrionnPredictor predictor(options);
  predictor.train(jobs);

  obs::set_enabled(false);
  constexpr std::size_t kPredicts = 500;
  volatile double sink = 0.0;
  const double predict_ns = ns_per_op(kPredicts, [&] {
    sink = predictor.predict(jobs[0].script).runtime_minutes;
  });
  static_cast<void>(sink);
  obs::set_enabled(true);

  // The serve path (FallbackPredictor::predict with a trained NN) runs
  // per prediction: 3 span scopes (serve.predict, predict.map_image,
  // predict.forward), 2 counter bumps (total + provenance) and 1
  // histogram observation — round the budget up to be conservative.
  const double budget = 4.0 * span_off + 4.0 * counter_inc + 2.0 * observe;
  const double fraction = budget / predict_ns;
  std::printf("\nprediction latency (telemetry off): %.0f ns\n", predict_ns);
  std::printf("disabled instrumentation budget:    %.1f ns (%.3f%%)\n",
              budget, 100.0 * fraction);
  const double enabled_budget =
      4.0 * span_on + 4.0 * counter_inc + 2.0 * observe;
  std::printf("enabled instrumentation budget:     %.1f ns (%.3f%%)\n",
              enabled_budget, 100.0 * enabled_budget / predict_ns);

#if PRIONN_MICRO_OBS_ENFORCE
  if (!(fraction < 0.02)) {
    std::fprintf(stderr,
                 "FAIL: disabled telemetry budget %.3f%% exceeds the 2%% "
                 "hot-path ceiling\n",
                 100.0 * fraction);
    return 1;
  }
  std::printf("PASS: disabled budget under the 2%% ceiling\n");
#else
  std::printf("note: budget assertion skipped (sanitized build)\n");
#endif
  return 0;
}
