// Fig. 7: distribution of relative accuracy for runtime predictions per
// deep model with the word2vec mapping. Paper shape: NN and 2D-CNN give
// the highest accuracy, the 1D-CNN is clearly behind.
#include <cstdio>

#include "bench/common.hpp"
#include "core/online.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 600;
  const std::size_t epochs = args.epochs ? args.epochs : 6;

  bench::print_banner(
      "Fig. 7",
      "Runtime relative-accuracy distribution per deep model (word2vec)",
      "NN and 2D-CNN best and comparable; 1D-CNN behind",
      std::to_string(n_jobs) + " jobs through the online protocol, " +
          std::to_string(epochs) + " epochs per retraining");

  trace::WorkloadGenerator gen(
      trace::WorkloadOptions::cab(n_jobs + n_jobs / 8, args.seed));
  auto jobs = trace::completed_jobs(gen.generate());
  jobs.resize(std::min(jobs.size(), n_jobs));

  util::Table table({"model", "accuracy distribution"});
  const core::ModelKind kinds[] = {core::ModelKind::kFullyConnected,
                                   core::ModelKind::kCnn1d,
                                   core::ModelKind::kCnn2d};
  for (const auto kind : kinds) {
    core::OnlineOptions opts;
    opts.predictor.image.transform = core::Transform::kWord2Vec;
    opts.predictor.model = kind;
    opts.predictor.epochs = epochs;
    opts.predictor.predict_io = false;
    core::OnlineTrainer trainer(opts);
    const auto result = trainer.run(jobs);
    std::vector<double> acc;
    for (const std::size_t i : result.predicted_indices())
      acc.push_back(util::relative_accuracy(
          jobs[i].runtime_minutes,
          result.predictions[i]->runtime_minutes));
    table.add_row({std::string(core::model_name(kind)),
                   bench::accuracy_row(acc)});
    std::printf("  done: %-7s (%zu retrainings, %.0fs training)\n",
                std::string(core::model_name(kind)).c_str(),
                result.training_events, result.train_seconds);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: 2D-CNN ~ NN > 1D-CNN\n");
  return 0;
}
