// Fig. 9: (a) distribution of per-job read/write bandwidth and (b/c) the
// relative accuracy of predicted read and write bandwidth for RF and
// PRIONN. Paper numbers: PRIONN mean 80.2% (read) / 75.6% (write) —
// +12.1 / +9.6 points over RF. Bandwidth = predicted total bytes divided
// by predicted runtime.
#include <cstdio>

#include "bench/common.hpp"
#include "trace/stats.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 2200;
  const std::size_t epochs = args.epochs ? args.epochs : 10;

  bench::print_banner(
      "Fig. 9", "Read/write bandwidth prediction accuracy: RF vs PRIONN",
      "PRIONN 80.2% read / 75.6% write; +12.1 / +9.6 points over RF",
      std::to_string(n_jobs) + " jobs, shared phase-1 cache");

  const auto run = bench::shared_run(n_jobs, epochs, args.seed);

  // Fig. 9a: bandwidth distributions (mean >> median).
  const auto summary = trace::summarize(run.jobs);
  std::printf("\nFig. 9a — actual bandwidth distribution (paper: mean "
              "orders of magnitude above median):\n");
  std::printf("  read:  mean %.3e B/s | median %.3e B/s\n",
              summary.read_bandwidth.mean, summary.read_bandwidth.median);
  std::printf("  write: mean %.3e B/s | median %.3e B/s\n",
              summary.write_bandwidth.mean, summary.write_bandwidth.median);

  // RF baselines predict total bytes (like PRIONN's heads); bandwidth is
  // derived with the RF runtime prediction, mirroring section 3.2.
  const auto rf_runtime = bench::online_random_forest(
      run.jobs, [](const trace::JobRecord& j) { return j.runtime_minutes; });
  const auto rf_read = bench::online_random_forest(
      run.jobs, [](const trace::JobRecord& j) { return j.bytes_read; });
  const auto rf_write = bench::online_random_forest(
      run.jobs, [](const trace::JobRecord& j) { return j.bytes_written; });

  std::vector<double> rf_read_acc, rf_write_acc, pr_read_acc, pr_write_acc;
  for (const std::size_t i : run.predicted_indices()) {
    const auto& job = run.jobs[i];
    const auto& p = *run.predictions[i];
    pr_read_acc.push_back(
        util::relative_accuracy(job.read_bandwidth(), p.read_bandwidth()));
    pr_write_acc.push_back(
        util::relative_accuracy(job.write_bandwidth(), p.write_bandwidth()));
    if (rf_runtime[i] && rf_read[i] && rf_write[i]) {
      const double rf_seconds = std::max(60.0, *rf_runtime[i] * 60.0);
      rf_read_acc.push_back(util::relative_accuracy(
          job.read_bandwidth(), std::max(0.0, *rf_read[i]) / rf_seconds));
      rf_write_acc.push_back(util::relative_accuracy(
          job.write_bandwidth(), std::max(0.0, *rf_write[i]) / rf_seconds));
    }
  }

  util::Table table({"predictor", "target", "paper mean",
                     "measured accuracy distribution"});
  table.add_row({"RF", "read bw", "68.1%", bench::accuracy_row(rf_read_acc)});
  table.add_row({"PRIONN", "read bw", "80.2%",
                 bench::accuracy_row(pr_read_acc)});
  table.add_row({"RF", "write bw", "66.0%",
                 bench::accuracy_row(rf_write_acc)});
  table.add_row({"PRIONN", "write bw", "75.6%",
                 bench::accuracy_row(pr_write_acc)});
  std::printf("\nFig. 9b/9c — bandwidth relative accuracy:\n%s",
              table.to_string().c_str());
  std::printf("\nexpected shape: PRIONN above RF on both targets\n");
  return 0;
}
