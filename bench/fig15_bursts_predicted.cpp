// Fig. 15: IO-burst sensitivity/precision across windows when both the
// turnaround AND the per-job IO are predicted (full production pipeline).
// Paper numbers: 55.3% sensitivity / 70.0% precision at the 5-minute
// window — over half of IO bursts predicted in advance.
#include <cstdio>

#include "bench/common.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 2200;
  const std::size_t epochs = args.epochs ? args.epochs : 10;

  bench::print_banner(
      "Fig. 15",
      "IO-burst sensitivity/precision vs window, predicted turnaround",
      "55.3% sensitivity / 70.0% precision at 5 min; >50% of bursts "
      "predicted",
      std::to_string(n_jobs) + " jobs, full predicted pipeline");

  const auto run = bench::shared_run(n_jobs, epochs, args.seed);
  const auto dense = run.dense_predictions();

  core::Phase2Options opts;
  opts.window_minutes = {5, 10, 15, 20, 30, 45, 60};
  const auto turnaround = core::evaluate_turnaround(run.jobs, dense, opts);
  const auto actual = core::actual_io_intervals(run.jobs,
                                                turnaround.schedule);
  const auto predicted = core::predicted_io_intervals_predicted(
      run.jobs, turnaround.predicted_prionn, dense);
  const auto eval = core::evaluate_system_io(actual, predicted, opts);

  util::Table table({"window (min)", "sensitivity", "precision", "TP", "FP",
                     "FN"});
  for (const auto& w : eval.windows) {
    table.add_row({std::to_string(w.window_minutes),
                   util::fmt(100.0 * w.score.sensitivity(), 1) + "%",
                   util::fmt(100.0 * w.score.precision(), 1) + "%",
                   std::to_string(w.score.true_positives),
                   std::to_string(w.score.false_positives),
                   std::to_string(w.score.false_negatives)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\npaper at 5 min: sensitivity 55.3%%, precision 70.0%%; "
              "similar to the perfect-turnaround curves of Fig. 13\n");
  return 0;
}
