// Fig. 12: (a) the distribution of actual aggregate system IO and (b) the
// relative accuracy of predicted system IO when PERFECT turnaround
// knowledge is combined with PRIONN's per-job IO predictions. Paper
// numbers: mean accuracy 63.6%, median 55.3%.
#include <cstdio>

#include "bench/common.hpp"
#include "core/pipeline.hpp"
#include "util/stats.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 2200;
  const std::size_t epochs = args.epochs ? args.epochs : 10;

  bench::print_banner(
      "Fig. 12",
      "System IO prediction accuracy with perfect turnaround knowledge",
      "mean accuracy 63.6%, median 55.3%",
      std::to_string(n_jobs) + " jobs, shared phase-1 cache, 1296 nodes");

  const auto run = bench::shared_run(n_jobs, epochs, args.seed);
  const auto schedule = bench::simulate_schedule(run.jobs);
  const auto dense = run.dense_predictions();

  const auto actual = core::actual_io_intervals(run.jobs, schedule);
  const auto predicted =
      core::predicted_io_intervals_perfect(run.jobs, schedule, dense);
  core::Phase2Options opts;
  const auto eval = core::evaluate_system_io(actual, predicted, opts);

  std::printf("\nFig. 12a — actual aggregate IO (bytes/s per minute "
              "bucket):\n  %s\n",
              util::format_boxplot(
                  util::boxplot_summary(eval.actual_series)).c_str());
  std::printf("  burst threshold (mean + 1 sigma): %.3e B/s "
              "(paper: 1.35e9 on Cab)\n", eval.burst_threshold);

  std::printf("\nFig. 12b — system-IO relative accuracy per active "
              "minute:\n  paper:    mean 63.6%% | median 55.3%%\n"
              "  measured: %s\n",
              bench::accuracy_row(eval.accuracies).c_str());
  return 0;
}
