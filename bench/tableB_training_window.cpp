// Ablation (paper section 2.3, narrative): training-set size sweep. The
// paper evaluated windows from 50 to 5,000 jobs and found "minor
// improvement of prediction accuracy and higher cost to train beyond 500
// jobs". This bench trains the 2D-CNN once per window size and reports
// hold-out accuracy and training time.
#include <cstdio>

#include "bench/common.hpp"
#include "core/predictor.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t epochs = args.epochs ? args.epochs : 12;
  const std::vector<std::size_t> windows = {50, 100, 250, 500, 1000};
  const std::size_t holdout = 200;

  bench::print_banner(
      "Table B (ablation, section 2.3)",
      "Training-window sweep for the 2D-CNN (paper tested 50 - 5,000)",
      "minor accuracy gains but higher cost beyond 500 training jobs",
      "windows {50,100,250,500,1000}, " + std::to_string(epochs) +
          " epochs, 200 hold-out jobs");

  const std::size_t total = windows.back() + holdout;
  trace::WorkloadGenerator gen(
      trace::WorkloadOptions::cab(total + total / 8, args.seed));
  auto jobs = trace::completed_jobs(gen.generate());
  jobs.resize(std::min(jobs.size(), total));
  const std::size_t test_begin = jobs.size() - holdout;

  std::vector<std::string> corpus;
  for (std::size_t i = 0; i < test_begin; ++i)
    corpus.push_back(jobs[i].script);

  util::Table table({"train jobs", "train seconds", "mean accuracy",
                     "median accuracy"});
  for (const std::size_t window : windows) {
    core::PredictorOptions opts;
    opts.image.transform = core::Transform::kWord2Vec;
    opts.epochs = epochs;
    opts.predict_io = false;
    core::PrionnPredictor predictor(opts);
    predictor.fit_embedding(corpus);

    // The most recent `window` completions before the hold-out region.
    std::vector<trace::JobRecord> train(
        jobs.begin() + static_cast<long>(test_begin - window),
        jobs.begin() + static_cast<long>(test_begin));
    util::Timer timer;
    predictor.train(train);
    const double seconds = timer.seconds();

    std::vector<std::string> scripts;
    for (std::size_t i = test_begin; i < jobs.size(); ++i)
      scripts.push_back(jobs[i].script);
    const auto preds = predictor.predict(scripts);
    std::vector<double> acc;
    for (std::size_t k = 0; k < preds.size(); ++k)
      acc.push_back(util::relative_accuracy(
          jobs[test_begin + k].runtime_minutes, preds[k].runtime_minutes));
    table.add_row({std::to_string(window), util::fmt(seconds, 2),
                   util::fmt(100.0 * util::mean(acc), 1) + "%",
                   util::fmt(100.0 * util::median(acc), 1) + "%"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: accuracy rises steeply up to ~500 train "
              "jobs then flattens while cost keeps growing\n");
  return 0;
}
