// Extension (paper sections 1 and 4, after Herbein et al. HPDC'16): close
// the loop and actually SCHEDULE with PRIONN's IO predictions. Three
// policies over the same workload:
//   oblivious      - FCFS + EASY backfill, no IO awareness
//   oracle-aware   - IO admission using the true per-job bandwidths
//   prionn-aware   - IO admission using PRIONN's predicted bandwidths
// Reported: minutes of filesystem over-subscription (the contention the
// paper wants to avoid) against the cost in mean wait time.
#include <cstdio>

#include "bench/common.hpp"
#include "sched/io_aware.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace prionn;

namespace {

std::vector<sched::IoSimJob> to_io_jobs(
    const std::vector<trace::JobRecord>& jobs,
    const std::vector<core::JobPrediction>& predictions,
    bool use_oracle_bandwidth) {
  std::vector<sched::IoSimJob> out;
  out.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    sched::IoSimJob j;
    j.base.id = i;
    j.base.submit_time = jobs[i].submit_time;
    j.base.nodes = std::max<std::uint32_t>(1, jobs[i].requested_nodes);
    j.base.runtime = jobs[i].runtime_minutes * 60.0;
    j.base.believed_runtime = predictions[i].runtime_minutes * 60.0;
    j.actual_bandwidth =
        jobs[i].read_bandwidth() + jobs[i].write_bandwidth();
    j.predicted_bandwidth =
        use_oracle_bandwidth
            ? j.actual_bandwidth
            : predictions[i].read_bandwidth() +
                  predictions[i].write_bandwidth();
    out.push_back(j);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 2200;
  const std::size_t epochs = args.epochs ? args.epochs : 10;

  bench::print_banner(
      "Table D (extension)",
      "IO-aware scheduling driven by PRIONN's predictions",
      "motivation (section 1): IO-aware placement avoids filesystem "
      "contention; accuracy determines how close to the oracle it gets",
      std::to_string(n_jobs) + " jobs, shared phase-1 cache, 1296 nodes");

  const auto run = bench::shared_run(n_jobs, epochs, args.seed);
  const auto dense = run.dense_predictions();

  // Cap at the burst threshold of the oblivious schedule's realised IO:
  // exactly the contention level the paper flags as a burst.
  sched::IoAwareSimulator oblivious_sim({1296, 0.0, true, 4.0 * 3600.0});
  const auto oblivious =
      oblivious_sim.run(to_io_jobs(run.jobs, dense, /*oracle=*/true));
  const std::span<const double> series(oblivious.actual_io_series);
  const double cap = util::mean(series) + util::stddev(series);

  util::Table table({"policy", "over-cap minutes", "mean wait (min)",
                     "mean slowdown"});
  const auto report = [&](const char* name, const sched::IoAwareResult& r) {
    table.add_row(
        {name,
         std::to_string(r.oversubscribed_minutes > 0
                            ? r.oversubscribed_minutes
                            : sched::count_over_cap_minutes(
                                  r.actual_io_series, cap)),
         util::fmt(r.mean_wait_seconds / 60.0, 2),
         util::fmt(r.mean_slowdown, 2)});
  };
  report("oblivious (no IO awareness)", oblivious);

  sched::IoAwareSimulator oracle_sim({1296, cap, true, 4.0 * 3600.0});
  report("IO-aware, oracle bandwidths",
         oracle_sim.run(to_io_jobs(run.jobs, dense, /*oracle=*/true)));

  sched::IoAwareSimulator prionn_sim({1296, cap, true, 4.0 * 3600.0});
  report("IO-aware, PRIONN bandwidths",
         prionn_sim.run(to_io_jobs(run.jobs, dense, /*oracle=*/false)));

  std::printf("IO cap for admission: %.3e B/s (mean + 1 sigma of the "
              "oblivious schedule)\n\n", cap);
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: both IO-aware policies cut over-cap "
              "minutes sharply vs oblivious at a modest wait-time cost; "
              "PRIONN lands near the oracle\n");
  return 0;
}
