// Fig. 6: time to train each deep model (NN, 1D-CNN, 2D-CNN) with the
// word2vec mapping. Paper shape: 1D-CNN < 2D-CNN < NN — the fully
// connected network is the most expensive because its first layer spans
// the whole flattened script.
#include <cstdio>

#include "bench/common.hpp"
#include "core/predictor.hpp"
#include "trace/workload.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 500;
  const std::size_t epochs = args.epochs ? args.epochs : 5;

  bench::print_banner(
      "Fig. 6", "Seconds to train each deep model with word2vec data",
      "1D-CNN fastest, then 2D-CNN, NN slowest",
      std::to_string(epochs) + " epochs x " + std::to_string(n_jobs) +
          " jobs, paper-sized layer widths");

  trace::WorkloadGenerator gen(
      trace::WorkloadOptions::cab(n_jobs + n_jobs / 8, args.seed));
  auto jobs = trace::completed_jobs(gen.generate());
  jobs.resize(std::min(jobs.size(), n_jobs));
  std::vector<std::string> scripts;
  for (const auto& j : jobs) scripts.push_back(j.script);

  util::Table table({"model", "train seconds"});
  const core::ModelKind kinds[] = {core::ModelKind::kFullyConnected,
                                   core::ModelKind::kCnn1d,
                                   core::ModelKind::kCnn2d};
  for (const auto kind : kinds) {
    core::PredictorOptions opts;
    opts.image.transform = core::Transform::kWord2Vec;
    opts.model = kind;
    // The ordering claim is about model architecture cost, so use the
    // paper's layer widths rather than the fast preset.
    opts.preset = core::ModelPreset::kPaper;
    opts.epochs = epochs;
    opts.predict_io = false;
    core::PrionnPredictor predictor(opts);
    predictor.fit_embedding(scripts);
    util::Timer timer;
    predictor.train(jobs);
    table.add_row({std::string(core::model_name(kind)),
                   util::fmt(timer.seconds(), 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: 1D-CNN < 2D-CNN < NN\n");
  return 0;
}
