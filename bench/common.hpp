// Shared helpers for the reproduction benches. Every bench binary prints
// the paper's reported numbers next to our measured values, honours a
// --jobs/--epochs override (or PRIONN_BENCH_JOBS / PRIONN_BENCH_EPOCHS),
// and the phase-1-dependent benches (Figs. 8, 9, 11-15) share one cached
// online run so the expensive training pass happens once per cache
// directory.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/online.hpp"
#include "sched/cluster.hpp"
#include "trace/job_record.hpp"

namespace prionn::bench {

struct BenchArgs {
  std::size_t jobs = 0;    // 0 = bench-specific default
  std::size_t epochs = 0;  // 0 = bench-specific default
  std::uint64_t seed = 2016;
};

/// Parse --jobs=N / --epochs=N / --seed=N plus the matching environment
/// variables (PRIONN_BENCH_JOBS, PRIONN_BENCH_EPOCHS, PRIONN_BENCH_SEED).
BenchArgs parse_args(int argc, char** argv);

/// Uniform bench banner: experiment id, what the paper reports, and the
/// scale this run uses.
void print_banner(const std::string& experiment, const std::string& title,
                  const std::string& paper_claim, const std::string& scale);

/// One cached phase-1 pass: a Cab-like trace plus PRIONN's online
/// predictions (word2vec + 2D-CNN, IO heads on). Cached on disk under
/// `cache_dir` keyed by (jobs, epochs, seed); the first caller pays the
/// training cost, later benches load in milliseconds.
struct SharedRun {
  std::vector<trace::JobRecord> jobs;  // completed jobs, submit-sorted
  /// Parallel to jobs; unset while the model was still untrained.
  std::vector<std::optional<core::JobPrediction>> predictions;

  std::vector<std::size_t> predicted_indices() const;
  /// Predictions with a cold-start fallback (user request, tiny IO) so
  /// phase-2 pipelines can consume a dense vector.
  std::vector<core::JobPrediction> dense_predictions() const;
};

SharedRun shared_run(std::size_t n_jobs, std::size_t epochs,
                     std::uint64_t seed,
                     const std::string& cache_dir = "prionn_bench_cache");

/// Boxplot row formatting shared by the accuracy benches.
std::string accuracy_row(const std::vector<double>& accuracies);

/// Simulate the cluster schedule for a trace without snapshot replays
/// (sufficient for the perfect-turnaround IO evaluations of Figs. 12/13).
std::vector<sched::ScheduledJob> simulate_schedule(
    const std::vector<trace::JobRecord>& jobs, std::uint32_t nodes = 1296);

/// Export the process telemetry state (Prometheus text plus
/// metrics/events/trace JSONL) next to `<stem>.{prom,*.jsonl}` and print
/// where it went. The fig benches call this last, so every reproduction
/// run leaves a machine-readable account of its serving metrics.
void export_telemetry(const std::string& stem);

/// The Random-Forest baseline run under the same online protocol PRIONN
/// uses (predict at submission; refit every 100 submissions on the 500
/// most recent completions, Table-1 features). `target` extracts the
/// training label from a completed job. Returns one prediction per job
/// (unset before the first fit).
std::vector<std::optional<double>> online_random_forest(
    const std::vector<trace::JobRecord>& jobs,
    const std::function<double(const trace::JobRecord&)>& target,
    std::size_t retrain_interval = 100, std::size_t train_window = 500);

}  // namespace prionn::bench
