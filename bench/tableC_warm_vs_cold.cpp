// Ablation (paper section 2.3, narrative): warm-start retraining. The
// paper trains on only 500 jobs per event and argues this works because
// "models are retrained rather than re-initialized ... knowledge is
// retained across several training events". This bench runs the online
// protocol twice — warm-started vs re-initialised before every retraining
// — and compares runtime accuracy over the stream.
#include <cstdio>

#include "bench/common.hpp"
#include "core/online.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace prionn;

namespace {

std::vector<double> run_protocol(const std::vector<trace::JobRecord>& jobs,
                                 std::size_t epochs, bool reinitialize) {
  core::OnlineOptions opts;
  opts.predictor.image.transform = core::Transform::kWord2Vec;
  opts.predictor.epochs = epochs;
  opts.predictor.predict_io = false;
  opts.reinitialize_on_retrain = reinitialize;
  core::OnlineTrainer trainer(opts);
  const auto result = trainer.run(jobs);
  std::vector<double> acc;
  for (const std::size_t i : result.predicted_indices())
    acc.push_back(util::relative_accuracy(
        jobs[i].runtime_minutes, result.predictions[i]->runtime_minutes));
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 900;
  const std::size_t epochs = args.epochs ? args.epochs : 6;

  bench::print_banner(
      "Table C (ablation, section 2.3)",
      "Warm-start vs cold-restart retraining in the online protocol",
      "knowledge retained across training events makes the 500-job "
      "window sufficient (warm >> cold)",
      std::to_string(n_jobs) + " jobs, " + std::to_string(epochs) +
          " epochs per retraining");

  trace::WorkloadGenerator gen(
      trace::WorkloadOptions::cab(n_jobs + n_jobs / 8, args.seed));
  auto jobs = trace::completed_jobs(gen.generate());
  jobs.resize(std::min(jobs.size(), n_jobs));

  const auto warm = run_protocol(jobs, epochs, /*reinitialize=*/false);
  std::printf("  warm-start pass done\n");
  const auto cold = run_protocol(jobs, epochs, /*reinitialize=*/true);
  std::printf("  cold-restart pass done\n");

  util::Table table({"retraining", "runtime accuracy distribution"});
  table.add_row({"warm start (paper)", bench::accuracy_row(warm)});
  table.add_row({"re-initialised", bench::accuracy_row(cold)});
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: warm start clearly above re-initialised "
              "at equal per-event epochs\n");
  return 0;
}
