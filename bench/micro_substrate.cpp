// Substrate microbenchmarks (google-benchmark): GEMM throughput at the
// shapes the PRIONN models actually use, im2col lowering, and one
// mini-batch forward/backward of the paper's 2D-CNN. Not a paper figure —
// these validate that the from-scratch substrate is fast enough to stand
// in for the paper's GPU stack on comparative-timing claims.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/model_zoo.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

using namespace prionn;

namespace {

void BM_GemmConvShape(benchmark::State& state) {
  // Conv1 of the fast 2D-CNN, lowered: (oc x patch_rows) x (pr x N*pixels).
  const std::size_t m = 8, k = 36, n = 32 * 4096;
  std::vector<float> a(m * k, 0.5f), b(k * n, 0.25f), c(m * n);
  for (auto _ : state) {
    tensor::gemm(m, k, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * m * k * n),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

void BM_GemmDenseShape(benchmark::State& state) {
  // The 960-way runtime head: (batch x features) x (features x classes).
  const std::size_t m = 32, k = 128, n = 960;
  std::vector<float> a(m * k, 0.5f), b(k * n, 0.25f), c(m * n);
  for (auto _ : state) {
    tensor::gemm(m, k, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * m * k * n),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}

void BM_Im2col(benchmark::State& state) {
  tensor::Conv2dGeom g;
  g.channels = 4;
  g.height = g.width = 64;
  g.kernel_h = g.kernel_w = 3;
  g.pad_h = g.pad_w = 1;
  std::vector<float> image(g.channels * g.height * g.width, 1.0f);
  std::vector<float> cols(g.patch_rows() * g.patch_cols());
  for (auto _ : state) {
    tensor::im2col(g, image.data(), cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}

void BM_Cnn2dTrainStep(benchmark::State& state) {
  core::ModelConfig cfg;
  cfg.preset = state.range(0) == 0 ? core::ModelPreset::kFast
                                   : core::ModelPreset::kPaper;
  auto net = core::build_model(cfg);
  util::Rng rng(1);
  tensor::Tensor batch({32, 4, 64, 64});
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<std::uint32_t> labels(32);
  for (std::size_t i = 0; i < 32; ++i)
    labels[i] = static_cast<std::uint32_t>(rng.uniform_int(0, 959));
  nn::Adam opt(1e-3);
  for (auto _ : state) {
    const double loss = net.train_batch(batch, labels, opt);
    benchmark::DoNotOptimize(loss);
  }
  state.counters["samples/s"] = benchmark::Counter(
      32.0, benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_GemmConvShape)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemmDenseShape)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Im2col)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Cnn2dTrainStep)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
