// Fig. 14: system IO prediction accuracy when PRIONN's *predicted*
// turnaround (from snapshot replay) replaces perfect knowledge — the
// production scenario. Paper shape: accuracy drops relative to Fig. 12b
// but strong IO patterns are still captured.
#include <cstdio>

#include "bench/common.hpp"
#include "core/pipeline.hpp"
#include "util/stats.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 2200;
  const std::size_t epochs = args.epochs ? args.epochs : 10;

  bench::print_banner(
      "Fig. 14",
      "System IO prediction accuracy with PREDICTED turnaround",
      "lower mean accuracy than Fig. 12b (perfect turnaround), top "
      "whisker still near 1",
      std::to_string(n_jobs) + " jobs, snapshot-replay turnaround");

  const auto run = bench::shared_run(n_jobs, epochs, args.seed);
  const auto dense = run.dense_predictions();

  core::Phase2Options opts;
  const auto turnaround = core::evaluate_turnaround(run.jobs, dense, opts);

  const auto actual = core::actual_io_intervals(run.jobs,
                                                turnaround.schedule);
  const auto predicted = core::predicted_io_intervals_predicted(
      run.jobs, turnaround.predicted_prionn, dense);
  const auto eval = core::evaluate_system_io(actual, predicted, opts);

  std::printf("\nFig. 14a — simulated aggregate IO (bytes/s per minute "
              "bucket):\n  %s\n",
              util::format_boxplot(
                  util::boxplot_summary(eval.actual_series)).c_str());
  std::printf("\nFig. 14b — system-IO relative accuracy per active "
              "minute:\n  paper:    mean ~50%% (below Fig. 12b's 63.6%%)\n"
              "  measured: %s\n",
              bench::accuracy_row(eval.accuracies).c_str());
  return 0;
}
