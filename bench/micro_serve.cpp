// Serving subsystem gate. Two phases:
//
//   A. Correctness + throughput — replays the same trace through the
//      sequential serving path (ResilientOnlineTrainer: fallback chain +
//      snapshot + baseline refit per retrain, i.e. the same work the
//      service does) and through the PredictionService twice:
//      deterministic mode must be prediction-for-prediction AND
//      provenance-for-provenance identical to the sequential replay
//      (batching and the encoding cache may change the wall clock, never
//      the arithmetic); concurrent mode — the service as deployed, with
//      retraining overlapped behind serving — carries the throughput
//      gate, since submissions there never wait for a training event.
//
//   B. Tail latency under retrain — runs the service in concurrent mode
//      and measures closed-loop submit latency while a background retrain
//      is in flight vs while the trainer is idle. Double buffering means
//      training happens on a shadow copy off the serving path; the gate
//      asserts p99-during-retrain stays within 2x of p99-idle (the whole
//      point of the subsystem — a blocking design is ~1000x).
//
// A plain binary (no google-benchmark) so its exit status can act as a
// ctest gate; assertions arm only in unsanitized builds, like micro_obs.
//
//   ./build/bench/micro_serve [--jobs=N] [--epochs=N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "bench/common.hpp"
#include "core/resilient_online.hpp"
#include "core/serve/serving_session.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

using namespace prionn;
namespace serve = prionn::core::serve;

namespace {

// The paper's phase-1 configuration at bench scale: word2vec + 2-D CNN.
// Word2vec matters here — its per-character embedding lookup makes the
// data-mapping stage expensive enough that the encoding cache's repeat
// hits represent real savings, as on a production trace.
core::PredictorOptions bench_predictor(std::size_t epochs) {
  core::PredictorOptions o;
  o.image.rows = o.image.cols = 16;
  o.image.transform = core::Transform::kWord2Vec;
  o.model = core::ModelKind::kCnn2d;
  o.preset = core::ModelPreset::kFast;
  o.runtime_bins = 96;
  o.io_bins = 32;
  o.epochs = epochs;
  o.predict_io = true;
  return o;
}

core::OnlineProtocolOptions bench_protocol() {
  core::OnlineProtocolOptions p;
  p.retrain_interval = 50;
  p.train_window = 150;
  p.embedding_corpus = 150;
  p.min_initial_completions = 40;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 240;
  const std::size_t epochs = args.epochs ? args.epochs : 2;

  bench::print_banner(
      "micro_serve", "Concurrent serving: throughput and tail latency",
      "n/a (engineering gate, not a paper figure)",
      std::to_string(n_jobs) + " jobs, " + std::to_string(epochs) +
          " epochs");

  trace::WorkloadGenerator generator(
      trace::WorkloadOptions::cab(n_jobs + n_jobs / 8, args.seed));
  auto jobs = trace::completed_jobs(generator.generate());
  jobs.resize(std::min(jobs.size(), n_jobs));

  // --- Phase A: throughput, bit-identical replays --------------------
  core::ResilientOptions resilient;
  static_cast<core::OnlineProtocolOptions&>(resilient.online) =
      bench_protocol();
  resilient.online.predictor = bench_predictor(epochs);

  util::Timer sequential_timer;
  const auto sequential = core::ResilientOnlineTrainer(resilient).run(jobs);
  const double sequential_s = sequential_timer.seconds();

  serve::SessionOptions session_options;
  session_options.service.predictor = bench_predictor(epochs);
  session_options.service.protocol = bench_protocol();
  session_options.mode = serve::ReplayMode::kDeterministic;
  serve::ServingSession session(session_options);
  const auto served = session.replay(jobs);
  const double service_s = static_cast<double>(served.replay_ns) / 1e9;

  // Bit-exact equivalence: value AND provenance must match the
  // sequential serving path on every job.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& seq = sequential.predictions[i];
    const auto& svc = served.predictions[i];
    if (!seq || seq->source != svc.source ||
        seq->value.runtime_minutes != svc.value.runtime_minutes ||
        seq->value.bytes_read != svc.value.bytes_read ||
        seq->value.bytes_written != svc.value.bytes_written)
      ++mismatches;
  }

  // The service as deployed: background retrain, submissions never wait
  // for training. Some jobs get fallback answers the sequential replay
  // would have held the queue to answer with the NN — that quality/
  // latency trade is the subsystem's reason to exist.
  serve::SessionOptions concurrent_options;
  concurrent_options.service.predictor = bench_predictor(epochs);
  concurrent_options.service.protocol = bench_protocol();
  concurrent_options.mode = serve::ReplayMode::kConcurrent;
  serve::ServingSession concurrent_session(concurrent_options);
  const auto overlapped = concurrent_session.replay(jobs);
  const double overlapped_s =
      static_cast<double>(overlapped.replay_ns) / 1e9;

  const double sequential_rate =
      static_cast<double>(jobs.size()) / sequential_s;
  const double service_rate = static_cast<double>(jobs.size()) / service_s;
  const double overlapped_rate =
      static_cast<double>(jobs.size()) / overlapped_s;
  std::printf("phase A: replay of %zu jobs\n", jobs.size());
  std::printf("  sequential serving path   %7.2fs  %8.1f jobs/s  "
              "(%zu retrains)\n",
              sequential_s, sequential_rate, sequential.training_events);
  std::printf("  service, deterministic    %7.2fs  %8.1f jobs/s  "
              "(%zu retrains, mean batch %.1f, cache hits %.0f%%, "
              "mismatches %zu)\n",
              service_s, service_rate, served.training_events,
              served.stats.mean_batch_size(),
              100.0 * static_cast<double>(served.stats.cache_hits) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, served.stats.cache_hits +
                             served.stats.cache_misses)),
              mismatches);
  std::printf("  service, concurrent       %7.2fs  %8.1f jobs/s  "
              "(%.2fx sequential, %zu retrains overlapped, %llu/%zu "
              "NN-served)\n",
              overlapped_s, overlapped_rate,
              overlapped_rate / sequential_rate,
              overlapped.training_events,
              static_cast<unsigned long long>(
                  overlapped.stats.source_counts[0]),
              jobs.size());

  // --- Phase B: submit latency while a retrain is in flight ----------
  serve::ServiceOptions concurrent;
  concurrent.predictor = bench_predictor(1);
  concurrent.protocol = bench_protocol();
  // Keep the trainer duty cycle well under 100% (longer interval, smaller
  // window, one epoch) so both latency classes accumulate samples.
  concurrent.protocol.retrain_interval = 150;
  concurrent.protocol.train_window = 60;
  concurrent.protocol.embedding_corpus = 60;
  concurrent.background_retrain = true;
  serve::PredictionService service(concurrent);

  for (const auto& job : jobs) service.complete(job);

  // p99 over a small sample is just the max; insist on enough samples in
  // BOTH classes that the quantile has a real tail behind it.
  std::vector<double> idle_ns, retrain_ns;
  std::size_t completion_cursor = 0;
  constexpr std::size_t kMinSamples = 250;
  constexpr std::size_t kMaxSubmissions = 20000;
  for (std::size_t i = 0;
       i < kMaxSubmissions &&
       (retrain_ns.size() < kMinSamples || idle_ns.size() < kMinSamples);
       ++i) {
    const auto& job = jobs[i % jobs.size()];
    const bool during_retrain = service.retrain_in_flight();
    util::Timer submit_timer;
    const auto prediction = service.submit(job).get();
    const double latency = static_cast<double>(submit_timer.elapsed_ns());
    static_cast<void>(prediction);
    (during_retrain ? retrain_ns : idle_ns).push_back(latency);
    // Keep the completion window moving so retrains keep firing.
    service.complete(jobs[completion_cursor++ % jobs.size()]);
  }
  service.flush();

  const double idle_p99 =
      util::quantile(std::span<const double>(idle_ns), 0.99);
  const double retrain_p99 =
      retrain_ns.empty()
          ? 0.0
          : util::quantile(std::span<const double>(retrain_ns), 0.99);
  const double ratio = idle_p99 > 0.0 ? retrain_p99 / idle_p99 : 0.0;
  std::printf("\nphase B: closed-loop submit latency (%zu idle, %zu "
              "during-retrain samples, %zu swaps)\n",
              idle_ns.size(), retrain_ns.size(),
              static_cast<std::size_t>(service.stats().swaps));
  std::printf("  idle           p99 %10.0f ns\n", idle_p99);
  std::printf("  during retrain p99 %10.0f ns  (%.2fx idle)\n", retrain_p99,
              ratio);

#if PRIONN_MICRO_SERVE_ENFORCE
  bool ok = true;
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: deterministic replay diverged from the sequential "
                 "trainer on %zu jobs\n",
                 mismatches);
    ok = false;
  }
  if (overlapped_rate < sequential_rate) {
    std::fprintf(stderr,
                 "FAIL: concurrent service throughput %.1f jobs/s below "
                 "the sequential replay's %.1f jobs/s\n",
                 overlapped_rate, sequential_rate);
    ok = false;
  }
  if (retrain_ns.size() >= kMinSamples && idle_ns.size() >= kMinSamples &&
      ratio > 2.0) {
    std::fprintf(stderr,
                 "FAIL: p99 during retrain is %.2fx idle p99 (ceiling "
                 "2.0x)\n",
                 ratio);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("PASS: bit-exact replay, throughput >= sequential, retrain "
              "p99 within 2x idle\n");
#else
  std::printf("note: gate assertions skipped (sanitized build)\n");
#endif
  return 0;
}
