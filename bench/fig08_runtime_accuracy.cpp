// Fig. 8: (a) distribution of actual runtimes in the trace and (b) the
// relative accuracy of runtime predictions from the user request, the
// Random Forest baseline, and PRIONN. Paper numbers: PRIONN mean 76.1%
// (+6.0 points over RF) and median 100%; user estimates far behind.
//
// This bench builds the shared phase-1 cache used by Figs. 9 and 11-15.
#include <cstdio>

#include "bench/common.hpp"
#include "trace/stats.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 2200;
  const std::size_t epochs = args.epochs ? args.epochs : 10;

  bench::print_banner(
      "Fig. 8",
      "Runtime prediction accuracy: user request vs RF vs PRIONN",
      "PRIONN mean 76.1% / median 100%; RF ~70%; user far behind (24%)",
      std::to_string(n_jobs) + " jobs (paper: 265,786), online protocol, " +
          std::to_string(epochs) + " epochs per retraining");

  const auto run = bench::shared_run(n_jobs, epochs, args.seed);

  // Fig. 8a: the runtime distribution.
  const auto summary = trace::summarize(run.jobs);
  std::printf("\nFig. 8a — actual runtime distribution (paper: mean 44 min,"
              " ~half under an hour):\n");
  std::printf("  mean %.1f min | median %.1f min | q3 %.1f min\n",
              summary.runtime_minutes.mean, summary.runtime_minutes.median,
              summary.runtime_minutes.q3);
  auto hist = trace::runtime_histogram(run.jobs);
  std::printf("%s\n", hist.render(40).c_str());

  // Fig. 8b: accuracy per predictor, over the jobs PRIONN predicted.
  const auto rf = bench::online_random_forest(
      run.jobs, [](const trace::JobRecord& j) { return j.runtime_minutes; });

  std::vector<double> user_acc, rf_acc, prionn_acc;
  for (const std::size_t i : run.predicted_indices()) {
    const double truth = run.jobs[i].runtime_minutes;
    user_acc.push_back(
        util::relative_accuracy(truth, run.jobs[i].requested_minutes));
    if (rf[i])
      rf_acc.push_back(util::relative_accuracy(truth, std::max(1.0, *rf[i])));
    prionn_acc.push_back(util::relative_accuracy(
        truth, run.predictions[i]->runtime_minutes));
  }

  util::Table table({"predictor", "paper (mean/median)",
                     "measured accuracy distribution"});
  table.add_row({"user request", "24% / --", bench::accuracy_row(user_acc)});
  table.add_row({"RF (Table-1 features)", "~70% / --",
                 bench::accuracy_row(rf_acc)});
  table.add_row({"PRIONN (word2vec+2D-CNN)", "76.1% / 100%",
                 bench::accuracy_row(prionn_acc)});
  std::printf("\nFig. 8b — runtime relative accuracy:\n%s",
              table.to_string().c_str());
  std::printf("\nexpected shape: PRIONN > RF >> user request\n");
  bench::export_telemetry("fig08_telemetry");
  return 0;
}
