// Table 2: replication of the Smith/Foster/Taylor runtime-MAE comparison.
// The paper fits its RF on SDSC95 and SDSC96 traces and reports MAE
// (minutes): SDSC95 59.65 (Smith) -> 35.95 (their RF); SDSC96 74.56 ->
// 76.69. We regenerate SDSC-like synthetic traces and run the same
// protocol: walk the trace chronologically, refit periodically on a
// trailing window, and measure MAE of the RF's runtime predictions.
#include <cstdio>

#include "bench/common.hpp"
#include "ml/random_forest.hpp"
#include "trace/features.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace prionn;

namespace {

double run_rf_mae(const trace::WorkloadOptions& options) {
  trace::WorkloadGenerator gen(options);
  const auto jobs = trace::completed_jobs(gen.generate());
  const auto rf_pred = bench::online_random_forest(
      jobs, [](const trace::JobRecord& j) { return j.runtime_minutes; },
      /*retrain_interval=*/200, /*train_window=*/1000);
  std::vector<double> truth, pred;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!rf_pred[i]) continue;
    truth.push_back(jobs[i].runtime_minutes);
    pred.push_back(std::max(0.0, *rf_pred[i]));
  }
  return util::mean_absolute_error(truth, pred);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  // Scaled proportionally from the published trace sizes (76,840/32,100).
  const std::size_t sdsc95_jobs = args.jobs ? args.jobs : 6000;
  const std::size_t sdsc96_jobs =
      args.jobs ? args.jobs * 32100 / 76840 : 2500;

  bench::print_banner(
      "Table 2", "Runtime MAE: Smith et al. vs our Random Forest",
      "SDSC95: 59.65 -> 35.95 min; SDSC96: 74.56 -> 76.69 min (RF at or "
      "below the published MAE)",
      std::to_string(sdsc95_jobs) + " / " + std::to_string(sdsc96_jobs) +
          " synthetic SDSC-like jobs (paper: 76,840 / 32,100)");

  const double mae95 = run_rf_mae(trace::WorkloadOptions::sdsc95(sdsc95_jobs));
  const double mae96 = run_rf_mae(trace::WorkloadOptions::sdsc96(sdsc96_jobs));

  util::Table table({"dataset", "Smith et al. MAE", "paper's RF MAE",
                     "our RF MAE (synthetic)"});
  table.add_row({"SDSC95-like", "59.65", "35.95", util::fmt(mae95, 2)});
  table.add_row({"SDSC96-like", "74.56", "76.69", util::fmt(mae96, 2)});
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: the RF's MAE lands in the same tens-of-"
              "minutes range as the published values, with the harder\n"
              "(more heterogeneous) SDSC96-like year showing the larger "
              "error\n");
  return 0;
}
