// Fig. 13: sensitivity and precision of IO-burst prediction across
// tolerance windows from 5 to 60 minutes, using perfect turnaround
// knowledge and PRIONN's per-job IO predictions. Paper numbers: 47.5%
// sensitivity and 73.9% precision at the 5-minute window, both rising
// with window size.
#include <cstdio>

#include "bench/common.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 2200;
  const std::size_t epochs = args.epochs ? args.epochs : 10;

  bench::print_banner(
      "Fig. 13",
      "IO-burst sensitivity/precision vs window, perfect turnaround",
      "47.5% sensitivity / 73.9% precision at 5 min; rising with window",
      std::to_string(n_jobs) + " jobs, shared phase-1 cache");

  const auto run = bench::shared_run(n_jobs, epochs, args.seed);
  const auto schedule = bench::simulate_schedule(run.jobs);
  const auto dense = run.dense_predictions();
  const auto actual = core::actual_io_intervals(run.jobs, schedule);
  const auto predicted =
      core::predicted_io_intervals_perfect(run.jobs, schedule, dense);

  core::Phase2Options opts;
  opts.window_minutes = {5, 10, 15, 20, 30, 45, 60};
  const auto eval = core::evaluate_system_io(actual, predicted, opts);

  util::Table table({"window (min)", "sensitivity", "precision", "TP", "FP",
                     "FN"});
  for (const auto& w : eval.windows) {
    table.add_row({std::to_string(w.window_minutes),
                   util::fmt(100.0 * w.score.sensitivity(), 1) + "%",
                   util::fmt(100.0 * w.score.precision(), 1) + "%",
                   std::to_string(w.score.true_positives),
                   std::to_string(w.score.false_positives),
                   std::to_string(w.score.false_negatives)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\npaper at 5 min: sensitivity 47.5%%, precision 73.9%%; "
              "both curves rise with window size\n");
  return 0;
}
