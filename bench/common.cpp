#include "bench/common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <queue>
#include <sstream>

#include "core/serve/serving_session.hpp"
#include "ml/random_forest.hpp"
#include "obs/obs.hpp"
#include "trace/features.hpp"
#include "trace/store.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace prionn::bench {

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  // Single-threaded bench startup; no concurrent setenv anywhere in-tree.
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  return v ? static_cast<std::size_t>(std::atoll(v)) : fallback;
}

}  // namespace

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  args.jobs = env_or("PRIONN_BENCH_JOBS", 0);
  args.epochs = env_or("PRIONN_BENCH_EPOCHS", 0);
  args.seed = env_or("PRIONN_BENCH_SEED", 2016);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--jobs=", 0) == 0)
      args.jobs = static_cast<std::size_t>(std::atoll(arg.c_str() + 7));
    else if (arg.rfind("--epochs=", 0) == 0)
      args.epochs = static_cast<std::size_t>(std::atoll(arg.c_str() + 9));
    else if (arg.rfind("--seed=", 0) == 0)
      args.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
  }
  return args;
}

void print_banner(const std::string& experiment, const std::string& title,
                  const std::string& paper_claim, const std::string& scale) {
  std::printf("=========================================================\n");
  std::printf("PRIONN reproduction | %s\n", experiment.c_str());
  std::printf("%s\n", title.c_str());
  std::printf("paper reports: %s\n", paper_claim.c_str());
  std::printf("this run:      %s\n", scale.c_str());
  std::printf("=========================================================\n");
}

std::vector<std::size_t> SharedRun::predicted_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    if (predictions[i]) out.push_back(i);
  return out;
}

std::vector<core::JobPrediction> SharedRun::dense_predictions() const {
  std::vector<core::JobPrediction> out(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (predictions[i]) {
      out[i] = *predictions[i];
    } else {
      out[i].runtime_minutes = jobs[i].requested_minutes;
      out[i].bytes_read = 1e6;
      out[i].bytes_written = 1e6;
    }
  }
  return out;
}

SharedRun shared_run(std::size_t n_jobs, std::size_t epochs,
                     std::uint64_t seed, const std::string& cache_dir) {
  namespace fs = std::filesystem;
  std::ostringstream key;
  key << "phase1_j" << n_jobs << "_e" << epochs << "_s" << seed;
  const fs::path trace_path = fs::path(cache_dir) / (key.str() + ".trace");
  const fs::path pred_path = fs::path(cache_dir) / (key.str() + ".pred");

  SharedRun run;
  if (fs::exists(trace_path) && fs::exists(pred_path)) {
    run.jobs = trace::load_trace_file(trace_path.string());
    std::ifstream is(pred_path);
    run.predictions.resize(run.jobs.size());
    std::size_t count = 0;
    is >> count;
    for (std::size_t k = 0; k < count; ++k) {
      std::size_t idx = 0;
      core::JobPrediction p;
      is >> idx >> p.runtime_minutes >> p.bytes_read >> p.bytes_written;
      if (is && idx < run.predictions.size()) run.predictions[idx] = p;
    }
    std::printf("[cache] loaded phase-1 run from %s (%zu jobs, %zu "
                "predictions)\n",
                trace_path.string().c_str(), run.jobs.size(), count);
    return run;
  }

  std::printf("[cache] building phase-1 run (%zu jobs, %zu epochs) — this "
              "is the expensive step, later benches reuse it\n",
              n_jobs, epochs);
  util::Timer timer;
  trace::WorkloadGenerator gen(trace::WorkloadOptions::cab(n_jobs, seed));
  run.jobs = trace::completed_jobs(gen.generate());

  core::OnlineOptions opts;
  opts.predictor.image.transform = core::Transform::kWord2Vec;
  opts.predictor.model = core::ModelKind::kCnn2d;
  opts.predictor.preset = core::ModelPreset::kFast;
  opts.predictor.epochs = epochs;
  opts.predictor.predict_io = true;
  // PRIONN_BENCH_SERVE=1 routes the replay through the concurrent
  // serving subsystem (deterministic mode). The predictions — and so the
  // on-disk cache — are bit-identical to the sequential trainer's; only
  // the engine (micro-batched inference, encoding cache, shadow retrain)
  // changes, which is exactly what lets fig08/fig11 validate the service.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded bench startup
  const char* serve_env = std::getenv("PRIONN_BENCH_SERVE");
  std::size_t training_events = 0;
  if (serve_env && serve_env[0] == '1') {
    core::serve::SessionOptions session_opts;
    session_opts.service.predictor = opts.predictor;
    session_opts.service.protocol = opts;
    session_opts.mode = core::serve::ReplayMode::kDeterministic;
    core::serve::ServingSession session(session_opts);
    const auto result = session.replay(run.jobs);
    run.predictions = result.nn_predictions();
    training_events = result.training_events;
    std::printf("[cache] engine: PredictionService (mean batch %.1f, "
                "%llu cache hits)\n",
                result.stats.mean_batch_size(),
                static_cast<unsigned long long>(result.stats.cache_hits));
  } else {
    core::OnlineTrainer trainer(opts);
    const auto result = trainer.run(run.jobs);
    run.predictions = result.predictions;
    training_events = result.training_events;
  }
  std::printf("[cache] phase-1 run complete in %.1fs (%zu training "
              "events)\n",
              timer.seconds(), training_events);

  fs::create_directories(cache_dir);
  trace::save_trace_file(trace_path.string(), run.jobs);
  std::ofstream os(pred_path);
  os.precision(17);
  const auto idx = run.predicted_indices();
  os << idx.size() << "\n";
  for (const std::size_t i : idx) {
    const auto& p = *run.predictions[i];
    os << i << " " << p.runtime_minutes << " " << p.bytes_read << " "
       << p.bytes_written << "\n";
  }
  return run;
}

std::vector<sched::ScheduledJob> simulate_schedule(
    const std::vector<trace::JobRecord>& jobs, std::uint32_t nodes) {
  std::vector<sched::SimJob> sim_jobs;
  sim_jobs.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    sched::SimJob s;
    s.id = i;
    s.submit_time = jobs[i].submit_time;
    s.nodes = std::max<std::uint32_t>(1, jobs[i].requested_nodes);
    s.runtime = jobs[i].runtime_minutes * 60.0;
    s.believed_runtime = jobs[i].requested_minutes * 60.0;
    sim_jobs.push_back(s);
  }
  sched::ClusterSimulator sim({nodes, true});
  return sim.run(sim_jobs);
}

std::vector<std::optional<double>> online_random_forest(
    const std::vector<trace::JobRecord>& jobs,
    const std::function<double(const trace::JobRecord&)>& target,
    std::size_t retrain_interval, std::size_t train_window) {
  std::vector<std::optional<double>> predictions(jobs.size());

  // Completion pool, mirroring OnlineTrainer::run.
  const auto later_end = [&jobs](std::size_t a, std::size_t b) {
    return jobs[a].end_time > jobs[b].end_time;
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(later_end)>
      in_flight(later_end);
  std::vector<std::size_t> completed;

  trace::FeatureEncoder encoder;
  std::optional<ml::RandomForestRegressor> forest;
  std::size_t since_train = 0;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    while (!in_flight.empty() &&
           jobs[in_flight.top()].end_time <= jobs[i].submit_time) {
      completed.push_back(in_flight.top());
      in_flight.pop();
    }
    const bool due = forest ? since_train >= retrain_interval
                            : completed.size() >= retrain_interval;
    if (due && !completed.empty()) {
      const std::size_t window = std::min(train_window, completed.size());
      ml::Dataset data(trace::ScriptFeatures::kCount);
      data.reserve(window);
      for (std::size_t k = completed.size() - window; k < completed.size();
           ++k) {
        const auto& job = jobs[completed[k]];
        const auto row = encoder.encode(trace::parse_script(job.script));
        data.add_row(std::span<const double>(row.data(), row.size()),
                     target(job));
      }
      forest.emplace();
      forest->fit(data);
      since_train = 0;
    }
    if (forest) {
      const auto row = encoder.encode(trace::parse_script(jobs[i].script));
      predictions[i] =
          forest->predict(std::span<const double>(row.data(), row.size()));
    }
    ++since_train;
    in_flight.push(i);
  }
  return predictions;
}

void export_telemetry(const std::string& stem) {
  obs::export_telemetry_files(stem);
  std::printf("\ntelemetry: %s.prom / %s.{metrics,events,trace}.jsonl\n",
              stem.c_str(), stem.c_str());
}

std::string accuracy_row(const std::vector<double>& accuracies) {
  const auto s = util::boxplot_summary(accuracies);
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "mean %5.1f%% | median %5.1f%% | q1 %5.1f%% | q3 %5.1f%% | "
                "n=%zu",
                100.0 * s.mean, 100.0 * s.median, 100.0 * s.q1,
                100.0 * s.q3, s.count);
  os << buf;
  return os.str();
}

}  // namespace prionn::bench
