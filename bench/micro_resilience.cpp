// Resilience microbenchmarks (google-benchmark): the serving-path costs
// the hardened online loop adds — CRC-32 over checkpoint-sized payloads,
// full predictor snapshot encode/decode (the rollback mechanism), and a
// durable checkpoint write with the last-good rotation. These bound how
// much of a retrain interval the crash-safety machinery can eat.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/predictor.hpp"
#include "trace/workload.hpp"
#include "util/crc32.hpp"

using namespace prionn;

namespace {

core::PrionnPredictor trained_predictor() {
  core::PredictorOptions options;
  options.image.rows = 32;
  options.image.cols = 32;
  options.image.transform = core::Transform::kSimple;
  options.runtime_bins = 96;
  options.io_bins = 16;
  options.epochs = 1;
  options.seed = 7;
  core::PrionnPredictor predictor(options);
  trace::WorkloadGenerator generator(trace::WorkloadOptions::cab(96));
  predictor.train(trace::completed_jobs(generator.generate()));
  return predictor;
}

void BM_Crc32(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    const std::uint32_t crc = util::crc32(payload);
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_SnapshotEncode(benchmark::State& state) {
  auto predictor = trained_predictor();
  for (auto _ : state) {
    const std::string payload =
        core::encode_checkpoint(predictor, core::OnlineCheckpointState{});
    benchmark::DoNotOptimize(payload.data());
    state.counters["bytes"] = static_cast<double>(payload.size());
  }
}

void BM_SnapshotDecode(benchmark::State& state) {
  auto predictor = trained_predictor();
  const std::string payload =
      core::encode_checkpoint(predictor, core::OnlineCheckpointState{});
  for (auto _ : state) {
    auto decoded = core::decode_checkpoint(payload);
    benchmark::DoNotOptimize(&decoded.predictor);
  }
}

void BM_CheckpointWriteFile(benchmark::State& state) {
  auto predictor = trained_predictor();
  const std::string path =
      (std::filesystem::temp_directory_path() / "prionn_bench.ckpt")
          .string();
  for (auto _ : state) {
    core::write_checkpoint_file(path, predictor,
                                core::OnlineCheckpointState{});
  }
  std::filesystem::remove(path);
  std::filesystem::remove(core::last_good_path(path));
}

BENCHMARK(BM_Crc32)->Arg(64 << 10)->Arg(4 << 20)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotEncode)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SnapshotDecode)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CheckpointWriteFile)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
