// Fig. 11: (a) the distribution of simulated turnaround times and (b) the
// relative accuracy of turnaround-time predictions when the snapshot
// replay uses user-requested runtimes vs PRIONN's predictions. Paper
// numbers: PRIONN mean 42.1% / median 40.8%, +14.0 / +14.1 points over
// user-requested runtimes; 75th/95th percentiles over 20 points better.
//
// The paper samples five 10,000-job subsets; this run splits the cached
// trace's predicted region into contiguous sample windows.
#include <cstdio>

#include "bench/common.hpp"
#include "core/pipeline.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 2200;
  const std::size_t epochs = args.epochs ? args.epochs : 10;
  constexpr std::size_t kSamples = 3;  // paper: 5 x 10,000 jobs

  bench::print_banner(
      "Fig. 11", "Turnaround-time prediction accuracy: user vs PRIONN",
      "PRIONN mean 42.1% / median 40.8%; +14.0 / +14.1 pts over user",
      std::to_string(kSamples) + " contiguous samples from a " +
          std::to_string(n_jobs) + "-job trace (paper: 5 x 10,000)");

  const auto run = bench::shared_run(n_jobs, epochs, args.seed);
  const auto predicted = run.predicted_indices();
  if (predicted.size() < kSamples * 50) {
    std::printf("not enough predicted jobs (%zu); increase --jobs\n",
                predicted.size());
    return 1;
  }

  // Contiguous job-index windows covering the predicted region.
  const std::size_t first = predicted.front();
  const std::size_t span = run.jobs.size() - first;
  const std::size_t per_sample = span / kSamples;

  std::vector<double> all_turnarounds, acc_user_all, acc_prionn_all;
  for (std::size_t s = 0; s < kSamples; ++s) {
    const std::size_t lo = first + s * per_sample;
    const std::size_t hi = s + 1 == kSamples ? run.jobs.size()
                                             : lo + per_sample;
    std::vector<trace::JobRecord> sample(run.jobs.begin() + static_cast<long>(lo),
                                         run.jobs.begin() + static_cast<long>(hi));
    const auto dense = run.dense_predictions();
    std::vector<core::JobPrediction> sample_preds(
        dense.begin() + static_cast<long>(lo),
        dense.begin() + static_cast<long>(hi));

    core::Phase2Options opts;
    const auto eval = core::evaluate_turnaround(sample, sample_preds, opts);
    for (std::size_t i = 0; i < sample.size(); ++i) {
      if (eval.simulated[i] <= 0.0) continue;
      all_turnarounds.push_back(eval.simulated[i] / 60.0);  // minutes
      acc_user_all.push_back(util::relative_accuracy(
          eval.simulated[i], eval.predicted_user[i]));
      acc_prionn_all.push_back(util::relative_accuracy(
          eval.simulated[i], eval.predicted_prionn[i]));
    }
    std::printf("  sample %zu/%zu simulated (%zu jobs)\n", s + 1, kSamples,
                sample.size());
  }

  std::printf("\nFig. 11a — simulated turnaround distribution (minutes):\n");
  std::printf("  %s\n", util::format_boxplot(
                            util::boxplot_summary(all_turnarounds)).c_str());

  util::Table table({"runtime source", "paper (mean/median)",
                     "measured turnaround accuracy"});
  table.add_row({"user-requested", "28.1% / 26.7%",
                 bench::accuracy_row(acc_user_all)});
  table.add_row({"PRIONN", "42.1% / 40.8%",
                 bench::accuracy_row(acc_prionn_all)});
  std::printf("\nFig. 11b — turnaround relative accuracy:\n%s",
              table.to_string().c_str());
  std::printf("\nexpected shape: PRIONN clearly above user-requested\n");
  bench::export_telemetry("fig11_telemetry");
  return 0;
}
