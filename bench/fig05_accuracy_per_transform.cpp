// Fig. 5: distribution of relative accuracy for runtime predictions, per
// transform type, with the 2D-CNN under the online protocol. Paper shape:
// word2vec gives the best accuracy distribution.
#include <cstdio>

#include "bench/common.hpp"
#include "core/online.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  const std::size_t n_jobs = args.jobs ? args.jobs : 500;
  const std::size_t epochs = args.epochs ? args.epochs : 5;

  bench::print_banner(
      "Fig. 5",
      "Runtime relative-accuracy distribution per transform (2D-CNN)",
      "word2vec best, followed by simple/one-hot; binary worst",
      std::to_string(n_jobs) + " jobs through the online protocol, " +
          std::to_string(epochs) + " epochs per retraining");

  trace::WorkloadGenerator gen(
      trace::WorkloadOptions::cab(n_jobs + n_jobs / 8, args.seed));
  auto jobs = trace::completed_jobs(gen.generate());
  jobs.resize(std::min(jobs.size(), n_jobs));

  util::Table table({"transform", "accuracy distribution"});
  const core::Transform transforms[] = {
      core::Transform::kBinary, core::Transform::kSimple,
      core::Transform::kOneHot, core::Transform::kWord2Vec};
  for (const auto t : transforms) {
    core::OnlineOptions opts;
    opts.predictor.image.transform = t;
    opts.predictor.model = core::ModelKind::kCnn2d;
    opts.predictor.epochs = epochs;
    opts.predictor.predict_io = false;
    opts.train_window = 400;
    core::OnlineTrainer trainer(opts);
    const auto result = trainer.run(jobs);
    std::vector<double> acc;
    for (const std::size_t i : result.predicted_indices())
      acc.push_back(util::relative_accuracy(
          jobs[i].runtime_minutes,
          result.predictions[i]->runtime_minutes));
    table.add_row({std::string(core::transform_name(t)),
                   bench::accuracy_row(acc)});
    std::printf("  done: %-9s (%zu retrainings, %.0fs training)\n",
                std::string(core::transform_name(t)).c_str(),
                result.training_events, result.train_seconds);
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: word2vec has the highest mean/median\n");
  return 0;
}
