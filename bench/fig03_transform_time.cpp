// Fig. 3: time to transform 500 job scripts into the image-like
// representation, for each of the four transforms. Paper shape: one-hot is
// by far the slowest; binary, simple and word2vec all finish 500 scripts
// in under three seconds.
#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "core/script_image.hpp"
#include "embed/word2vec.hpp"
#include "trace/workload.hpp"

using namespace prionn;

namespace {

const std::vector<std::string>& scripts_500() {
  static const std::vector<std::string> scripts = [] {
    trace::WorkloadGenerator gen(trace::WorkloadOptions::cab(520));
    const auto jobs = trace::completed_jobs(gen.generate());
    std::vector<std::string> out;
    for (std::size_t i = 0; i < std::min<std::size_t>(500, jobs.size()); ++i)
      out.push_back(jobs[i].script);
    return out;
  }();
  return scripts;
}

const embed::CharEmbedding& trained_embedding() {
  static const embed::CharEmbedding emb = [] {
    embed::Word2VecOptions opts;
    opts.dimension = 4;
    opts.epochs = 1;
    return embed::Word2VecTrainer(opts).train(scripts_500());
  }();
  return emb;
}

void run_transform(benchmark::State& state, core::Transform transform) {
  core::ScriptImageOptions opts;
  opts.transform = transform;
  const core::ScriptImageMapper mapper(
      opts, transform == core::Transform::kWord2Vec
                ? trained_embedding()
                : embed::CharEmbedding{});
  for (auto _ : state) {
    auto batch = mapper.map_batch_2d(scripts_500());
    benchmark::DoNotOptimize(batch.data());
  }
  state.counters["scripts"] =
      benchmark::Counter(static_cast<double>(scripts_500().size()),
                         benchmark::Counter::kIsIterationInvariantRate);
}

void BM_Binary(benchmark::State& s) { run_transform(s, core::Transform::kBinary); }
void BM_Simple(benchmark::State& s) { run_transform(s, core::Transform::kSimple); }
void BM_OneHot(benchmark::State& s) { run_transform(s, core::Transform::kOneHot); }
void BM_Word2Vec(benchmark::State& s) {
  run_transform(s, core::Transform::kWord2Vec);
}

BENCHMARK(BM_Binary)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Simple)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OneHot)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Word2Vec)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::print_banner(
      "Fig. 3", "Seconds to transform 500 job scripts per transform type",
      "one-hot slowest by a wide margin; binary/simple/word2vec < 3 s",
      "500 synthetic scripts, 64x64 grid; each benchmark maps the batch");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
