// Trace utility: generate, convert and inspect workload traces from the
// command line. Bridges the synthetic generator, the native trace format
// and SWF so the library interoperates with Parallel-Workloads-Archive
// tooling.
//
//   trace_tool generate <jobs> <out.trace> [--preset=cab|sdsc95|sdsc96]
//                                          [--seed=N]
//   trace_tool convert  <in.trace|in.swf> <out.trace|out.swf>
//   trace_tool stats    <in.trace|in.swf>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "trace/stats.hpp"
#include "trace/store.hpp"
#include "trace/swf.hpp"
#include "trace/workload.hpp"

using namespace prionn;

namespace {

bool has_suffix(const std::string& path, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
}

std::vector<trace::JobRecord> load_any(const std::string& path) {
  return has_suffix(path, ".swf") ? trace::load_swf_file(path)
                                  : trace::load_trace_file(path);
}

void save_any(const std::string& path,
              const std::vector<trace::JobRecord>& jobs) {
  if (has_suffix(path, ".swf"))
    trace::save_swf_file(path, jobs);
  else
    trace::save_trace_file(path, jobs);
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool generate <jobs> <out.trace|out.swf> "
               "[--preset=cab|sdsc95|sdsc96] [--seed=N]\n"
               "  trace_tool convert <in.trace|in.swf> <out.trace|out.swf>\n"
               "  trace_tool stats <in.trace|in.swf>\n");
  return 2;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto jobs = static_cast<std::size_t>(std::atoll(argv[2]));
  const std::string out = argv[3];
  std::string preset = "cab";
  std::uint64_t seed = 2016;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--preset=", 0) == 0) preset = arg.substr(9);
    if (arg.rfind("--seed=", 0) == 0)
      seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
  }
  trace::WorkloadOptions options;
  if (preset == "cab")
    options = trace::WorkloadOptions::cab(jobs, seed);
  else if (preset == "sdsc95")
    options = trace::WorkloadOptions::sdsc95(jobs, seed);
  else if (preset == "sdsc96")
    options = trace::WorkloadOptions::sdsc96(jobs, seed);
  else
    return usage();
  trace::WorkloadGenerator generator(options);
  save_any(out, generator.generate());
  std::printf("wrote %zu jobs (%s preset, seed %llu) to %s\n", jobs,
              preset.c_str(), static_cast<unsigned long long>(seed),
              out.c_str());
  return 0;
}

int cmd_convert(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto jobs = load_any(argv[2]);
  save_any(argv[3], jobs);
  std::printf("converted %zu jobs: %s -> %s\n", jobs.size(), argv[2],
              argv[3]);
  if (has_suffix(argv[3], ".swf"))
    std::printf("note: SWF cannot carry job scripts or IO volumes\n");
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto jobs = load_any(argv[2]);
  const auto s = trace::summarize(jobs);
  std::printf("jobs:            %zu (%zu canceled)\n", s.total_jobs,
              s.canceled_jobs);
  std::printf("unique scripts:  %zu\n", s.unique_scripts);
  std::printf("runtime:         mean %.1f min, median %.1f min, q3 %.1f "
              "min\n",
              s.runtime_minutes.mean, s.runtime_minutes.median,
              s.runtime_minutes.q3);
  std::printf("user requests:   mean error %+.0f min, relative accuracy "
              "%.1f%%\n",
              s.user_request_mean_error_minutes,
              100.0 * s.user_request_mean_relative_accuracy);
  std::printf("read bandwidth:  mean %.3e B/s, median %.3e B/s\n",
              s.read_bandwidth.mean, s.read_bandwidth.median);
  std::printf("write bandwidth: mean %.3e B/s, median %.3e B/s\n",
              s.write_bandwidth.mean, s.write_bandwidth.median);
  std::printf("\nruntime histogram (one-hour buckets):\n%s",
              trace::runtime_histogram(jobs).render(40).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "generate") return cmd_generate(argc, argv);
  if (command == "convert") return cmd_convert(argc, argv);
  if (command == "stats") return cmd_stats(argc, argv);
  return usage();
}
