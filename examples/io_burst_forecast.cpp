// IO-burst forecasting (phase 2 of the paper): run PRIONN's predictions
// through the cluster simulator, build the predicted system-IO timeline,
// flag bursts, and score them against the actual timeline — everything an
// IO-aware scheduler needs to avoid co-scheduling IO-heavy jobs.
//
//   ./build/examples/io_burst_forecast [jobs] [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "util/stats.hpp"

#include "trace/workload.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const std::size_t n_jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1000;
  const std::size_t epochs =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 6;

  // --- Phase 1: per-job runtime + IO predictions. ---------------------
  std::printf("phase 1: training PRIONN online over %zu jobs...\n", n_jobs);
  trace::WorkloadGenerator generator(trace::WorkloadOptions::cab(n_jobs));
  const auto jobs = trace::completed_jobs(generator.generate());

  core::OnlineOptions options;
  options.predictor.image.transform = core::Transform::kWord2Vec;
  options.predictor.epochs = epochs;
  options.predictor.predict_io = true;
  core::OnlineTrainer trainer(options);
  const auto online = trainer.run(jobs);

  std::vector<core::JobPrediction> predictions(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (online.predictions[i]) {
      predictions[i] = *online.predictions[i];
    } else {
      predictions[i].runtime_minutes = jobs[i].requested_minutes;
      predictions[i].bytes_read = predictions[i].bytes_written = 1e6;
    }
  }
  std::printf("  %zu training events, %.0fs\n", online.training_events,
              online.train_seconds);

  // --- Phase 2: snapshot turnaround + system IO forecast. -------------
  std::printf("phase 2: simulating the cluster and forecasting IO...\n");
  core::Phase2Options p2;
  p2.cluster.total_nodes = 1296;
  const auto turnaround = core::evaluate_turnaround(jobs, predictions, p2);

  const auto actual = core::actual_io_intervals(jobs, turnaround.schedule);
  const auto predicted = core::predicted_io_intervals_predicted(
      jobs, turnaround.predicted_prionn, predictions);
  const auto io = core::evaluate_system_io(actual, predicted, p2);

  std::printf("\nsystem IO timeline: %zu active minutes, burst threshold "
              "%.3e B/s (mean + 1 sigma)\n",
              io.accuracies.size(), io.burst_threshold);
  std::printf("system-IO prediction accuracy: mean %.1f%%, median %.1f%%\n",
              100.0 * util::mean(io.accuracies),
              100.0 * util::median(io.accuracies));

  std::printf("\nIO-burst forecast quality by tolerance window:\n");
  std::printf("%-14s %-13s %-11s\n", "window (min)", "sensitivity",
              "precision");
  for (const auto& w : io.windows)
    std::printf("%8zu %13.1f%% %10.1f%%\n", w.window_minutes,
                100.0 * w.score.sensitivity(), 100.0 * w.score.precision());

  std::printf("\nan IO-aware scheduler can now delay IO-heavy queued jobs "
              "whenever the forecast flags a burst window\n");
  return 0;
}
