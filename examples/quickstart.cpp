// Quickstart: generate a small synthetic Cab-like trace, run PRIONN's
// online training protocol over it, and report runtime/IO prediction
// accuracy for the last job plus aggregate statistics.
//
// Build & run:
//   cmake --build build && ./build/examples/quickstart [jobs]
#include <cstdio>
#include <cstdlib>
#include <span>

#include "core/online.hpp"
#include "trace/stats.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const std::size_t n_jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 3000;

  // 1. Synthesize a workload (stand-in for the proprietary Cab trace).
  trace::WorkloadGenerator generator(trace::WorkloadOptions::cab(n_jobs));
  const auto all_jobs = generator.generate();
  const auto jobs = trace::completed_jobs(all_jobs);
  const auto summary = trace::summarize(all_jobs);
  std::printf("trace: %zu jobs (%zu canceled), %zu unique scripts\n",
              summary.total_jobs, summary.canceled_jobs,
              summary.unique_scripts);
  std::printf("runtime: mean %.1f min, median %.1f min\n",
              summary.runtime_minutes.mean, summary.runtime_minutes.median);
  std::printf("user request: mean error %.0f min, relative accuracy %.1f%%\n",
              summary.user_request_mean_error_minutes,
              100.0 * summary.user_request_mean_relative_accuracy);

  // 2. Run the online protocol: predict at submission, retrain every 100
  //    submissions on the 500 most recent completions (warm start).
  core::OnlineOptions options;
  options.predictor.image.transform = core::Transform::kWord2Vec;
  options.predictor.model = core::ModelKind::kCnn2d;
  options.predictor.preset = core::ModelPreset::kFast;
  options.predictor.epochs = 6;
  core::OnlineTrainer trainer(options);
  const auto result = trainer.run(jobs);
  std::printf("\nonline protocol: %zu training events, %.1fs training, "
              "%.1fs predicting\n",
              result.training_events, result.train_seconds,
              result.predict_seconds);

  // 3. Score runtime and IO predictions with the paper's relative accuracy.
  std::vector<double> runtime_acc, read_acc, write_acc;
  for (const std::size_t i : result.predicted_indices()) {
    const auto& p = *result.predictions[i];
    runtime_acc.push_back(
        util::relative_accuracy(jobs[i].runtime_minutes, p.runtime_minutes));
    read_acc.push_back(util::relative_accuracy(jobs[i].read_bandwidth(),
                                               p.read_bandwidth()));
    write_acc.push_back(util::relative_accuracy(jobs[i].write_bandwidth(),
                                                p.write_bandwidth()));
  }
  std::printf("predicted jobs: %zu\n", runtime_acc.size());
  std::printf("runtime accuracy:   mean %.1f%%, median %.1f%%\n",
              100.0 * util::mean(runtime_acc),
              100.0 * util::median(runtime_acc));
  std::printf("read bw accuracy:   mean %.1f%%, median %.1f%%\n",
              100.0 * util::mean(read_acc), 100.0 * util::median(read_acc));
  std::printf("write bw accuracy:  mean %.1f%%, median %.1f%%\n",
              100.0 * util::mean(write_acc), 100.0 * util::median(write_acc));

  // 4. Predict a few more jobs with the trained model. predict_batch is
  //    THE inference path — one forward pass per head for the whole
  //    span, with per-head confidence alongside each value.
  std::vector<std::string> scripts;
  for (std::size_t i = jobs.size() - 3; i < jobs.size(); ++i)
    scripts.push_back(jobs[i].script);
  const auto batch = trainer.predictor().predict_batch(
      std::span<const std::string>(scripts));
  std::printf("\n");
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const auto& job = jobs[jobs.size() - 3 + k];
    std::printf("job %s: actual %.0f min, predicted %.0f min "
                "(confidence %.2f)\n",
                job.job_name.c_str(), job.runtime_minutes,
                batch[k].value.runtime_minutes, batch[k].runtime_confidence);
  }
  return 0;
}
