// Resilient serving demo: stream a synthetic job queue through the
// hardened online protocol while the fault harness injects every failure
// class at once — NaN-poisoned retrains, torn checkpoint writes, and
// garbage trace rows. The run must not abort: divergent retrains roll
// back, damaged checkpoints fall back to the last-good generation, and
// every job still receives a prediction with provenance.
//
//   ./build/examples/resilient_serving [jobs] [fault-seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/resilient_online.hpp"
#include "trace/workload.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const std::size_t n_jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 800;
  const std::uint64_t fault_seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  std::printf("generating %zu-job Cab-like workload...\n", n_jobs);
  trace::WorkloadGenerator generator(trace::WorkloadOptions::cab(n_jobs));
  const auto jobs = trace::completed_jobs(generator.generate());

  const std::string checkpoint =
      (std::filesystem::temp_directory_path() / "prionn_demo.ckpt").string();
  std::filesystem::remove(checkpoint);
  std::filesystem::remove(checkpoint + ".last-good");

  core::ResilientOptions options;
  options.online.predictor.image.rows = 32;
  options.online.predictor.image.cols = 32;
  options.online.predictor.image.transform = core::Transform::kSimple;
  options.online.predictor.epochs = 3;
  options.online.predictor.runtime_bins = 96;
  options.online.predictor.predict_io = false;
  options.checkpoint_path = checkpoint;

  // Deterministic fault schedule: the 2nd retrain is NaN-poisoned, the
  // 1st and 3rd checkpoint writes are torn/corrupted.
  util::fault::FaultPlan plan;
  plan.seed = fault_seed;
  plan.point(util::fault::FaultPoint::kNanPoisonBatch).fire_at = {2};
  plan.point(util::fault::FaultPoint::kCheckpointTruncate).fire_at = {1};
  plan.point(util::fault::FaultPoint::kSnapshotCorrupt).fire_at = {3};
  util::fault::ScopedFaultPlan armed(plan);

  std::printf("serving %zu submissions with faults armed (seed %llu)...\n",
              jobs.size(),
              static_cast<unsigned long long>(fault_seed));
  core::ResilientOnlineTrainer trainer(options);
  const auto result = trainer.run(jobs);

  const auto counts = result.source_counts();
  std::printf("\n%zu accepted training events, %zu rejected retrains "
              "(%zu rollbacks)\n",
              result.training_events, result.rejected_retrains,
              result.rollbacks);
  std::printf("provenance: %zu neural-net, %zu random-forest, %zu "
              "requested-runtime\n",
              counts[0], counts[1], counts[2]);

  std::vector<double> nn_acc;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& p = result.predictions[i];
    if (p && p->source == core::PredictionSource::kNeuralNet)
      nn_acc.push_back(util::relative_accuracy(jobs[i].runtime_minutes,
                                               p->value.runtime_minutes));
  }
  if (!nn_acc.empty())
    std::printf("NN runtime accuracy where the NN served: %.1f%%\n",
                100.0 * util::mean(nn_acc));

  // Prove the recovery path: the primary checkpoint was damaged by the
  // fault plan, so a restart resumes from wherever is still loadable.
  const auto resumed = core::resume_checkpoint(checkpoint);
  std::printf("restart would resume from the %s checkpoint%s%s\n",
              core::checkpoint_source_name(resumed.source),
              resumed.primary_error.empty() ? "" : " (primary: ",
              resumed.primary_error.empty()
                  ? ""
                  : (resumed.primary_error + ")").c_str());

  std::filesystem::remove(checkpoint);
  std::filesystem::remove(checkpoint + ".last-good");
  return 0;
}
