// Resilient serving demo: stream a synthetic job queue through the
// hardened online protocol while the fault harness injects every failure
// class at once — NaN-poisoned retrains, torn checkpoint writes, garbage
// trace rows. The run must not abort: divergent retrains roll back,
// damaged checkpoints fall back to the last-good generation, and every
// job still receives a prediction with provenance.
//
// The run is fully instrumented: it ends with a telemetry summary table
// read back from the metrics registry and exports the whole telemetry
// state (Prometheus text, metrics/events/trace JSONL) next to
// `prionn_serving_telemetry.*`.
//
//   ./build/examples/resilient_serving [jobs] [fault-seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/resilient_online.hpp"
#include "obs/obs.hpp"
#include "trace/store.hpp"
#include "trace/workload.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace prionn;

namespace {

/// Scribble over every `stride`-th record's submit field so the
/// quarantine path of the loader has real work on this run.
void corrupt_trace_file(const std::string& path, std::size_t stride) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  std::string text = std::move(buffer).str();
  std::size_t pos = 0, seen = 0;
  while ((pos = text.find("\nsubmit ", pos)) != std::string::npos) {
    pos += 8;  // past "\nsubmit "
    // insert(pos, count, char) rather than insert(pos, "x"): the char*
    // overload trips GCC 12's -Wrestrict false positive (PR 105651).
    if (++seen % stride == 0) text.insert(pos, 1, 'x');
  }
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << text;
}

std::string count_of(const char* name) {
  return std::to_string(obs::registry().counter(name).value());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 800;
  const std::uint64_t fault_seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  std::printf("generating %zu-job Cab-like workload...\n", n_jobs);
  trace::WorkloadGenerator generator(trace::WorkloadOptions::cab(n_jobs));
  const auto generated = trace::completed_jobs(generator.generate());

  // Round-trip the workload through the trace store with a handful of
  // rows scribbled over, so ingestion exercises the quarantine path (and
  // emits its ingest telemetry) before serving starts.
  const auto tmp_dir = std::filesystem::temp_directory_path();
  const std::string trace_path = (tmp_dir / "prionn_demo.trace").string();
  trace::save_trace_file(trace_path, generated);
  corrupt_trace_file(trace_path, 50);
  trace::TraceLoadOptions load_options;
  load_options.max_quarantine_fraction = 0.05;
  trace::QuarantineReport quarantine;
  const auto jobs =
      trace::load_trace_file(trace_path, load_options, &quarantine);
  std::printf("ingest: %s\n", quarantine.summary().c_str());
  std::filesystem::remove(trace_path);

  const std::string checkpoint = (tmp_dir / "prionn_demo.ckpt").string();
  std::filesystem::remove(checkpoint);
  std::filesystem::remove(checkpoint + ".last-good");

  core::ResilientOptions options;
  options.online.predictor.image.rows = 32;
  options.online.predictor.image.cols = 32;
  options.online.predictor.image.transform = core::Transform::kSimple;
  options.online.predictor.epochs = 3;
  options.online.predictor.runtime_bins = 96;
  options.online.predictor.predict_io = false;
  options.checkpoint_path = checkpoint;

  // Deterministic fault schedule: the 2nd retrain is NaN-poisoned, the
  // 1st and 3rd checkpoint writes are torn/corrupted.
  util::fault::FaultPlan plan;
  plan.seed = fault_seed;
  plan.point(util::fault::FaultPoint::kNanPoisonBatch).fire_at = {2};
  plan.point(util::fault::FaultPoint::kCheckpointTruncate).fire_at = {1};
  plan.point(util::fault::FaultPoint::kSnapshotCorrupt).fire_at = {3};
  util::fault::ScopedFaultPlan armed(plan);

  std::printf("serving %zu submissions with faults armed (seed %llu)...\n",
              jobs.size(),
              static_cast<unsigned long long>(fault_seed));
  core::ResilientOnlineTrainer trainer(options);
  const auto result = trainer.run(jobs);

  const auto counts = result.source_counts();
  std::printf("\n%zu accepted training events, %zu rejected retrains "
              "(%zu rollbacks)\n",
              result.training_events, result.rejected_retrains,
              result.rollbacks);
  std::printf("provenance: %zu neural-net, %zu random-forest, %zu "
              "requested-runtime\n",
              counts[0], counts[1], counts[2]);

  std::vector<double> nn_acc;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& p = result.predictions[i];
    if (p && p->source == core::PredictionSource::kNeuralNet)
      nn_acc.push_back(util::relative_accuracy(jobs[i].runtime_minutes,
                                               p->value.runtime_minutes));
  }
  if (!nn_acc.empty())
    std::printf("NN runtime accuracy where the NN served: %.1f%%\n",
                100.0 * util::mean(nn_acc));

  // Prove the recovery path: the primary checkpoint was damaged by the
  // fault plan, so a restart resumes from wherever is still loadable.
  const auto resumed = core::resume_checkpoint(checkpoint);
  std::printf("restart would resume from the %s checkpoint%s%s\n",
              core::checkpoint_source_name(resumed.source),
              resumed.primary_error.empty() ? "" : " (primary: ",
              resumed.primary_error.empty()
                  ? ""
                  : (resumed.primary_error + ")").c_str());

  // --- end-of-run telemetry, read back from the registry -------------
  if (!obs::kEnabled)
    std::printf("\n(telemetry compiled out: PRIONN_OBS=OFF — the summary "
                "below reads as zeros)\n");
  auto& predict_latency =
      obs::registry().latency("prionn_predict_latency_ns");
  util::Table table({"telemetry", "value"});
  table.add_row({"predictions served",
                 count_of("prionn_predictions_total")});
  table.add_row({"  from neural net",
                 count_of("prionn_predictions_nn_total")});
  table.add_row({"  from random forest",
                 count_of("prionn_predictions_rf_total")});
  table.add_row({"  from user request",
                 count_of("prionn_predictions_requested_total")});
  table.add_row({"retrains accepted", count_of("prionn_retrains_total")});
  table.add_row({"retrains rejected",
                 count_of("prionn_retrains_rejected_total")});
  table.add_row({"rollbacks", count_of("prionn_rollbacks_total")});
  table.add_row({"checkpoint writes",
                 count_of("prionn_checkpoint_writes_total")});
  table.add_row({"trace rows accepted",
                 count_of("prionn_trace_rows_total")});
  table.add_row({"trace rows quarantined",
                 count_of("prionn_quarantined_rows_total")});
  table.add_row({"predict latency p50 (us)",
                 util::fmt(predict_latency.quantile(0.5) / 1e3, 1)});
  table.add_row({"predict latency p99 (us)",
                 util::fmt(predict_latency.quantile(0.99) / 1e3, 1)});
  std::printf("\n%s", table.to_string().c_str());

  obs::export_telemetry_files("prionn_serving_telemetry");
  std::printf("\ntelemetry exported: prionn_serving_telemetry.prom, "
              ".metrics.jsonl, .events.jsonl, .trace.jsonl "
              "(%zu events, %llu spans)\n",
              obs::event_log().size(),
              static_cast<unsigned long long>(
                  obs::trace_buffer().total_recorded()));

  std::filesystem::remove(checkpoint);
  std::filesystem::remove(checkpoint + ".last-good");
  return 0;
}
