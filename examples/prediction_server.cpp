// Concurrent serving demo: several client threads submit jobs to the
// micro-batched PredictionService while completions stream in and the
// background trainer retrains shadow copies and swaps them live. No
// client ever blocks on a training event — the run prints how the
// submissions were coalesced into batches, how often the encoding cache
// skipped the data-mapping stage, and the submit-latency tail read back
// from the telemetry registry.
//
//   ./build/examples/prediction_server [jobs] [clients]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/serve/prediction_service.hpp"
#include "obs/obs.hpp"
#include "trace/workload.hpp"
#include "util/table.hpp"
#include "util/stats.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const std::size_t n_jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 600;
  const std::size_t n_clients =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 4;

  std::printf("generating %zu-job Cab-like workload...\n", n_jobs);
  trace::WorkloadGenerator generator(trace::WorkloadOptions::cab(n_jobs));
  const auto jobs = trace::completed_jobs(generator.generate());

  core::serve::ServiceOptions options;
  options.predictor.image.rows = 16;
  options.predictor.image.cols = 16;
  options.predictor.image.transform = core::Transform::kWord2Vec;
  options.predictor.model = core::ModelKind::kCnn2d;
  options.predictor.preset = core::ModelPreset::kFast;
  options.predictor.epochs = 2;
  options.predictor.predict_io = true;
  options.protocol.retrain_interval = 100;
  options.protocol.train_window = 200;
  options.protocol.embedding_corpus = 200;
  options.protocol.min_initial_completions = 50;
  core::serve::PredictionService service(options);

  // Completion stream: everything the clients will submit has already
  // finished once, so the trainer has a full window from the start. The
  // §2.3 cadence is submission-driven, so one warm-up submission arms
  // the first background retrain; wait for it to publish before opening
  // the doors — otherwise the whole burst races through on the fallback
  // chain before the NN exists.
  for (const auto& job : jobs) service.complete(job);
  service.predict_now(jobs.front());
  while (!service.trained())
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

  std::printf("serving %zu submissions from %zu client threads...\n",
              jobs.size(), n_clients);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> nn_served{0};
  std::vector<std::thread> clients;
  clients.reserve(n_clients);
  for (std::size_t c = 0; c < n_clients; ++c) {
    clients.emplace_back([&]() {
      for (std::size_t i = next.fetch_add(1); i < jobs.size();
           i = next.fetch_add(1)) {
        const auto prediction = service.submit(jobs[i]).get();
        if (prediction.source == core::PredictionSource::kNeuralNet)
          nn_served.fetch_add(1);
        // Re-complete so the cadence keeps arming retrains mid-stream.
        service.complete(jobs[i]);
      }
    });
  }
  for (auto& client : clients) client.join();
  service.flush();

  const auto stats = service.stats();
  std::printf("\n%zu training events accepted (%llu swaps, %llu "
              "rejected), NN served %zu/%zu submissions\n",
              service.training_events(),
              static_cast<unsigned long long>(stats.swaps),
              static_cast<unsigned long long>(stats.rejected_retrains),
              nn_served.load(), jobs.size());
  std::printf("micro-batching: %llu batches, mean size %.1f, peak queue "
              "depth %llu\n",
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch_size(),
              static_cast<unsigned long long>(stats.max_queue_depth));
  const auto lookups = stats.cache_hits + stats.cache_misses;
  std::printf("encoding cache: %.0f%% of %llu lookups skipped the "
              "data-mapping stage\n",
              lookups ? 100.0 * static_cast<double>(stats.cache_hits) /
                            static_cast<double>(lookups)
                      : 0.0,
              static_cast<unsigned long long>(lookups));

  // --- submit-latency tail, read back from the telemetry registry ----
  if (!obs::kEnabled)
    std::printf("\n(telemetry compiled out: PRIONN_OBS=OFF — the summary "
                "below reads as zeros)\n");
  auto& submit_latency =
      obs::registry().latency("prionn_serve_submit_latency_ns");
  auto& swap_latency =
      obs::registry().latency("prionn_serve_swap_latency_ns");
  util::Table table({"telemetry", "value"});
  table.add_row({"submissions", std::to_string(stats.submitted)});
  table.add_row({"  shed to fallback", std::to_string(stats.shed)});
  table.add_row({"submit latency p50 (us)",
                 util::fmt(submit_latency.quantile(0.5) / 1e3, 1)});
  table.add_row({"submit latency p99 (us)",
                 util::fmt(submit_latency.quantile(0.99) / 1e3, 1)});
  table.add_row({"model swap p99 (us)",
                 util::fmt(swap_latency.quantile(0.99) / 1e3, 1)});
  std::printf("\n%s", table.to_string().c_str());
  return 0;
}
