// Script inspector: shows the image-like mapping PRIONN feeds to its CNN.
// Renders one synthetic job script, its 64x64 crop, and an ASCII heat-map
// of each transform's first channel — useful for building intuition about
// what the 2D-CNN "sees".
//
//   ./build/examples/script_inspector [family-index]
#include <cstdio>
#include <cstdlib>

#include "core/script_image.hpp"
#include "embed/word2vec.hpp"
#include "trace/app_catalog.hpp"
#include "trace/features.hpp"
#include "trace/workload.hpp"

using namespace prionn;

namespace {

void render_channel(const tensor::Tensor& image, std::size_t channel,
                    std::size_t rows, std::size_t cols) {
  // Normalise the channel to [0, 1] and map to a 5-glyph ramp.
  const char* ramp = " .:*#";
  float lo = 1e30f, hi = -1e30f;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      const float v = image.at(channel, r, c);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  const float span = hi - lo > 1e-9f ? hi - lo : 1.0f;
  for (std::size_t r = 0; r < rows; r += 2) {  // halve rows for aspect
    for (std::size_t c = 0; c < cols; ++c) {
      const float v = (image.at(channel, r, c) - lo) / span;
      std::putchar(ramp[std::min<std::size_t>(
          4, static_cast<std::size_t>(v * 4.999f))]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto& catalog = trace::default_catalog();
  const std::size_t family =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) %
                     catalog.size()
               : 0;

  util::Rng rng(7);
  const auto config = trace::sample_config(catalog, family, rng);
  const auto script =
      trace::render_script(catalog, config, "user042", "g03");

  std::printf("=== job script (%s) ===\n%s\n", catalog[family].name.c_str(),
              script.c_str());

  const auto features = trace::parse_script(script);
  std::printf("=== Table-1 features the traditional pipeline extracts ===\n");
  std::printf("requested: %.2f h, %g nodes, %g tasks\n",
              features.requested_hours, features.requested_nodes,
              features.requested_tasks);
  std::printf("user=%s group=%s account=%s job=%s\n", features.user.c_str(),
              features.group.c_str(), features.account.c_str(),
              features.job_name.c_str());

  // PRIONN needs none of that parsing: show what the CNN sees instead.
  const struct {
    core::Transform transform;
    const char* note;
  } views[] = {
      {core::Transform::kBinary, "whitespace structure only (lossy)"},
      {core::Transform::kSimple, "ASCII codes scaled to [0,1] (lossless)"},
      {core::Transform::kWord2Vec,
       "first channel of the learned character embedding"},
  };
  embed::Word2VecOptions w2v;
  w2v.dimension = 4;
  w2v.epochs = 2;
  const auto embedding =
      embed::Word2VecTrainer(w2v).train(std::vector<std::string>{script});

  for (const auto& view : views) {
    core::ScriptImageOptions opts;
    opts.transform = view.transform;
    const core::ScriptImageMapper mapper(
        opts, view.transform == core::Transform::kWord2Vec
                  ? embedding
                  : embed::CharEmbedding{});
    std::printf("\n=== %s transform — %s ===\n",
                std::string(core::transform_name(view.transform)).c_str(),
                view.note);
    render_channel(mapper.map_2d(script), 0, opts.rows, opts.cols);
  }
  std::printf("\n(one-hot omitted from the rendering: 128 channels with a "
              "single 1 each)\n");
  return 0;
}
