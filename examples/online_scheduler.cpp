// Online scheduler integration (phase 1 of the paper): stream a synthetic
// job queue through PRIONN's online protocol and report how prediction
// accuracy evolves as the model retrains, the way a production scheduler
// would observe it.
//
//   ./build/examples/online_scheduler [jobs] [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/online.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"

using namespace prionn;

int main(int argc, char** argv) {
  const std::size_t n_jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1200;
  const std::size_t epochs =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8;

  std::printf("generating %zu-job Cab-like workload...\n", n_jobs);
  trace::WorkloadGenerator generator(trace::WorkloadOptions::cab(n_jobs));
  const auto jobs = trace::completed_jobs(generator.generate());

  core::OnlineOptions options;
  options.predictor.image.transform = core::Transform::kWord2Vec;
  options.predictor.model = core::ModelKind::kCnn2d;
  options.predictor.epochs = epochs;
  options.predictor.predict_io = false;
  std::printf("online protocol: retrain every %zu submissions on the %zu "
              "most recent completions, %zu epochs, warm start\n\n",
              options.retrain_interval, options.train_window, epochs);

  core::OnlineTrainer trainer(options);
  const auto result = trainer.run(jobs);

  // Accuracy per 100-submission block: the operator's view of the model
  // improving as it retrains.
  std::printf("%-18s %-16s %-16s\n", "submission block",
              "PRIONN accuracy", "user accuracy");
  const auto idx = result.predicted_indices();
  std::size_t block_start = idx.empty() ? 0 : idx.front();
  std::vector<double> block_prionn, block_user;
  const auto flush_block = [&](std::size_t end) {
    if (block_prionn.empty()) return;
    std::printf("%6zu - %-8zu %8.1f%% %15.1f%%\n", block_start, end,
                100.0 * util::mean(block_prionn),
                100.0 * util::mean(block_user));
    block_prionn.clear();
    block_user.clear();
    block_start = end + 1;
  };
  for (const std::size_t i : idx) {
    if (i >= block_start + 200) flush_block(i - 1);
    const auto& p = *result.predictions[i];
    block_prionn.push_back(util::relative_accuracy(jobs[i].runtime_minutes,
                                                   p.runtime_minutes));
    block_user.push_back(util::relative_accuracy(jobs[i].runtime_minutes,
                                                 jobs[i].requested_minutes));
  }
  flush_block(jobs.size() - 1);

  std::printf("\n%zu training events, %.1fs total training, %.2fms mean "
              "prediction latency\n",
              result.training_events, result.train_seconds,
              idx.empty() ? 0.0
                          : 1e3 * result.predict_seconds /
                                static_cast<double>(idx.size()));
  std::printf("steady-state accuracy is what an IO-aware scheduler would "
              "consume (see examples/io_burst_forecast for phase 2)\n");
  return 0;
}
