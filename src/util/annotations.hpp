// Clang thread-safety annotations (capability analysis). Under clang with
// -Wthread-safety these expand to the attributes that let the compiler
// prove, statically, that every access to a GUARDED_BY member happens
// under its mutex and that every ACQUIRE has a matching RELEASE. Under
// GCC (and clang without the warning) they expand to nothing, so the
// annotated code stays portable. The PRIONN_TSA CMake option turns the
// analysis into hard errors.
//
// The macros only work on types that are themselves annotated as
// capabilities — std::mutex is not; use util::Mutex from util/mutex.hpp.
#pragma once

#if defined(__clang__)
#define PRIONN_TSA_ATTR(x) __attribute__((x))
#else
#define PRIONN_TSA_ATTR(x)  // no-op outside clang
#endif

/// Type annotation: this class is a lockable capability (a mutex).
#define PRIONN_CAPABILITY(name) PRIONN_TSA_ATTR(capability(name))

/// Type annotation: RAII object that holds a capability for its lifetime.
#define PRIONN_SCOPED_CAPABILITY PRIONN_TSA_ATTR(scoped_lockable)

/// Data member annotation: reads/writes require holding `mu`.
#define PRIONN_GUARDED_BY(mu) PRIONN_TSA_ATTR(guarded_by(mu))

/// Pointer member annotation: the *pointee* is guarded by `mu`.
#define PRIONN_PT_GUARDED_BY(mu) PRIONN_TSA_ATTR(pt_guarded_by(mu))

/// Function annotation: caller must hold the listed capabilities.
#define PRIONN_REQUIRES(...) \
  PRIONN_TSA_ATTR(requires_capability(__VA_ARGS__))

/// Function annotation: acquires the listed capabilities (or `this`).
#define PRIONN_ACQUIRE(...) PRIONN_TSA_ATTR(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the listed capabilities (or `this`).
#define PRIONN_RELEASE(...) PRIONN_TSA_ATTR(release_capability(__VA_ARGS__))

/// Function annotation: acquires when returning `result` (e.g. true).
#define PRIONN_TRY_ACQUIRE(result, ...) \
  PRIONN_TSA_ATTR(try_acquire_capability(result, ##__VA_ARGS__))

/// Function annotation: caller must NOT hold the listed capabilities
/// (deadlock prevention for self-calling APIs).
#define PRIONN_EXCLUDES(...) PRIONN_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Escape hatch: disable the analysis for one function whose locking is
/// correct for reasons the checker cannot see. Every use carries a
/// comment explaining the protocol that makes it sound.
#define PRIONN_NO_THREAD_SAFETY_ANALYSIS \
  PRIONN_TSA_ATTR(no_thread_safety_analysis)
