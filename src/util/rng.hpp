// Deterministic, seedable random number generation for every stochastic
// component in the library (workload synthesis, weight init, sampling).
//
// We ship our own xoshiro256++ generator instead of std::mt19937 because
// (a) results must be bit-reproducible across standard libraries, and
// (b) the workload generator draws billions of variates when synthesising
// large traces, where xoshiro is measurably faster.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace prionn::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Public because tests and child-seed derivation use it directly.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Derive an independent child generator; `stream` distinguishes children
  /// derived from the same parent state.
  Rng child(std::uint64_t stream) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;
  /// Lognormal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;
  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;
  /// Poisson-distributed count with the given mean (>= 0).
  std::uint64_t poisson(double mean) noexcept;
  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample an index from unnormalised non-negative weights.
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Serialise / restore the full generator state (xoshiro words plus the
  /// cached Box-Muller variate) so stochastic components resume
  /// bit-exactly from a checkpoint.
  void save(std::ostream& os) const;
  static Rng load(std::istream& is);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipf(s) sampler over {0, .., n-1} using precomputed CDF; models the
/// heavy-tailed popularity of users/applications in HPC traces.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);
  std::size_t operator()(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace prionn::util
