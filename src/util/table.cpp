#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace prionn::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table::add_row: column count mismatch");
  rows_.push_back(std::move(row));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (const double v : values) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << "|" << std::string(widths[c] + 2, '-');
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  const auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

}  // namespace prionn::util
