// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for integrity
// checking of checkpoint payloads. Table-driven, incremental: feed chunks
// through Crc32::update() or hash a whole buffer with crc32(). The value
// matches zlib's crc32() so snapshots can be validated by external tools.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace prionn::util {

class Crc32 {
 public:
  void update(const void* data, std::size_t size) noexcept;
  /// Finalised digest of everything fed so far (does not reset).
  std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }
  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience over a contiguous buffer.
std::uint32_t crc32(const void* data, std::size_t size) noexcept;
std::uint32_t crc32(std::string_view bytes) noexcept;

}  // namespace prionn::util
