#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

namespace prionn::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double min_of(std::span<const double> xs) noexcept {
  double lo = std::numeric_limits<double>::infinity();
  for (const double x : xs) lo = std::min(lo, x);
  return lo;
}

double max_of(std::span<const double> xs) noexcept {
  double hi = -std::numeric_limits<double>::infinity();
  for (const double x : xs) hi = std::max(hi, x);
  return hi;
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double mean_absolute_error(std::span<const double> truth,
                           std::span<const double> pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    acc += std::abs(truth[i] - pred[i]);
  return acc / static_cast<double>(truth.size());
}

BoxplotSummary boxplot_summary(std::span<const double> xs) {
  BoxplotSummary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto q_of = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.q1 = q_of(0.25);
  s.median = q_of(0.5);
  s.q3 = q_of(0.75);
  const double iqr = s.q3 - s.q1;
  s.whisker_low = std::max(sorted.front(), s.q1 - 1.5 * iqr);
  s.whisker_high = std::min(sorted.back(), s.q3 + 1.5 * iqr);
  s.mean = mean(xs);
  return s;
}

std::string format_boxplot(const BoxplotSummary& s) {
  std::ostringstream os;
  os.precision(4);
  os << "mean=" << s.mean << " med=" << s.median << " q1=" << s.q1
     << " q3=" << s.q3 << " wlo=" << s.whisker_low
     << " whi=" << s.whisker_high << " n=" << s.count;
  return os.str();
}

double relative_accuracy(double truth, double pred) noexcept {
  const double eps = std::numeric_limits<double>::epsilon();
  const double denom = std::max(truth, pred) + eps;
  return 1.0 - std::abs(truth - pred) / denom;
}

std::vector<double> relative_accuracies(std::span<const double> truth,
                                        std::span<const double> pred) {
  assert(truth.size() == pred.size());
  std::vector<double> out(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i)
    out[i] = relative_accuracy(truth[i], pred[i]);
  return out;
}

}  // namespace prionn::util
