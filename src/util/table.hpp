// Console table / CSV writers shared by the bench harness so every
// reproduced figure prints in a uniform "paper says X / we measured Y"
// format.
#pragma once

#include <string>
#include <vector>

namespace prionn::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with fixed precision.
  void add_row_values(const std::vector<double>& values, int precision = 4);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Pretty-print with column alignment.
  std::string to_string() const;
  /// RFC-4180-ish CSV (quotes fields containing commas/quotes/newlines).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` significant decimal places.
std::string fmt(double value, int precision = 4);

}  // namespace prionn::util
