// Small string helpers shared by the script parser and workload generator.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace prionn::util {

/// Split on a delimiter; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char delim);

/// Split a script into lines; both "\n" and "\r\n" terminators accepted.
std::vector<std::string> split_lines(std::string_view text);

std::string_view trim(std::string_view text) noexcept;

bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string text, std::string_view from,
                        std::string_view to);

}  // namespace prionn::util
