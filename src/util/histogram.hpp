// Fixed-width and logarithmic histograms. Used by the trace statistics
// (runtime / bandwidth distributions of Figs. 8a, 9a, 11a, 12a, 14a) and by
// the IO-bin quantisation of PRIONN's IO heads.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace prionn::util {

class Histogram {
 public:
  /// Linear histogram over [lo, hi) with `bins` equal-width buckets.
  static Histogram linear(double lo, double hi, std::size_t bins);
  /// Logarithmic histogram over [lo, hi) (lo > 0) with geometric buckets.
  static Histogram logarithmic(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add(std::span<const double> xs) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }

  /// Fold another histogram's counts into this one. Both histograms must
  /// share the same configuration (scale, range, bucket count); used to
  /// combine per-thread histograms after a parallel fill.
  void merge(const Histogram& other);

  /// Value below which a fraction `p` (clamped to [0, 1]) of the samples
  /// fall, linearly interpolated inside the containing bucket. Samples
  /// outside [lo, hi) were clamped into the edge buckets by add(), so the
  /// result is always within [lo, hi]. Returns NaN for an empty histogram.
  double quantile(double p) const noexcept;

  /// Index of the bucket that would receive x; clamps to the edge buckets.
  std::size_t bin_of(double x) const noexcept;
  /// Representative value (geometric/arithmetic centre) of a bucket.
  double bin_center(std::size_t bin) const;
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

  /// ASCII rendering for bench output: one row per bucket with a bar.
  std::string render(std::size_t max_width = 50) const;

 private:
  Histogram() = default;
  bool log_scale_ = false;
  double lo_ = 0.0, hi_ = 1.0;
  double log_lo_ = 0.0, log_hi_ = 1.0;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0, underflow_ = 0, overflow_ = 0;
};

}  // namespace prionn::util
