#include "util/fault.hpp"

#include <algorithm>
#include <limits>

namespace prionn::util::fault {

const char* fault_point_name(FaultPoint p) noexcept {
  switch (p) {
    case FaultPoint::kCheckpointTruncate: return "checkpoint-truncate";
    case FaultPoint::kSnapshotCorrupt: return "snapshot-corrupt";
    case FaultPoint::kNanPoisonBatch: return "nan-poison-batch";
    case FaultPoint::kIngestGarbage: return "ingest-garbage";
    case FaultPoint::kCrash: return "crash";
    case FaultPoint::kCount: break;
  }
  return "unknown";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const FaultPlan& plan) {
  ScopedLock lock(mutex_);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    points_[i].plan = plan.points[i];
    std::sort(points_[i].plan.fire_at.begin(), points_[i].plan.fire_at.end());
    // Independent stream per point so consult order at one point does not
    // perturb another point's schedule.
    std::uint64_t state = plan.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1));
    points_[i].rng = Rng(splitmix64(state));
    points_[i].occurrences = 0;
    points_[i].fires = 0;
  }
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  ScopedLock lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::should_fire(FaultPoint p) {
  if (!armed()) return false;
  ScopedLock lock(mutex_);
  PointState& st = points_[static_cast<std::size_t>(p)];
  const std::uint64_t n = ++st.occurrences;
  // The random draw happens on every occurrence (even when fire_at already
  // decides) so the schedule of later occurrences does not depend on how
  // earlier ones were decided.
  const bool random_fire = st.rng.bernoulli(st.plan.probability);
  const bool listed = std::binary_search(st.plan.fire_at.begin(),
                                         st.plan.fire_at.end(), n);
  if ((random_fire || listed) && st.fires < st.plan.max_fires) {
    ++st.fires;
    return true;
  }
  return false;
}

std::uint64_t FaultInjector::occurrences(FaultPoint p) const {
  ScopedLock lock(mutex_);
  return points_[static_cast<std::size_t>(p)].occurrences;
}

std::uint64_t FaultInjector::fires(FaultPoint p) const {
  ScopedLock lock(mutex_);
  return points_[static_cast<std::size_t>(p)].fires;
}

void poison_with_nans(std::span<float> data, std::uint64_t salt) {
  if (data.empty()) return;
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  Rng rng(0xBADF00D ^ salt);
  const std::size_t count =
      std::max<std::size_t>(1, std::min<std::size_t>(8, data.size() / 4));
  for (std::size_t i = 0; i < count; ++i) {
    const auto at = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(data.size()) - 1));
    data[at] = kNan;
  }
}

std::string garble_line(const std::string& line, std::uint64_t salt) {
  Rng rng(0x6A7B1E ^ salt);
  switch (rng.uniform_int(0, 2)) {
    case 0:  // non-numeric tokens where numbers belong
      return "xx yy " + line;
    case 1:  // truncation mid-record
      return line.substr(0, line.size() / 3);
    default: {  // binary noise
      std::string noise = line;
      for (std::size_t i = 0; i < noise.size(); i += 3)
        noise[i] = static_cast<char>(rng.uniform_int(1, 255));
      return noise;
    }
  }
}

}  // namespace prionn::util::fault
