#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace prionn::util {

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
  if (!(lo < hi) || bins == 0)
    throw std::invalid_argument("Histogram::linear: need lo < hi, bins > 0");
  Histogram h;
  h.lo_ = lo;
  h.hi_ = hi;
  h.counts_.assign(bins, 0);
  return h;
}

Histogram Histogram::logarithmic(double lo, double hi, std::size_t bins) {
  if (!(0.0 < lo && lo < hi) || bins == 0)
    throw std::invalid_argument(
        "Histogram::logarithmic: need 0 < lo < hi, bins > 0");
  Histogram h;
  h.log_scale_ = true;
  h.lo_ = lo;
  h.hi_ = hi;
  h.log_lo_ = std::log(lo);
  h.log_hi_ = std::log(hi);
  h.counts_.assign(bins, 0);
  return h;
}

std::size_t Histogram::bin_of(double x) const noexcept {
  double t;
  if (log_scale_) {
    const double clamped = std::max(x, lo_);
    t = (std::log(clamped) - log_lo_) / (log_hi_ - log_lo_);
  } else {
    t = (x - lo_) / (hi_ - lo_);
  }
  const auto n = static_cast<double>(counts_.size());
  const double idx = std::floor(t * n);
  // The negated comparison also routes NaN (for which every ordered
  // comparison is false) into bin 0; the old `idx < 0.0` guard fell
  // through to an out-of-range float->size_t cast, which is UB.
  if (!(idx >= 0.0)) return 0;
  if (idx >= n) return counts_.size() - 1;
  return static_cast<std::size_t>(idx);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) ++underflow_;
  if (x >= hi_) ++overflow_;
  ++counts_[bin_of(x)];
}

void Histogram::add(std::span<const double> xs) noexcept {
  for (const double x : xs) add(x);
}

void Histogram::merge(const Histogram& other) {
  if (log_scale_ != other.log_scale_ || lo_ != other.lo_ ||
      hi_ != other.hi_ || counts_.size() != other.counts_.size())
    throw std::invalid_argument(
        "Histogram::merge: mismatched histogram configuration");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::quantile(double p) const noexcept {
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(total_);
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto below = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) {
      // Interpolate within the bucket, treating its mass as uniform.
      const double inside =
          std::clamp((target - below) / static_cast<double>(counts_[i]),
                     0.0, 1.0);
      return bin_low(i) + inside * (bin_high(i) - bin_low(i));
    }
  }
  return bin_high(counts_.size() - 1);  // unreachable when counts sum to total_
}

double Histogram::bin_low(std::size_t bin) const {
  const double t = static_cast<double>(bin) / static_cast<double>(counts_.size());
  return log_scale_ ? std::exp(log_lo_ + t * (log_hi_ - log_lo_))
                    : lo_ + t * (hi_ - lo_);
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin + 1); }

double Histogram::bin_center(std::size_t bin) const {
  return log_scale_ ? std::sqrt(bin_low(bin) * bin_high(bin))
                    : 0.5 * (bin_low(bin) + bin_high(bin));
}

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  os.precision(3);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto width = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    os << "[" << std::scientific << bin_low(i) << ", " << bin_high(i)
       << ") " << std::string(width, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace prionn::util
