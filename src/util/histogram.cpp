#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace prionn::util {

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
  if (!(lo < hi) || bins == 0)
    throw std::invalid_argument("Histogram::linear: need lo < hi, bins > 0");
  Histogram h;
  h.lo_ = lo;
  h.hi_ = hi;
  h.counts_.assign(bins, 0);
  return h;
}

Histogram Histogram::logarithmic(double lo, double hi, std::size_t bins) {
  if (!(0.0 < lo && lo < hi) || bins == 0)
    throw std::invalid_argument(
        "Histogram::logarithmic: need 0 < lo < hi, bins > 0");
  Histogram h;
  h.log_scale_ = true;
  h.lo_ = lo;
  h.hi_ = hi;
  h.log_lo_ = std::log(lo);
  h.log_hi_ = std::log(hi);
  h.counts_.assign(bins, 0);
  return h;
}

std::size_t Histogram::bin_of(double x) const noexcept {
  double t;
  if (log_scale_) {
    const double clamped = std::max(x, lo_);
    t = (std::log(clamped) - log_lo_) / (log_hi_ - log_lo_);
  } else {
    t = (x - lo_) / (hi_ - lo_);
  }
  const auto n = static_cast<double>(counts_.size());
  const double idx = std::floor(t * n);
  // The negated comparison also routes NaN (for which every ordered
  // comparison is false) into bin 0; the old `idx < 0.0` guard fell
  // through to an out-of-range float->size_t cast, which is UB.
  if (!(idx >= 0.0)) return 0;
  if (idx >= n) return counts_.size() - 1;
  return static_cast<std::size_t>(idx);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) ++underflow_;
  if (x >= hi_) ++overflow_;
  ++counts_[bin_of(x)];
}

void Histogram::add(std::span<const double> xs) noexcept {
  for (const double x : xs) add(x);
}

double Histogram::bin_low(std::size_t bin) const {
  const double t = static_cast<double>(bin) / static_cast<double>(counts_.size());
  return log_scale_ ? std::exp(log_lo_ + t * (log_hi_ - log_lo_))
                    : lo_ + t * (hi_ - lo_);
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin + 1); }

double Histogram::bin_center(std::size_t bin) const {
  return log_scale_ ? std::sqrt(bin_low(bin) * bin_high(bin))
                    : 0.5 * (bin_low(bin) + bin_high(bin));
}

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  os.precision(3);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto width = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    os << "[" << std::scientific << bin_low(i) << ", " << bin_high(i)
       << ") " << std::string(width, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace prionn::util
