// Annotated mutex primitives: std::mutex / std::scoped_lock /
// std::condition_variable shaped wrappers that carry the clang capability
// attributes from util/annotations.hpp, so thread-safety analysis can see
// lock acquisition through them. Zero overhead — each wrapper is exactly
// the standard-library object plus attributes the compiler erases.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/annotations.hpp"

namespace prionn::util {

/// std::mutex as an annotated capability: members guarded by a Mutex can
/// be declared PRIONN_GUARDED_BY(mu_) and the analysis enforces it.
class PRIONN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PRIONN_ACQUIRE() { mu_.lock(); }
  void unlock() PRIONN_RELEASE() { mu_.unlock(); }
  bool try_lock() PRIONN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop with standard condition-variable
  /// machinery (see CondVar). Using it to lock/unlock directly would blind
  /// the analysis — only CondVar should need it.
  std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// std::lock_guard over Mutex, visible to the analysis as a scoped
/// capability: the lock is held from construction to end of scope.
class PRIONN_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex& mu) PRIONN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~ScopedLock() PRIONN_RELEASE() { mu_.unlock(); }

  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. wait() REQUIRES the mutex, like
/// std::condition_variable::wait requires the unique_lock: it is released
/// while blocked and re-held when wait returns, which the analysis models
/// as "held across the call".
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) PRIONN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's scope
  }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) PRIONN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();
  }

  /// Timed wait: returns the predicate's value when the wait ends (false
  /// means the deadline passed first). Used by deadline-driven loops such
  /// as the serving micro-batcher, which waits for more requests only
  /// until the oldest one's latency budget runs out.
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
                Predicate pred) PRIONN_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    const bool ok = cv_.wait_for(lk, timeout, std::move(pred));
    lk.release();
    return ok;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace prionn::util
