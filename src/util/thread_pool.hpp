// Work-sharing thread pool used for data-parallel loops (GEMM tiles,
// per-sample gradient computation, forest fitting). The pool follows the
// OpenMP "parallel for" model: a static partition of the index range over a
// fixed set of workers, which is the right shape for the regular,
// equal-cost iterations that dominate this library.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace prionn::util {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Run fn(begin..end) partitioned across the pool (including the calling
  /// thread). Blocks until every iteration has completed. `fn` receives
  /// (index). Exceptions thrown by fn propagate to the caller (first one).
  /// Safe to call from multiple threads at once: concurrent loops are
  /// serialised on a submission lock (the pool has one task slot), so a
  /// serving thread and a background retrain can share the global pool —
  /// they interleave at per-loop granularity rather than corrupting the
  /// task state. Do not nest parallel_for inside a worker body: the
  /// submission lock is not reentrant.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(chunk_begin, chunk_end) per worker — lets the body
  /// keep per-chunk scratch state without false sharing.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool sized to the machine; lazily constructed.
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t chunks = 0;
  };

  void worker_loop(std::size_t worker_id);
  /// Runs one chunk of `task` on the calling thread. Takes a *copy* of the
  /// task descriptor made under the lock: the generation protocol
  /// guarantees task_ is stable while any chunk runs, but handing each
  /// runner its own copy makes that independence provable (and lets
  /// thread-safety analysis keep task_ guarded).
  void run_chunk(const Task& task, std::size_t chunk_id);

  std::vector<std::thread> workers_;
  /// Held for the whole duration of one parallel_for_chunks call: the
  /// pool has a single task_ slot, so concurrent submitters take turns.
  Mutex submit_mutex_;
  Mutex mutex_;
  CondVar cv_start_;
  CondVar cv_done_;
  Task task_ PRIONN_GUARDED_BY(mutex_);
  std::size_t generation_ PRIONN_GUARDED_BY(mutex_) = 0;
  std::size_t remaining_ PRIONN_GUARDED_BY(mutex_) = 0;
  bool stop_ PRIONN_GUARDED_BY(mutex_) = false;
  std::exception_ptr first_error_ PRIONN_GUARDED_BY(mutex_);
};

/// Convenience wrapper over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace prionn::util
