// Wall-clock timing for the paper's cost figures (Figs. 3, 4, 6).
#pragma once

#include <chrono>

namespace prionn::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace prionn::util
