// Monotonic timing for the paper's cost figures (Figs. 3, 4, 6) and the
// observability layer. Deliberately steady_clock, never system_clock: the
// bench numbers and trace spans must not jump when NTP slews the wall
// clock mid-run.
#pragma once

#include <chrono>
#include <cstdint>

namespace prionn::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double milliseconds() const noexcept { return seconds() * 1e3; }

  /// Integer nanoseconds since construction/reset; the resolution the
  /// span tracer and latency histograms work in.
  std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

  /// Monotonic nanosecond timestamp (epoch: the steady clock's own).
  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now().time_since_epoch())
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace prionn::util
