#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#include <unistd.h>
#define PRIONN_HAS_BACKTRACE 1
#endif

namespace prionn::util::check_detail {

namespace {

void print_stack_trace() {
#ifdef PRIONN_HAS_BACKTRACE
  void* frames[64];
  const int depth = backtrace(frames, 64);
  backtrace_symbols_fd(frames, depth, STDERR_FILENO);
#endif
}

}  // namespace

CheckFailure::CheckFailure(const char* file, int line, const char* expr) {
  os_ << file << ":" << line << ": PRIONN_CHECK(" << expr << ") failed: ";
}

CheckFailure::~CheckFailure() {
  const std::string message = os_.str();
  std::fputs(message.c_str(), stderr);
  std::fputc('\n', stderr);
  print_stack_trace();
  std::fflush(stderr);
  std::abort();
}

}  // namespace prionn::util::check_detail
