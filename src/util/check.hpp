// Runtime contract macros for trust-boundary validation. The policy
// (documented in DESIGN.md) is three-tiered:
//
//   PRIONN_CHECK(cond)        always on; cheap O(1)-ish invariants whose
//                             violation means memory-unsafe or silently
//                             corrupt behaviour would follow.
//   PRIONN_DCHECK(cond)       on in debug builds and sanitizer builds
//                             (PRIONN_ENABLE_DCHECKS); may scan whole
//                             tensors or validate per-element properties.
//   PRIONN_CHECK_FINITE(x)    always on; guards scalar summary values
//                             (losses, bandwidths) so NaN/Inf is caught at
//                             the point of production instead of leaking
//                             into predictions. PRIONN_DCHECK_FINITE is
//                             the debug-tier variant for whole buffers.
//
// A failed check prints `file:line`, the expression, the streamed message,
// and a stack trace, then aborts — contracts are programmer errors, not
// recoverable conditions (those keep using exceptions at the public API).
//
//   PRIONN_CHECK(rows == cols) << "grid must be square, got " << rows;
#pragma once

#include <cmath>
#include <span>
#include <sstream>

namespace prionn::util::check_detail {

/// Accumulates the streamed message for a failed check and aborts with a
/// stack trace when the full expression finishes evaluating.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr);
  ~CheckFailure();  // prints and aborts; never returns
  std::ostream& stream() noexcept { return os_; }

 private:
  std::ostringstream os_;
};

/// Gives the false arm of the PRIONN_CHECK ternary type `void` so both
/// arms agree; `&` binds looser than `<<`, so messages stream first.
struct Voidify {
  void operator&(std::ostream&) const noexcept {}
};

inline bool all_finite(float v) noexcept { return std::isfinite(v); }
inline bool all_finite(double v) noexcept { return std::isfinite(v); }
inline bool all_finite(std::span<const float> v) noexcept {
  for (const float x : v)
    if (!std::isfinite(x)) return false;
  return true;
}
inline bool all_finite(std::span<const double> v) noexcept {
  for (const double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace prionn::util::check_detail

#define PRIONN_CHECK(cond)                                       \
  (static_cast<bool>(cond))                                      \
      ? (void)0                                                  \
      : ::prionn::util::check_detail::Voidify() &                \
            ::prionn::util::check_detail::CheckFailure(          \
                __FILE__, __LINE__, #cond)                       \
                .stream()

#define PRIONN_CHECK_FINITE(value)                               \
  PRIONN_CHECK(::prionn::util::check_detail::all_finite(value))  \
      << "non-finite value in `" #value "`: "

// Debug-tier checks: live when NDEBUG is unset (Debug builds) or when the
// build opts in (sanitizer configurations define PRIONN_ENABLE_DCHECKS so
// ASan/UBSan/TSan runs exercise the expensive contracts too).
#if !defined(NDEBUG) || defined(PRIONN_ENABLE_DCHECKS)
#define PRIONN_DCHECK_IS_ON() 1
#define PRIONN_DCHECK(cond) PRIONN_CHECK(cond)
#define PRIONN_DCHECK_FINITE(value) PRIONN_CHECK_FINITE(value)
#else
#define PRIONN_DCHECK_IS_ON() 0
// Compiled (so the condition stays well-formed) but never evaluated.
#define PRIONN_DCHECK(cond) \
  while (false) PRIONN_CHECK(cond)
#define PRIONN_DCHECK_FINITE(value) \
  while (false) PRIONN_CHECK_FINITE(value)
#endif
