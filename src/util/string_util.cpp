#include "util/string_util.hpp"

namespace prionn::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines = split(text, '\n');
  for (auto& line : lines) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }
  // A trailing newline produces one empty trailing element; drop it so the
  // line count matches what an editor would show.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  std::size_t b = 0, e = text.size();
  while (b < e && is_space(text[b])) ++b;
  while (e > b && is_space(text[e - 1])) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string replace_all(std::string text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

}  // namespace prionn::util
