#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numbers>
#include <ostream>
#include <stdexcept>

namespace prionn::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::child(std::uint64_t stream) noexcept {
  // Mix the parent state with the stream id through splitmix so children
  // with different streams are decorrelated from each other and the parent.
  std::uint64_t sm = s_[0] ^ rotl(stream, 31) ^ 0xd1b54a32d192ed03ULL;
  return Rng(splitmix64(sm));
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's multiply-shift rejection method for unbiased bounded ints.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction for large means.
  const double sample = normal(mean, std::sqrt(mean));
  return sample < 0.5 ? 0 : static_cast<std::uint64_t>(sample + 0.5);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  cdf_.resize(n == 0 ? 1 : n);
  double acc = 0.0;
  for (std::size_t i = 0; i < cdf_.size(); ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

void Rng::save(std::ostream& os) const {
  os.write(reinterpret_cast<const char*>(s_.data()),
           static_cast<std::streamsize>(sizeof(s_)));
  os.write(reinterpret_cast<const char*>(&cached_normal_),
           sizeof(cached_normal_));
  const std::uint8_t has = has_cached_normal_ ? 1 : 0;
  os.write(reinterpret_cast<const char*>(&has), sizeof(has));
}

Rng Rng::load(std::istream& is) {
  Rng rng(0);
  is.read(reinterpret_cast<char*>(rng.s_.data()),
          static_cast<std::streamsize>(sizeof(rng.s_)));
  is.read(reinterpret_cast<char*>(&rng.cached_normal_),
          sizeof(rng.cached_normal_));
  std::uint8_t has = 0;
  is.read(reinterpret_cast<char*>(&has), sizeof(has));
  if (!is) throw std::runtime_error("Rng::load: truncated stream");
  rng.has_cached_normal_ = has != 0;
  return rng;
}

}  // namespace prionn::util
