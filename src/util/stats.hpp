// Descriptive statistics used by every evaluation in the paper:
// means/medians of relative accuracy, boxplot five-number summaries for the
// accuracy figures, and MAE for the Table 2 replication.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace prionn::util {

double mean(std::span<const double> xs) noexcept;
double variance(std::span<const double> xs) noexcept;  // population variance
double stddev(std::span<const double> xs) noexcept;
double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// Linear-interpolation quantile (same convention as numpy's default).
/// q in [0, 1]. Copies and sorts internally.
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

/// Mean absolute error between matching spans.
double mean_absolute_error(std::span<const double> truth,
                           std::span<const double> pred);

/// Five-number summary + mean, the data behind every boxplot figure.
struct BoxplotSummary {
  double whisker_low = 0.0;   // Q1 - 1.5 IQR clamped to min
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_high = 0.0;  // Q3 + 1.5 IQR clamped to max
  double mean = 0.0;
  std::size_t count = 0;
};

BoxplotSummary boxplot_summary(std::span<const double> xs);

/// Render a one-line summary ("mean=.. med=.. [q1,q3]=..") for bench tables.
std::string format_boxplot(const BoxplotSummary& s);

/// Relative accuracy per Eq. (1) of the paper:
///   1 - |true - pred| / (max(true, pred) + eps)
/// Range [0, 1]; under-prediction is penalised more than over-prediction.
double relative_accuracy(double truth, double pred) noexcept;

/// Element-wise relative accuracy over two spans of equal length.
std::vector<double> relative_accuracies(std::span<const double> truth,
                                        std::span<const double> pred);

}  // namespace prionn::util
