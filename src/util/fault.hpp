// Deterministic fault-injection harness for resilience testing. Production
// code consults named injection points at the places where the real world
// fails — checkpoint writes, snapshot reads, training batches, trace
// ingestion — and the harness decides, from a single seed, whether the
// fault fires. Disarmed (the default) every query is a single relaxed
// atomic load, so the hooks are free in production builds.
//
// Determinism contract: given the same FaultPlan (seed + per-point
// schedule) and the same sequence of queries, the same queries fire. Tests
// rely on this to replay identical fault schedules across runs.
//
//   util::fault::FaultPlan plan;
//   plan.seed = 42;
//   plan.point(FaultPoint::kNanPoisonBatch).fire_at = {2};  // 2nd retrain
//   plan.point(FaultPoint::kIngestGarbage).probability = 0.05;
//   util::fault::ScopedFaultPlan armed(plan);
//   ... exercise the system ...
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace prionn::util::fault {

enum class FaultPoint : std::size_t {
  kCheckpointTruncate = 0,  // torn checkpoint write (file cut short)
  kSnapshotCorrupt,         // bit flip inside a written checkpoint
  kNanPoisonBatch,          // NaNs injected into a training batch
  kIngestGarbage,           // trace/SWF line replaced with garbage
  kCrash,                   // simulated process death (observed by tests)
  kCount,
};

const char* fault_point_name(FaultPoint p) noexcept;

/// Per-point schedule: a fault fires on the occurrences listed in
/// `fire_at` (1-based), and additionally with `probability` on every
/// other occurrence, up to `max_fires` total fires.
struct PointPlan {
  double probability = 0.0;
  std::vector<std::uint64_t> fire_at;
  std::uint64_t max_fires = UINT64_MAX;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::array<PointPlan, static_cast<std::size_t>(FaultPoint::kCount)> points;

  PointPlan& point(FaultPoint p) {
    return points[static_cast<std::size_t>(p)];
  }
  const PointPlan& point(FaultPoint p) const {
    return points[static_cast<std::size_t>(p)];
  }
};

/// Process-global injector (failpoint style: threading an injector object
/// through every ingestion and checkpoint API would distort the very
/// interfaces the harness is meant to test). Thread-safe; disarmed unless
/// a plan is armed.
class FaultInjector {
 public:
  static FaultInjector& instance();

  void arm(const FaultPlan& plan);
  void disarm();
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Consult an injection point; advances its occurrence counter.
  /// Always false when disarmed.
  bool should_fire(FaultPoint p);

  /// Times `should_fire` was consulted / returned true since arm().
  std::uint64_t occurrences(FaultPoint p) const;
  std::uint64_t fires(FaultPoint p) const;

 private:
  FaultInjector() = default;

  struct PointState {
    PointPlan plan;
    Rng rng{0};
    std::uint64_t occurrences = 0;
    std::uint64_t fires = 0;
  };

  std::atomic<bool> armed_{false};
  mutable Mutex mutex_;
  std::array<PointState, static_cast<std::size_t>(FaultPoint::kCount)>
      points_ PRIONN_GUARDED_BY(mutex_);
};

/// Shorthand for the common call site: armed-check plus consult.
inline bool fire(FaultPoint p) {
  FaultInjector& inj = FaultInjector::instance();
  return inj.armed() && inj.should_fire(p);
}

/// RAII arm/disarm for tests.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) {
    FaultInjector::instance().arm(plan);
  }
  ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

/// Deterministically overwrite a handful of elements with quiet NaNs
/// (used by the kNanPoisonBatch hook). `salt` varies the positions.
void poison_with_nans(std::span<float> data, std::uint64_t salt);

/// Deterministically mangle a text line into ingestion garbage (used by
/// the kIngestGarbage hook): non-numeric tokens, truncation, or binary
/// noise depending on the salt.
std::string garble_line(const std::string& line, std::uint64_t salt);

}  // namespace prionn::util::fault
