#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace prionn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    ScopedLock lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunk(const Task& task, std::size_t chunk_id) {
  PRIONN_DCHECK(task.body != nullptr && chunk_id < task.chunks)
      << "ThreadPool::run_chunk: chunk " << chunk_id << " of "
      << task.chunks;
  const std::size_t total = task.end - task.begin;
  const std::size_t per = total / task.chunks;
  const std::size_t extra = total % task.chunks;
  // First `extra` chunks take one extra iteration so the partition is exact.
  const std::size_t lo =
      task.begin + chunk_id * per + std::min(chunk_id, extra);
  const std::size_t hi = lo + per + (chunk_id < extra ? 1 : 0);
  if (lo >= hi) return;
  try {
    (*task.body)(lo, hi);
  } catch (...) {
    ScopedLock lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::size_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      ScopedLock lock(mutex_);
      while (!stop_ && generation_ == seen_generation)
        cv_start_.wait(mutex_);
      if (stop_) return;
      seen_generation = generation_;
      task = task_;
    }
    if (worker_id < task.chunks) run_chunk(task, worker_id);
    {
      ScopedLock lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, size());
  if (chunks <= 1 || workers_.empty()) {
    fn(begin, end);
    return;
  }
  // One loop at a time: the single task_ slot and the generation protocol
  // assume exactly one submitter, so concurrent callers queue here.
  ScopedLock submit_lock(submit_mutex_);
  // Workers with id >= chunks still wake and decrement remaining_, so the
  // partition below stays exact only while chunks <= workers + 1.
  PRIONN_CHECK(chunks <= workers_.size() + 1)
      << "ThreadPool: " << chunks << " chunks for " << workers_.size() + 1
      << " threads";
  const Task task{&fn, begin, end, chunks};
  {
    ScopedLock lock(mutex_);
    task_ = task;
    first_error_ = nullptr;
    remaining_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  // Worker ids are 1..workers_.size() and each runs chunk == id when
  // id < chunks; the calling thread always takes chunk 0, so with
  // chunks <= workers + 1 the partition is exact and disjoint.
  run_chunk(task, 0);
  std::exception_ptr first_error;
  {
    ScopedLock lock(mutex_);
    while (remaining_ != 0) cv_done_.wait(mutex_);
    first_error = first_error_;
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace prionn::util
