#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace prionn::util {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunk(std::size_t chunk_id) {
  PRIONN_DCHECK(task_.body != nullptr && chunk_id < task_.chunks)
      << "ThreadPool::run_chunk: chunk " << chunk_id << " of "
      << task_.chunks;
  const std::size_t total = task_.end - task_.begin;
  const std::size_t per = total / task_.chunks;
  const std::size_t extra = total % task_.chunks;
  // First `extra` chunks take one extra iteration so the partition is exact.
  const std::size_t lo =
      task_.begin + chunk_id * per + std::min(chunk_id, extra);
  const std::size_t hi = lo + per + (chunk_id < extra ? 1 : 0);
  if (lo >= hi) return;
  try {
    (*task_.body)(lo, hi);
  } catch (...) {
    std::lock_guard lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
    }
    if (worker_id < task_.chunks) run_chunk(worker_id);
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, size());
  if (chunks <= 1 || workers_.empty()) {
    fn(begin, end);
    return;
  }
  // Workers with id >= chunks still wake and decrement remaining_, so the
  // partition below stays exact only while chunks <= workers + 1.
  PRIONN_CHECK(chunks <= workers_.size() + 1)
      << "ThreadPool: " << chunks << " chunks for " << workers_.size() + 1
      << " threads";
  {
    std::lock_guard lock(mutex_);
    task_ = Task{&fn, begin, end, chunks};
    first_error_ = nullptr;
    remaining_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  // Worker ids are 1..workers_.size() and each runs chunk == id when
  // id < chunks; the calling thread always takes chunk 0, so with
  // chunks <= workers + 1 the partition is exact and disjoint.
  run_chunk(0);
  {
    std::unique_lock lock(mutex_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace prionn::util
