#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace prionn::ml {

DecisionTreeRegressor::DecisionTreeRegressor(DecisionTreeOptions options)
    : options_(options), rng_(options.seed) {}

void DecisionTreeRegressor::fit(const Dataset& data) {
  std::vector<std::size_t> rows(data.rows());
  std::iota(rows.begin(), rows.end(), 0);
  fit_rows(data, rows);
}

void DecisionTreeRegressor::fit_rows(const Dataset& data,
                                     std::span<const std::size_t> rows) {
  if (rows.empty())
    throw std::invalid_argument("DecisionTreeRegressor::fit: empty data");
  nodes_.clear();
  depth_ = 0;
  importance_.assign(data.features(), 0.0);
  std::vector<std::size_t> work(rows.begin(), rows.end());
  build(data, work, 0, work.size(), 0);
  double total = 0.0;
  for (const double g : importance_) total += g;
  if (total > 0.0)
    for (double& g : importance_) g /= total;
}

std::size_t DecisionTreeRegressor::build(const Dataset& data,
                                         std::vector<std::size_t>& rows,
                                         std::size_t lo, std::size_t hi,
                                         std::size_t level) {
  depth_ = std::max(depth_, level);
  const std::size_t count = hi - lo;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    const double y = data.target(rows[i]);
    sum += y;
    sum_sq += y * y;
  }
  const double mean = sum / static_cast<double>(count);
  const double sse = sum_sq - sum * mean;  // total squared error around mean

  const auto make_leaf = [&]() {
    nodes_.push_back(Node{Node::kLeaf, 0.0, mean, 0, 0});
    return nodes_.size() - 1;
  };

  if (level >= options_.max_depth || count < options_.min_samples_split ||
      sse <= 1e-12)
    return make_leaf();

  // Choose candidate features (all, or a random subset for forests).
  const std::size_t d = data.features();
  std::vector<std::size_t> feats(d);
  std::iota(feats.begin(), feats.end(), 0);
  std::size_t feat_count = d;
  if (options_.max_features > 0 && options_.max_features < d) {
    rng_.shuffle(feats);
    feat_count = options_.max_features;
  }

  // Best split = maximal reduction of summed squared error.
  double best_gain = 1e-12;
  std::size_t best_feature = Node::kLeaf;
  double best_threshold = 0.0;

  std::vector<std::pair<double, double>> values;  // (x_f, y)
  values.reserve(count);
  for (std::size_t fi = 0; fi < feat_count; ++fi) {
    const std::size_t f = feats[fi];
    values.clear();
    for (std::size_t i = lo; i < hi; ++i)
      values.emplace_back(data.feature(rows[i], f), data.target(rows[i]));
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) continue;

    double left_sum = 0.0, left_sq = 0.0;
    double right_sum = sum, right_sq = sum_sq;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      const double y = values[i].second;
      left_sum += y;
      left_sq += y * y;
      right_sum -= y;
      right_sq -= y * y;
      // Only split between distinct feature values.
      if (values[i].first == values[i + 1].first) continue;
      const std::size_t nl = i + 1, nr = count - nl;
      if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf)
        continue;
      const double sse_l = left_sq - left_sum * left_sum / static_cast<double>(nl);
      const double sse_r =
          right_sq - right_sum * right_sum / static_cast<double>(nr);
      const double gain = sse - sse_l - sse_r;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (values[i].first + values[i + 1].first);
      }
    }
  }

  if (best_feature == Node::kLeaf) return make_leaf();

  // Partition rows in place around the threshold.
  const auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(lo),
      rows.begin() + static_cast<std::ptrdiff_t>(hi), [&](std::size_t r) {
        return data.feature(r, best_feature) <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - rows.begin());
  if (mid == lo || mid == hi) return make_leaf();  // numerically degenerate

  importance_[best_feature] += best_gain;
  const std::size_t node_index = nodes_.size();
  nodes_.push_back(Node{best_feature, best_threshold, mean, 0, 0});
  const std::size_t left = build(data, rows, lo, mid, level + 1);
  const std::size_t right = build(data, rows, mid, hi, level + 1);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTreeRegressor::predict(std::span<const double> x) const {
  if (nodes_.empty())
    throw std::logic_error("DecisionTreeRegressor::predict: not fitted");
  std::size_t i = 0;
  for (;;) {
    const Node& n = nodes_[i];
    if (n.feature == Node::kLeaf) return n.value;
    i = x[n.feature] <= n.threshold ? n.left : n.right;
  }
}

}  // namespace prionn::ml
