// Random Forest regressor: bagged CART trees with per-split feature
// subsampling. The paper identifies RF as the strongest traditional
// baseline and compares PRIONN against it throughout.
#pragma once

#include <memory>
#include <vector>

#include "ml/decision_tree.hpp"

namespace prionn::ml {

struct RandomForestOptions {
  std::size_t trees = 50;
  /// tree.max_features 0 keeps all features per split — the scikit-learn
  /// default for regression forests (diversity comes from bootstrapping);
  /// set it explicitly for classification-style sqrt(d) subsampling.
  DecisionTreeOptions tree;
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 13;
};

class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(RandomForestOptions options = {});

  void fit(const Dataset& data) override;
  double predict(std::span<const double> x) const override;

  std::size_t tree_count() const noexcept { return trees_.size(); }

  /// Mean of the member trees' impurity-based importances (sums to ~1).
  std::vector<double> feature_importance() const;

 private:
  RandomForestOptions options_;
  std::vector<std::unique_ptr<DecisionTreeRegressor>> trees_;
};

}  // namespace prionn::ml
