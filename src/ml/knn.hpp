// k-Nearest-Neighbours regressor (Euclidean, brute force with partial
// selection). The weakest of the paper's traditional baselines — label
// encoding puts categorical features on an arbitrary metric, which the
// paper cites as the likely cause.
#pragma once

#include <cstddef>

#include "ml/dataset.hpp"

namespace prionn::ml {

struct KnnOptions {
  std::size_t k = 5;
  /// When true, neighbour targets are weighted by inverse distance.
  bool distance_weighted = false;
};

class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(KnnOptions options = {});

  KnnOptions options() const noexcept { return options_; }

  void fit(const Dataset& data) override;
  double predict(std::span<const double> x) const override;

 private:
  KnnOptions options_;
  Dataset train_;
};

}  // namespace prionn::ml
