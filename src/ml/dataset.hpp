// Flat numeric dataset shared by the traditional-ML baselines (the paper's
// kNN / Decision Tree / Random Forest comparators, fed by the manually
// extracted Table-1 features).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace prionn::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::size_t features) : features_(features) {}

  std::size_t rows() const noexcept { return targets_.size(); }
  std::size_t features() const noexcept { return features_; }
  bool empty() const noexcept { return targets_.empty(); }

  void add_row(std::span<const double> x, double y);
  void reserve(std::size_t rows);
  void clear() noexcept;

  std::span<const double> row(std::size_t r) const noexcept {
    PRIONN_DCHECK(r < rows())
        << "Dataset::row: " << r << " >= " << rows();
    return {x_.data() + r * features_, features_};
  }
  double feature(std::size_t r, std::size_t f) const noexcept {
    PRIONN_DCHECK(r < rows() && f < features_)
        << "Dataset::feature: (" << r << ", " << f << ") out of "
        << rows() << " x " << features_;
    return x_[r * features_ + f];
  }
  double target(std::size_t r) const noexcept {
    PRIONN_DCHECK(r < rows())
        << "Dataset::target: " << r << " >= " << rows();
    return targets_[r];
  }
  std::span<const double> targets() const noexcept { return targets_; }

  /// Row subset (copying), used for train/test splits in tests.
  Dataset subset(std::span<const std::size_t> indices) const;

 private:
  std::size_t features_ = 0;
  std::vector<double> x_;        // rows x features, row-major
  std::vector<double> targets_;  // rows
};

/// A fitted regressor interface shared by all traditional models.
class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual void fit(const Dataset& data) = 0;
  virtual double predict(std::span<const double> x) const = 0;

  std::vector<double> predict_all(const Dataset& data) const;
};

}  // namespace prionn::ml
