#include "ml/label_encoder.hpp"

#include "util/check.hpp"

namespace prionn::ml {

double LabelEncoder::encode(std::string_view value) {
  PRIONN_DCHECK(to_id_.size() == to_value_.size())
      << "LabelEncoder: id map (" << to_id_.size() << ") and value table ("
      << to_value_.size() << ") cardinality diverged";
  const auto it = to_id_.find(std::string(value));
  if (it != to_id_.end()) return static_cast<double>(it->second);
  const std::size_t id = to_value_.size();
  to_value_.emplace_back(value);
  to_id_.emplace(to_value_.back(), id);
  return static_cast<double>(id);
}

double LabelEncoder::encode_const(std::string_view value) const noexcept {
  const auto it = to_id_.find(std::string(value));
  return it == to_id_.end() ? -1.0 : static_cast<double>(it->second);
}

}  // namespace prionn::ml
