#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace prionn::ml {

KnnRegressor::KnnRegressor(KnnOptions options) : options_(options) {
  if (options_.k == 0) throw std::invalid_argument("Knn: k must be > 0");
}

void KnnRegressor::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("Knn::fit: empty data");
  train_ = data;
}

double KnnRegressor::predict(std::span<const double> x) const {
  if (train_.empty()) throw std::logic_error("Knn::predict: not fitted");
  if (x.size() != train_.features())
    throw std::invalid_argument("Knn::predict: feature count mismatch");

  std::vector<std::pair<double, double>> dist_target(train_.rows());
  for (std::size_t r = 0; r < train_.rows(); ++r) {
    const auto row = train_.row(r);
    double d2 = 0.0;
    for (std::size_t f = 0; f < x.size(); ++f) {
      const double diff = row[f] - x[f];
      d2 += diff * diff;
    }
    dist_target[r] = {d2, train_.target(r)};
  }
  const std::size_t k = std::min(options_.k, dist_target.size());
  std::partial_sort(dist_target.begin(),
                    dist_target.begin() + static_cast<std::ptrdiff_t>(k),
                    dist_target.end());
  if (!options_.distance_weighted) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += dist_target[i].second;
    return acc / static_cast<double>(k);
  }
  double weighted = 0.0, weight_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    // An exact-distance-0 neighbour dominates via the epsilon floor.
    const double w = 1.0 / (std::sqrt(dist_target[i].first) + 1e-9);
    weighted += w * dist_target[i].second;
    weight_sum += w;
  }
  return weighted / weight_sum;
}

}  // namespace prionn::ml
