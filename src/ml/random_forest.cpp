#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace prionn::ml {

RandomForestRegressor::RandomForestRegressor(RandomForestOptions options)
    : options_(options) {
  if (options_.trees == 0)
    throw std::invalid_argument("RandomForest: need at least one tree");
}

void RandomForestRegressor::fit(const Dataset& data) {
  if (data.empty())
    throw std::invalid_argument("RandomForest::fit: empty data");
  DecisionTreeOptions tree_opts = options_.tree;
  // max_features == 0 means "all features" (regression-forest default);
  // the tree treats 0 the same way, so no adjustment is needed here.

  const auto sample_count = static_cast<std::size_t>(
      std::max(1.0, options_.bootstrap_fraction *
                        static_cast<double>(data.rows())));

  trees_.clear();
  trees_.resize(options_.trees);
  util::Rng seeder(options_.seed);
  // Pre-draw per-tree seeds so the result is deterministic regardless of
  // how the pool schedules the fits.
  std::vector<std::uint64_t> seeds(options_.trees);
  for (auto& s : seeds) s = seeder();

  util::parallel_for(0, options_.trees, [&](std::size_t t) {
    util::Rng rng(seeds[t]);
    std::vector<std::size_t> rows(sample_count);
    for (auto& r : rows)
      r = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(data.rows()) - 1));
    DecisionTreeOptions opts = tree_opts;
    opts.seed = rng();
    auto tree = std::make_unique<DecisionTreeRegressor>(opts);
    tree->fit_rows(data, rows);
    trees_[t] = std::move(tree);
  });
}

std::vector<double> RandomForestRegressor::feature_importance() const {
  if (trees_.empty())
    throw std::logic_error("RandomForest::feature_importance: not fitted");
  std::vector<double> total(trees_.front()->feature_importance().size(),
                            0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree->feature_importance();
    for (std::size_t f = 0; f < total.size(); ++f) total[f] += imp[f];
  }
  for (double& g : total) g /= static_cast<double>(trees_.size());
  return total;
}

double RandomForestRegressor::predict(std::span<const double> x) const {
  if (trees_.empty())
    throw std::logic_error("RandomForest::predict: not fitted");
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree->predict(x);
  return acc / static_cast<double>(trees_.size());
}

}  // namespace prionn::ml
