#include "ml/dataset.hpp"

namespace prionn::ml {

void Dataset::add_row(std::span<const double> x, double y) {
  if (x.size() != features_)
    throw std::invalid_argument("Dataset::add_row: feature count mismatch");
  // Non-finite features/targets would silently poison every split search
  // in the tree models, so reject them at ingestion in checked builds.
  PRIONN_DCHECK_FINITE(x) << "Dataset::add_row: row " << rows();
  PRIONN_DCHECK_FINITE(y) << "Dataset::add_row: target of row " << rows();
  x_.insert(x_.end(), x.begin(), x.end());
  targets_.push_back(y);
}

void Dataset::reserve(std::size_t rows) {
  x_.reserve(rows * features_);
  targets_.reserve(rows);
}

void Dataset::clear() noexcept {
  x_.clear();
  targets_.clear();
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(features_);
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.add_row(row(i), target(i));
  return out;
}

std::vector<double> Regressor::predict_all(const Dataset& data) const {
  std::vector<double> out(data.rows());
  for (std::size_t r = 0; r < data.rows(); ++r) out[r] = predict(data.row(r));
  return out;
}

}  // namespace prionn::ml
