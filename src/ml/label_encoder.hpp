// Label encoder: assigns a stable unique integer to each unique string, the
// paper's method for turning categorical job-script features (user, group,
// account, job name, directories) into numbers for the traditional models.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace prionn::ml {

class LabelEncoder {
 public:
  /// Encode, assigning a fresh id on first sight.
  double encode(std::string_view value);

  /// Encode without inserting; unseen values map to -1 (the convention the
  /// downstream trees/kNN treat as "other").
  double encode_const(std::string_view value) const noexcept;

  std::size_t classes() const noexcept { return to_id_.size(); }
  const std::string& decode(std::size_t id) const { return to_value_.at(id); }

 private:
  std::unordered_map<std::string, std::size_t> to_id_;
  std::vector<std::string> to_value_;
};

}  // namespace prionn::ml
