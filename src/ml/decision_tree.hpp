// CART regression tree: greedy variance-reduction splits on numeric
// features. One of the paper's three traditional baselines and the building
// block of the Random Forest.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "util/rng.hpp"

namespace prionn::ml {

struct DecisionTreeOptions {
  std::size_t max_depth = 24;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features examined per split; 0 = all (plain tree). Forests set this to
  /// roughly sqrt(d) or d/3.
  std::size_t max_features = 0;
  std::uint64_t seed = 7;  // only used when max_features subsamples
};

class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(DecisionTreeOptions options = {});

  void fit(const Dataset& data) override;
  /// Fit on a row subset (shared by the forest's bootstrap samples).
  void fit_rows(const Dataset& data, std::span<const std::size_t> rows);
  double predict(std::span<const double> x) const override;

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }

  /// Impurity-based feature importance: per-feature sum of the squared-
  /// error reduction its splits achieved, normalised to sum to 1 (all
  /// zeros when the tree is a single leaf).
  const std::vector<double>& feature_importance() const noexcept {
    return importance_;
  }

 private:
  struct Node {
    // Leaf when feature == kLeaf.
    std::size_t feature = kLeaf;
    double threshold = 0.0;
    double value = 0.0;  // mean target (leaves)
    std::size_t left = 0, right = 0;
    static constexpr std::size_t kLeaf = static_cast<std::size_t>(-1);
  };

  std::size_t build(const Dataset& data, std::vector<std::size_t>& rows,
                    std::size_t lo, std::size_t hi, std::size_t level);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
  std::size_t depth_ = 0;
  util::Rng rng_;
};

}  // namespace prionn::ml
