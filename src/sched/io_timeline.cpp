#include "sched/io_timeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prionn::sched {

IoTimeline::IoTimeline(double bucket_seconds)
    : bucket_seconds_(bucket_seconds) {
  if (bucket_seconds <= 0.0)
    throw std::invalid_argument("IoTimeline: bucket_seconds must be > 0");
}

void IoTimeline::add(const IoInterval& interval) {
  if (interval.end_time <= interval.start_time || interval.bandwidth <= 0.0)
    return;
  const double start = std::max(0.0, interval.start_time);
  const double end = std::max(start, interval.end_time);
  const auto first =
      static_cast<std::size_t>(std::floor(start / bucket_seconds_));
  const auto last =
      static_cast<std::size_t>(std::ceil(end / bucket_seconds_));
  if (last > buckets_.size()) buckets_.resize(last, 0.0);
  for (std::size_t b = first; b < last; ++b) {
    // Pro-rate partial bucket coverage so short jobs are not over-counted.
    const double b_lo = static_cast<double>(b) * bucket_seconds_;
    const double b_hi = b_lo + bucket_seconds_;
    const double overlap =
        std::min(end, b_hi) - std::max(start, b_lo);
    if (overlap > 0.0)
      buckets_[b] += interval.bandwidth * overlap / bucket_seconds_;
  }
}

void IoTimeline::add(const std::vector<IoInterval>& intervals) {
  for (const auto& i : intervals) add(i);
}

}  // namespace prionn::sched
