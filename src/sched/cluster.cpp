#include "sched/cluster.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace prionn::sched {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
constexpr double kMinRemaining = 1.0;  // seconds
}  // namespace

ClusterSimulator::ClusterSimulator(ClusterOptions options)
    : options_(options), free_nodes_(options.total_nodes) {
  if (options_.total_nodes == 0)
    throw std::invalid_argument("ClusterSimulator: need at least one node");
}

double ClusterSimulator::next_completion_time() const noexcept {
  double t = kInfinity;
  for (const auto& r : running_) t = std::min(t, r.actual_end);
  return t;
}

void ClusterSimulator::complete_due_jobs() {
  // Pop every running job whose actual end is due. Iterate because several
  // jobs can end at the same instant.
  for (std::size_t i = 0; i < running_.size();) {
    if (running_[i].actual_end <= now_ + 1e-9) {
      const Running& r = running_[i];
      completed_.push_back(
          ScheduledJob{r.id, r.submit, r.start, r.actual_end});
      free_nodes_ += r.nodes;
      running_[i] = running_.back();
      running_.pop_back();
    } else {
      ++i;
    }
  }
}

void ClusterSimulator::start_job(const SimJob& job, std::size_t queue_pos) {
  free_nodes_ -= job.nodes;
  Running r;
  r.id = job.id;
  r.nodes = job.nodes;
  r.start = now_;
  r.submit = job.submit_time;
  r.actual_end = now_ + std::max(job.runtime, kMinRemaining);
  r.believed_end = now_ + std::max(job.believed_runtime, kMinRemaining);
  running_.push_back(r);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(queue_pos));
}

void ClusterSimulator::try_start_jobs() {
  // FCFS: start queue-head jobs while they fit.
  while (!queue_.empty() && queue_.front().nodes <= free_nodes_) {
    if (queue_.front().nodes > options_.total_nodes)
      throw std::invalid_argument(
          "ClusterSimulator: job larger than the machine");
    start_job(queue_.front(), 0);
  }
  if (queue_.empty() || !options_.easy_backfill) return;
  if (queue_.front().nodes > options_.total_nodes)
    throw std::invalid_argument(
        "ClusterSimulator: job larger than the machine");

  // EASY backfill. Compute the shadow time: the earliest instant the
  // blocked head job could start, believing the scheduler's runtime
  // estimates, and the nodes left over at that instant.
  std::vector<std::pair<double, std::uint32_t>> releases;  // (believed_end, nodes)
  releases.reserve(running_.size());
  for (const auto& r : running_)
    releases.emplace_back(std::max(r.believed_end, now_), r.nodes);
  std::sort(releases.begin(), releases.end());

  const std::uint32_t head_nodes = queue_.front().nodes;
  std::uint32_t available = free_nodes_;
  double shadow_time = now_;
  for (const auto& [end, nodes] : releases) {
    if (available >= head_nodes) break;
    available += nodes;
    shadow_time = end;
  }
  // Nodes that can be used by backfilled jobs without delaying the head's
  // reservation: the surplus at shadow time.
  const std::uint32_t extra_nodes =
      available >= head_nodes ? available - head_nodes : 0;

  for (std::size_t i = 1; i < queue_.size();) {
    const SimJob& candidate = queue_[i];
    if (candidate.nodes <= free_nodes_) {
      const double believed_end =
          now_ + std::max(candidate.believed_runtime, kMinRemaining);
      const bool fits_before_shadow = believed_end <= shadow_time + 1e-9;
      const bool fits_in_extra = candidate.nodes <= extra_nodes;
      if (fits_before_shadow || fits_in_extra) {
        start_job(candidate, i);
        continue;  // same index now holds the next candidate
      }
    }
    ++i;
  }
}

void ClusterSimulator::advance_to(double time) {
  if (time < now_) return;
  for (;;) {
    const double next = next_completion_time();
    if (next > time) break;
    now_ = next;
    complete_due_jobs();
    try_start_jobs();
  }
  now_ = time;
}

void ClusterSimulator::submit(const SimJob& job) {
  if (job.submit_time < now_)
    throw std::invalid_argument(
        "ClusterSimulator::submit: out-of-order submission");
  advance_to(job.submit_time);
  queue_.push_back(job);
  try_start_jobs();
}

void ClusterSimulator::drain() {
  while (!idle()) {
    const double next = next_completion_time();
    if (next == kInfinity) {
      // Queue non-empty but nothing running: should be impossible unless a
      // job is larger than the machine, which submit()/try_start throw on.
      throw std::logic_error("ClusterSimulator::drain: deadlocked queue");
    }
    advance_to(next);
  }
}

std::vector<ScheduledJob> ClusterSimulator::run(
    const std::vector<SimJob>& jobs) {
  for (const auto& job : jobs) submit(job);
  drain();
  return completed_;
}

double ClusterSimulator::snapshot_turnaround(
    std::uint64_t job_id,
    const std::function<double(std::uint64_t)>& predicted) const {
  ClusterSimulator clone = *this;
  clone.completed_.clear();

  // Replace runtimes of running jobs with prediction-derived remainders.
  for (auto& r : clone.running_) {
    const double elapsed = clone.now_ - r.start;
    const double remaining =
        std::max(kMinRemaining, predicted(r.id) - elapsed);
    r.actual_end = clone.now_ + remaining;
    r.believed_end = r.actual_end;
  }
  // Replace runtimes of queued jobs with predictions outright.
  bool found = false;
  for (auto& q : clone.queue_) {
    const double p = std::max(kMinRemaining, predicted(q.id));
    q.runtime = p;
    q.believed_runtime = p;
    if (q.id == job_id) found = true;
  }
  for (const auto& r : clone.running_)
    if (r.id == job_id) found = true;
  if (!found) return -1.0;

  // Replay the clone until the target job completes.
  double submit_time = -1.0, end_time = -1.0;
  while (!clone.idle()) {
    const double next = clone.next_completion_time();
    if (next == kInfinity) break;
    clone.advance_to(next);
    for (const auto& done : clone.completed_) {
      if (done.id == job_id) {
        submit_time = done.submit_time;
        end_time = done.end_time;
      }
    }
    if (end_time >= 0.0) break;
  }
  return end_time >= 0.0 ? end_time - submit_time : -1.0;
}

}  // namespace prionn::sched
