// IO-aware scheduling — the application PRIONN's predictions enable
// (sections 1 and 4; mechanism after Herbein et al., HPDC'16). The
// scheduler tracks a parallel-filesystem bandwidth budget alongside the
// node budget: a job only starts when both its nodes AND its *predicted*
// IO bandwidth fit. Decisions use predictions; outcomes (the realised
// aggregate IO) use the actual bandwidths, so the benefit of accurate
// predictions is measurable: fewer minutes of filesystem over-subscription
// at a bounded cost in wait time.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sched/sim_job.hpp"

namespace prionn::sched {

struct IoSimJob {
  SimJob base;
  double predicted_bandwidth = 0.0;  // bytes/s, drives admission
  double actual_bandwidth = 0.0;     // bytes/s, drives the outcome metrics
};

struct IoAwareOptions {
  std::uint32_t total_nodes = 1296;
  /// Aggregate filesystem budget used for admission (0 disables
  /// IO-awareness, reducing the policy to FCFS + EASY backfill).
  double io_cap = 0.0;
  bool easy_backfill = true;
  /// Upper bound on how long IO admission may hold back the queue head
  /// before it is started anyway (avoids starvation when one job's
  /// predicted IO alone exceeds the cap). Seconds.
  double max_io_hold = 4.0 * 3600.0;
};

struct IoAwareResult {
  std::vector<ScheduledJob> schedule;  // completion order
  /// Realised aggregate IO per minute bucket (actual bandwidths).
  std::vector<double> actual_io_series;
  double mean_wait_seconds = 0.0;
  /// Bounded slowdown: (wait + runtime) / max(runtime, 60 s), averaged.
  double mean_slowdown = 0.0;
  /// Minutes whose realised aggregate IO exceeded the cap.
  std::size_t oversubscribed_minutes = 0;
};

class IoAwareSimulator {
 public:
  explicit IoAwareSimulator(IoAwareOptions options = {});

  /// Simulate a full trace (sorted by submit time).
  IoAwareResult run(const std::vector<IoSimJob>& jobs);

 private:
  struct Running {
    std::uint64_t id = 0;
    std::uint32_t nodes = 1;
    double predicted_bw = 0.0;
    double actual_bw = 0.0;
    double start = 0.0;
    double submit = 0.0;
    double actual_end = 0.0;
    double believed_end = 0.0;
  };

  bool io_fits(double candidate_bw) const noexcept;
  void try_start_jobs();
  void start_job(std::size_t queue_pos);
  double next_completion() const noexcept;
  void advance_to(double time);

  IoAwareOptions options_;
  double now_ = 0.0;
  std::uint32_t free_nodes_;
  double predicted_io_in_use_ = 0.0;
  std::vector<Running> running_;
  std::deque<IoSimJob> queue_;
  double head_waiting_since_ = -1.0;
  std::vector<ScheduledJob> completed_;
};

/// Convenience: realised IO series + over-cap minutes for a schedule.
std::size_t count_over_cap_minutes(const std::vector<double>& series,
                                   double cap) noexcept;

}  // namespace prionn::sched
