// Per-minute aggregate system IO bandwidth (section 4.3): each running
// job contributes its (predicted or actual) read+write bandwidth to every
// minute of its (predicted or actual) execution interval. The resulting
// series is what the burst detector thresholds.
#pragma once

#include <cstddef>
#include <vector>

namespace prionn::sched {

/// One job's contribution to the system IO timeline.
struct IoInterval {
  double start_time = 0.0;  // seconds
  double end_time = 0.0;    // seconds
  double bandwidth = 0.0;   // bytes/s while running (read + write)
};

class IoTimeline {
 public:
  /// Bucket granularity in seconds (the paper works in minutes).
  explicit IoTimeline(double bucket_seconds = 60.0);

  void add(const IoInterval& interval);
  void add(const std::vector<IoInterval>& intervals);

  /// Aggregate bandwidth per bucket; index 0 starts at t = 0.
  const std::vector<double>& series() const noexcept { return buckets_; }
  double bucket_seconds() const noexcept { return bucket_seconds_; }
  std::size_t buckets() const noexcept { return buckets_.size(); }

  /// Trim/extend to exactly `n` buckets (aligning predicted and actual
  /// series before scoring).
  void resize(std::size_t n) { buckets_.resize(n, 0.0); }

 private:
  double bucket_seconds_;
  std::vector<double> buckets_;
};

}  // namespace prionn::sched
