// IO-burst detection and windowed scoring (section 4.3). A burst is any
// timeline bucket whose aggregate bandwidth exceeds mean + k standard
// deviations of the *actual* system IO distribution (the paper uses k = 1,
// marked at 1.35e9 bytes/s on Cab). Predicted bursts are matched to actual
// bursts within a tolerance window, yielding the sensitivity/precision
// curves of Figs. 13 and 15.
#pragma once

#include <cstddef>
#include <vector>

namespace prionn::sched {

struct BurstDetectorOptions {
  double sigma_multiplier = 1.0;  // threshold = mean + k * std
};

class BurstDetector {
 public:
  explicit BurstDetector(BurstDetectorOptions options = {});

  /// Compute the threshold from a reference series (the actual system IO).
  double threshold_of(const std::vector<double>& series) const;

  /// Flag buckets above the threshold.
  std::vector<bool> detect(const std::vector<double>& series,
                           double threshold) const;

 private:
  BurstDetectorOptions options_;
};

struct BurstScore {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  double sensitivity() const noexcept {
    const auto denom = true_positives + false_negatives;
    return denom ? static_cast<double>(true_positives) /
                       static_cast<double>(denom)
                 : 0.0;
  }
  double precision() const noexcept {
    const auto denom = true_positives + false_positives;
    return denom ? static_cast<double>(true_positives) /
                       static_cast<double>(denom)
                 : 0.0;
  }
};

/// Windowed matching: an actual burst at bucket i is a true positive if a
/// predicted burst exists within +-half_window buckets; a predicted burst
/// with no actual burst in its window is a false positive. For the paper's
/// "5 minute window" (1-minute buckets) pass half_window = 2.
BurstScore score_bursts(const std::vector<bool>& actual,
                        const std::vector<bool>& predicted,
                        std::size_t half_window);

}  // namespace prionn::sched
