// Event-driven HPC cluster simulator — the stand-in for the Flux resource
// manager simulator of the paper's section 4. FCFS with EASY backfill:
// scheduling decisions (reservations, backfill feasibility) use each job's
// *believed* runtime, while completions use the actual runtime, so the
// effect of runtime-prediction quality on the schedule is faithfully
// modelled.
//
// The simulator is copyable by design: the paper's turnaround-time
// predictor snapshots the live system state on every submission, replaces
// the runtimes of queued/running jobs with predictions, and replays the
// copy forward (section 4.2). snapshot_turnaround() implements exactly
// that.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sched/sim_job.hpp"

namespace prionn::sched {

struct ClusterOptions {
  std::uint32_t total_nodes = 1296;  // Cab's node count
  bool easy_backfill = true;
};

class ClusterSimulator {
 public:
  explicit ClusterSimulator(ClusterOptions options = {});

  /// --- Incremental interface ---------------------------------------
  double now() const noexcept { return now_; }
  std::uint32_t free_nodes() const noexcept { return free_nodes_; }
  std::size_t running_count() const noexcept { return running_.size(); }
  std::size_t queued_count() const noexcept { return queue_.size(); }
  bool idle() const noexcept { return running_.empty() && queue_.empty(); }

  /// Advance simulated time, processing completions and starts.
  void advance_to(double time);

  /// Submit a job; jobs must arrive in non-decreasing submit order. The
  /// simulator advances to the submit time first.
  void submit(const SimJob& job);

  /// Run until every submitted job has completed.
  void drain();

  /// Completed jobs so far (in completion order).
  const std::vector<ScheduledJob>& completed() const noexcept {
    return completed_;
  }

  /// --- Batch interface ----------------------------------------------
  /// Simulate a whole trace (must be sorted by submit time); returns the
  /// schedule in completion order.
  std::vector<ScheduledJob> run(const std::vector<SimJob>& jobs);

  /// --- Snapshot turnaround prediction (paper section 4.2) -----------
  /// Clone the current state, override the runtime of every queued and
  /// running job with `predicted(id)` (remaining time for running jobs is
  /// prediction minus elapsed, floored at one second), then replay the
  /// clone until `job_id` completes. Returns predicted completion minus
  /// the job's submit time, or a negative value if the job is unknown.
  double snapshot_turnaround(
      std::uint64_t job_id,
      const std::function<double(std::uint64_t)>& predicted) const;

 private:
  struct Running {
    std::uint64_t id = 0;
    std::uint32_t nodes = 1;
    double start = 0.0;
    double submit = 0.0;
    double actual_end = 0.0;    // drives the completion event
    double believed_end = 0.0;  // drives reservations/backfill
  };

  void try_start_jobs();
  void start_job(const SimJob& job, std::size_t queue_pos);
  double next_completion_time() const noexcept;
  void complete_due_jobs();

  ClusterOptions options_;
  double now_ = 0.0;
  std::uint32_t free_nodes_;
  std::vector<Running> running_;
  std::deque<SimJob> queue_;
  std::vector<ScheduledJob> completed_;
};

}  // namespace prionn::sched
