#include "sched/burst.hpp"

#include <algorithm>
#include <span>

#include "util/stats.hpp"

namespace prionn::sched {

BurstDetector::BurstDetector(BurstDetectorOptions options)
    : options_(options) {}

double BurstDetector::threshold_of(const std::vector<double>& series) const {
  const std::span<const double> s(series);
  return util::mean(s) + options_.sigma_multiplier * util::stddev(s);
}

std::vector<bool> BurstDetector::detect(const std::vector<double>& series,
                                        double threshold) const {
  std::vector<bool> bursts(series.size());
  for (std::size_t i = 0; i < series.size(); ++i)
    bursts[i] = series[i] > threshold;
  return bursts;
}

BurstScore score_bursts(const std::vector<bool>& actual,
                        const std::vector<bool>& predicted,
                        std::size_t half_window) {
  const std::size_t n = std::min(actual.size(), predicted.size());
  const auto any_in_window = [&](const std::vector<bool>& xs,
                                 std::size_t center) {
    const std::size_t lo = center >= half_window ? center - half_window : 0;
    const std::size_t hi = std::min(n, center + half_window + 1);
    for (std::size_t i = lo; i < hi; ++i)
      if (xs[i]) return true;
    return false;
  };

  BurstScore score;
  for (std::size_t i = 0; i < n; ++i) {
    if (actual[i]) {
      if (any_in_window(predicted, i))
        ++score.true_positives;
      else
        ++score.false_negatives;
    }
    if (predicted[i] && !any_in_window(actual, i)) ++score.false_positives;
  }
  return score;
}

}  // namespace prionn::sched
