// The scheduler simulator's view of a job: what the batch system knows
// (submit time, node count, a *believed* runtime — user request or a
// PRIONN prediction) plus the actual runtime that drives completions.
#pragma once

#include <cstdint>

namespace prionn::sched {

struct SimJob {
  std::uint64_t id = 0;
  double submit_time = 0.0;       // seconds
  std::uint32_t nodes = 1;
  double runtime = 0.0;           // actual runtime, seconds
  double believed_runtime = 0.0;  // estimate used for scheduling decisions
};

/// The simulator's output for one job.
struct ScheduledJob {
  std::uint64_t id = 0;
  double submit_time = 0.0;
  double start_time = 0.0;
  double end_time = 0.0;

  double turnaround() const noexcept { return end_time - submit_time; }
  double wait() const noexcept { return start_time - submit_time; }
};

}  // namespace prionn::sched
