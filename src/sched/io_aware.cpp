#include "sched/io_aware.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/obs.hpp"
#include "sched/io_timeline.hpp"

namespace prionn::sched {

namespace {
constexpr double kInfinity = std::numeric_limits<double>::infinity();
constexpr double kMinRemaining = 1.0;
}  // namespace

IoAwareSimulator::IoAwareSimulator(IoAwareOptions options)
    : options_(options), free_nodes_(options.total_nodes) {
  if (options_.total_nodes == 0)
    throw std::invalid_argument("IoAwareSimulator: need at least one node");
  if (options_.io_cap < 0.0)
    throw std::invalid_argument("IoAwareSimulator: io_cap must be >= 0");
}

bool IoAwareSimulator::io_fits(double candidate_bw) const noexcept {
  if (options_.io_cap <= 0.0) return true;
  return predicted_io_in_use_ + candidate_bw <= options_.io_cap;
}

double IoAwareSimulator::next_completion() const noexcept {
  double t = kInfinity;
  for (const auto& r : running_) t = std::min(t, r.actual_end);
  return t;
}

void IoAwareSimulator::start_job(std::size_t queue_pos) {
  const IoSimJob& job = queue_[queue_pos];
  free_nodes_ -= job.base.nodes;
  predicted_io_in_use_ += job.predicted_bandwidth;
  PRIONN_OBS_INC("prionn_sched_jobs_started_total",
                 "jobs dispatched by the IO-aware scheduler");
  PRIONN_OBS_GAUGE_SET("prionn_sched_predicted_io_in_use",
                       "predicted bandwidth of the running set",
                       predicted_io_in_use_);
  Running r;
  r.id = job.base.id;
  r.nodes = job.base.nodes;
  r.predicted_bw = job.predicted_bandwidth;
  r.actual_bw = job.actual_bandwidth;
  r.start = now_;
  r.submit = job.base.submit_time;
  r.actual_end = now_ + std::max(job.base.runtime, kMinRemaining);
  r.believed_end = now_ + std::max(job.base.believed_runtime, kMinRemaining);
  running_.push_back(r);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(queue_pos));
  if (queue_pos == 0) head_waiting_since_ = -1.0;
}

void IoAwareSimulator::try_start_jobs() {
  // FCFS with an IO-admission gate on the head; a head blocked purely on
  // IO (nodes available) starts anyway after max_io_hold to bound
  // starvation.
  for (;;) {
    if (queue_.empty()) return;
    const IoSimJob& head = queue_.front();
    if (head.base.nodes > options_.total_nodes)
      throw std::invalid_argument(
          "IoAwareSimulator: job larger than the machine");
    if (head.base.nodes > free_nodes_) break;
    if (!io_fits(head.predicted_bandwidth)) {
      if (head_waiting_since_ < 0.0) {
        head_waiting_since_ = now_;
        PRIONN_OBS_INC("prionn_sched_io_holds_total",
                       "queue heads held back by the IO-admission gate");
      }
      if (now_ - head_waiting_since_ < options_.max_io_hold) break;
      // Starvation guard: admit despite the IO budget.
    }
    start_job(0);
  }
  if (queue_.empty() || !options_.easy_backfill) return;

  // EASY backfill with the same IO gate on candidates. Shadow time /
  // extra nodes follow the node dimension only: IO head-blocking is
  // bounded by max_io_hold rather than reserved against.
  std::vector<std::pair<double, std::uint32_t>> releases;
  releases.reserve(running_.size());
  for (const auto& r : running_)
    releases.emplace_back(std::max(r.believed_end, now_), r.nodes);
  std::sort(releases.begin(), releases.end());

  const std::uint32_t head_nodes = queue_.front().base.nodes;
  std::uint32_t available = free_nodes_;
  double shadow_time = now_;
  for (const auto& [end, nodes] : releases) {
    if (available >= head_nodes) break;
    available += nodes;
    shadow_time = end;
  }
  const std::uint32_t extra_nodes =
      available >= head_nodes ? available - head_nodes : 0;

  for (std::size_t i = 1; i < queue_.size();) {
    const IoSimJob& candidate = queue_[i];
    if (candidate.base.nodes <= free_nodes_ &&
        io_fits(candidate.predicted_bandwidth)) {
      const double believed_end =
          now_ + std::max(candidate.base.believed_runtime, kMinRemaining);
      const bool fits_before_shadow = believed_end <= shadow_time + 1e-9;
      const bool fits_in_extra = candidate.base.nodes <= extra_nodes;
      if (fits_before_shadow || fits_in_extra) {
        start_job(i);
        continue;
      }
    }
    ++i;
  }
}

void IoAwareSimulator::advance_to(double time) {
  if (time < now_) return;
  for (;;) {
    // Two event sources: job completions, and the expiry of the head
    // job's IO hold (which must fire even when nothing is running).
    double next = next_completion();
    if (head_waiting_since_ >= 0.0) {
      const double release = head_waiting_since_ + options_.max_io_hold;
      if (release > now_) next = std::min(next, release);
    }
    if (next > time) break;
    now_ = next;
    for (std::size_t i = 0; i < running_.size();) {
      if (running_[i].actual_end <= now_ + 1e-9) {
        const Running& r = running_[i];
        completed_.push_back(
            ScheduledJob{r.id, r.submit, r.start, r.actual_end});
        free_nodes_ += r.nodes;
        predicted_io_in_use_ -= r.predicted_bw;
        PRIONN_OBS_GAUGE_SET("prionn_sched_predicted_io_in_use",
                             "predicted bandwidth of the running set",
                             predicted_io_in_use_);
        running_[i] = running_.back();
        running_.pop_back();
      } else {
        ++i;
      }
    }
    try_start_jobs();
  }
  now_ = time;
}

IoAwareResult IoAwareSimulator::run(const std::vector<IoSimJob>& jobs) {
  PRIONN_OBS_SPAN("sched.run");
  for (const auto& job : jobs) {
    if (job.base.submit_time < now_)
      throw std::invalid_argument("IoAwareSimulator: out-of-order submit");
    advance_to(job.base.submit_time);
    queue_.push_back(job);
    try_start_jobs();
  }
  while (!running_.empty() || !queue_.empty()) {
    double next = next_completion();
    if (head_waiting_since_ >= 0.0)
      next = std::min(next, head_waiting_since_ + options_.max_io_hold);
    if (next == kInfinity)
      throw std::logic_error("IoAwareSimulator: deadlocked queue");
    advance_to(next);
  }

  IoAwareResult result;
  result.schedule = completed_;

  // Outcome metrics over the realised schedule.
  IoTimeline timeline(60.0);
  double wait_sum = 0.0, slowdown_sum = 0.0;
  for (const auto& s : completed_) {
    wait_sum += s.wait();
    const double runtime = s.end_time - s.start_time;
    slowdown_sum += (s.wait() + runtime) / std::max(runtime, 60.0);
  }
  // Map ids back to actual bandwidths for the realised IO series.
  std::vector<double> actual_bw(jobs.size(), 0.0);
  for (const auto& j : jobs)
    if (j.base.id < actual_bw.size()) actual_bw[j.base.id] = j.actual_bandwidth;
  for (const auto& s : completed_) {
    const double bw = s.id < actual_bw.size() ? actual_bw[s.id] : 0.0;
    timeline.add({s.start_time, s.end_time, bw});
  }
  result.actual_io_series = timeline.series();
  const auto n = static_cast<double>(std::max<std::size_t>(1, completed_.size()));
  result.mean_wait_seconds = wait_sum / n;
  result.mean_slowdown = slowdown_sum / n;
  result.oversubscribed_minutes =
      options_.io_cap > 0.0
          ? count_over_cap_minutes(result.actual_io_series, options_.io_cap)
          : 0;
  return result;
}

std::size_t count_over_cap_minutes(const std::vector<double>& series,
                                   double cap) noexcept {
  std::size_t count = 0;
  for (const double v : series)
    if (v > cap) ++count;
  return count;
}

}  // namespace prionn::sched
