#include "nn/serialize.hpp"

#include <cstdint>
#include <functional>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <string>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/network.hpp"
#include "nn/pool.hpp"

namespace prionn::nn {

namespace {

constexpr std::uint32_t kMagic = 0x50524e4e;  // "PRNN"

using Loader = std::function<std::unique_ptr<Layer>(std::istream&)>;

const std::map<std::string, Loader>& loaders() {
  static const std::map<std::string, Loader> table = {
      {"batchnorm", BatchNorm::load},
      {"dense", Dense::load},       {"conv2d", Conv2d::load},
      {"conv1d", Conv1d::load},     {"maxpool2d", MaxPool2d::load},
      {"maxpool1d", MaxPool1d::load}, {"relu", Relu::load},
      {"tanh", Tanh::load},         {"sigmoid", Sigmoid::load},
      {"flatten", Flatten::load},   {"dropout", Dropout::load},
  };
  return table;
}

void write_string(std::ostream& os, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  os.write(reinterpret_cast<const char*>(&len), sizeof(len));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  std::uint32_t len = 0;
  is.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!is || len > 256)
    throw std::runtime_error("load_network: corrupt layer tag");
  std::string s(len, '\0');
  is.read(s.data(), len);
  if (!is) throw std::runtime_error("load_network: truncated layer tag");
  return s;
}

}  // namespace

void save_network(std::ostream& os, const Network& net) {
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const auto depth = static_cast<std::uint32_t>(net.depth());
  os.write(reinterpret_cast<const char*>(&depth), sizeof(depth));
  // save() below needs non-const layer access only for parameters(), which
  // is conceptually const; Network exposes layer() non-const, so cast.
  auto& mutable_net = const_cast<Network&>(net);
  for (std::size_t i = 0; i < net.depth(); ++i) {
    Layer& l = mutable_net.layer(i);
    write_string(os, l.kind());
    l.save(os);
  }
}

Network load_network(std::istream& is) {
  std::uint32_t magic = 0, depth = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  is.read(reinterpret_cast<char*>(&depth), sizeof(depth));
  if (!is || magic != kMagic)
    throw std::runtime_error("load_network: bad magic");
  // A corrupt depth would otherwise drive the loader through arbitrary
  // garbage before it trips on a layer tag; no real model comes close.
  if (depth > 1024)
    throw std::runtime_error("load_network: implausible layer count " +
                             std::to_string(depth));
  Network net;
  for (std::uint32_t i = 0; i < depth; ++i) {
    const std::string kind = read_string(is);
    const auto it = loaders().find(kind);
    if (it == loaders().end())
      throw std::runtime_error("load_network: unknown layer kind '" + kind +
                               "'");
    net.add(it->second(is));
  }
  return net;
}

}  // namespace prionn::nn
