// Inverted dropout: active only in training mode; inference is identity,
// so warm-started online retraining (paper section 2.3) and prediction can
// share one network object.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace prionn::nn {

class Dropout : public Layer {
 public:
  explicit Dropout(double rate, std::uint64_t seed = 0x5eedu);

  std::string kind() const override { return "dropout"; }
  Shape output_shape(const Shape& input) const override { return input; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void save(std::ostream& os) const override;
  static std::unique_ptr<Layer> load(std::istream& is);

  double rate() const noexcept { return rate_; }

 private:
  double rate_;
  util::Rng rng_;
  Tensor mask_;
  bool trained_forward_ = false;
};

}  // namespace prionn::nn
