// First-order optimisers. Optimiser state (momentum / Adam moments) is
// keyed by parameter identity, so the same optimiser object can keep
// driving a network across the paper's warm-start retraining events.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.hpp"

namespace prionn::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update given parallel vectors of parameters and gradients.
  virtual void step(const std::vector<tensor::Tensor*>& params,
                    const std::vector<tensor::Tensor*>& grads) = 0;
  virtual double learning_rate() const noexcept = 0;
  virtual void set_learning_rate(double lr) noexcept = 0;
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0);
  void step(const std::vector<tensor::Tensor*>& params,
            const std::vector<tensor::Tensor*>& grads) override;
  double learning_rate() const noexcept override { return lr_; }
  void set_learning_rate(double lr) noexcept override { lr_ = lr; }

 private:
  double lr_, momentum_, weight_decay_;
  std::unordered_map<const tensor::Tensor*, tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0);
  void step(const std::vector<tensor::Tensor*>& params,
            const std::vector<tensor::Tensor*>& grads) override;
  double learning_rate() const noexcept override { return lr_; }
  void set_learning_rate(double lr) noexcept override { lr_ = lr; }

  /// Persist / restore the per-parameter moments in the order of `params`
  /// (Network::parameters() order is deterministic, so a checkpointed
  /// warm-start retrain resumes bit-exactly). Hyper-parameters are not
  /// serialised; construct the Adam with the same options first.
  void save(std::ostream& os,
            const std::vector<tensor::Tensor*>& params) const;
  void load(std::istream& is, const std::vector<tensor::Tensor*>& params);

 private:
  struct Moments {
    tensor::Tensor m, v;
    std::size_t t = 0;
  };
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  std::unordered_map<const tensor::Tensor*, Moments> moments_;
};

}  // namespace prionn::nn
