// Layer interface of the mini deep-learning framework that stands in for
// the paper's Python DL stack. Layers process whole mini-batches: the
// leading tensor dimension is always the batch (N, ...). backward() must be
// called after forward() on the same batch and accumulates parameter
// gradients (callers zero them between optimiser steps).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace prionn::nn {

using tensor::Shape;
using tensor::Tensor;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Type tag used by serialisation ("dense", "conv2d", ...).
  virtual std::string kind() const = 0;

  /// Shape of one output sample given one input sample's shape (no batch
  /// dimension). Throws if the input shape is incompatible.
  virtual Shape output_shape(const Shape& input) const = 0;

  /// Forward pass over a batch; `training` toggles dropout-style behaviour.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Backward pass: gradient w.r.t. this layer's input, given gradient
  /// w.r.t. its output. Accumulates into parameter gradients.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters and their gradient buffers (parallel vectors).
  virtual std::vector<Tensor*> parameters() { return {}; }
  virtual std::vector<Tensor*> gradients() { return {}; }

  void zero_gradients() {
    for (Tensor* g : gradients()) g->fill(0.0f);
  }

  /// Serialise parameters + hyper-parameters (shape config).
  virtual void save(std::ostream& os) const = 0;

  /// Number of trainable scalars, for model summaries.
  std::size_t parameter_count() {
    std::size_t n = 0;
    for (Tensor* p : parameters()) n += p->size();
    return n;
  }
};

}  // namespace prionn::nn
