// Network (de)serialisation: a tagged sequence of layers. Used to
// checkpoint PRIONN models between online retraining events and in tests.
#pragma once

#include <iosfwd>

namespace prionn::nn {

class Network;

void save_network(std::ostream& os, const Network& net);
Network load_network(std::istream& is);

}  // namespace prionn::nn
