// Flatten: reshapes (N, ...) to (N, prod(...)). The bridge between the
// convolutional stack and the fully connected head.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace prionn::nn {

class Flatten : public Layer {
 public:
  std::string kind() const override { return "flatten"; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void save(std::ostream& os) const override;
  static std::unique_ptr<Layer> load(std::istream& is);

 private:
  Shape input_shape_;
};

}  // namespace prionn::nn
