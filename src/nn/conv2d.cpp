#include "nn/conv2d.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "util/check.hpp"

namespace prionn::nn {

namespace {
// Lowered-patch buffers are processed in sub-batches bounded to this many
// floats so the one-hot transform (128 input channels) cannot blow memory.
constexpr std::size_t kMaxColsFloats = 16u << 20;  // 64 MiB
}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_h, std::size_t kernel_w,
               std::size_t stride, std::size_t pad, util::Rng& rng)
    : weight_({out_channels, in_channels, kernel_h, kernel_w}),
      bias_({out_channels}),
      grad_weight_(weight_.shape()),
      grad_bias_(bias_.shape()),
      stride_(stride),
      pad_(pad) {
  he_init(weight_, in_channels * kernel_h * kernel_w, rng);
}

Conv2d::Conv2d(Tensor weight, Tensor bias, std::size_t stride,
               std::size_t pad)
    : weight_(std::move(weight)),
      bias_(std::move(bias)),
      grad_weight_(weight_.shape()),
      grad_bias_(bias_.shape()),
      stride_(stride),
      pad_(pad) {
  if (weight_.rank() != 4 || bias_.rank() != 1 ||
      bias_.dim(0) != weight_.dim(0))
    throw std::invalid_argument("Conv2d: inconsistent weight/bias shapes");
}

tensor::Conv2dGeom Conv2d::geometry(const Shape& sample) const {
  if (sample.size() != 3 || sample[0] != in_channels())
    throw std::invalid_argument(
        "Conv2d: expected (C, H, W) sample with C = " +
        std::to_string(in_channels()));
  tensor::Conv2dGeom g;
  g.channels = sample[0];
  g.height = sample[1];
  g.width = sample[2];
  g.kernel_h = weight_.dim(2);
  g.kernel_w = weight_.dim(3);
  g.stride_h = g.stride_w = stride_;
  g.pad_h = g.pad_w = pad_;
  if (g.height + 2 * g.pad_h < g.kernel_h ||
      g.width + 2 * g.pad_w < g.kernel_w)
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  return g;
}

Shape Conv2d::output_shape(const Shape& input) const {
  const auto g = geometry(input);
  return {out_channels(), g.out_h(), g.out_w()};
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  const std::size_t batch = input.dim(0);
  geom_ = geometry({input.dim(1), input.dim(2), input.dim(3)});
  input_ = input;

  const std::size_t pr = geom_.patch_rows();
  const std::size_t pixels = geom_.patch_cols();
  const std::size_t oc = out_channels();
  const std::size_t in_stride = geom_.channels * geom_.height * geom_.width;
  Tensor out({batch, oc, geom_.out_h(), geom_.out_w()});

  // Lower a sub-batch of images into one wide patch matrix and run a
  // single GEMM per sub-batch: cols is (pr x chunk*pixels) with each
  // sample occupying a contiguous column block, and the weight matrix
  // (oc x pr) multiplies it in one call. This amortises the GEMM across
  // the whole batch instead of issuing tiny per-sample multiplies.
  const std::size_t chunk =
      std::clamp<std::size_t>(kMaxColsFloats / (pr * pixels), 1, batch);
  std::vector<float> cols(pr * chunk * pixels);
  std::vector<float> gemm_out(oc * chunk * pixels);
  for (std::size_t base = 0; base < batch; base += chunk) {
    const std::size_t n = std::min(chunk, batch - base);
    const std::size_t wide = n * pixels;
    for (std::size_t s = 0; s < n; ++s) {
      // Write sample s's patches into its column block; rows are strided
      // by the full sub-batch width.
      tensor::im2col_strided(geom_, input.data() + (base + s) * in_stride,
                             cols.data() + s * pixels, wide);
    }
    tensor::gemm(oc, pr, wide, 1.0f, weight_.data(), cols.data(), 0.0f,
                 gemm_out.data());
    // Scatter (oc x n*pixels) back to (n, oc, pixels) layout with bias.
    for (std::size_t c = 0; c < oc; ++c) {
      const float b = bias_[c];
      const float* src = gemm_out.data() + c * wide;
      for (std::size_t s = 0; s < n; ++s) {
        float* dst = out.data() + ((base + s) * oc + c) * pixels;
        const float* block = src + s * pixels;
        for (std::size_t p = 0; p < pixels; ++p) dst[p] = block[p] + b;
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  PRIONN_CHECK(!input_.empty()) << "Conv2d::backward: forward() first";
  PRIONN_CHECK(grad_output.rank() == 4 &&
               grad_output.dim(0) == input_.dim(0) &&
               grad_output.dim(1) == out_channels() &&
               grad_output.dim(2) == geom_.out_h() &&
               grad_output.dim(3) == geom_.out_w())
      << "Conv2d::backward: gradient shape "
      << tensor::shape_to_string(grad_output.shape())
      << " does not match forward geometry (" << input_.dim(0) << ", "
      << out_channels() << ", " << geom_.out_h() << ", " << geom_.out_w()
      << ")";
  const std::size_t batch = grad_output.dim(0);
  const std::size_t pr = geom_.patch_rows();
  const std::size_t pixels = geom_.patch_cols();
  const std::size_t oc = out_channels();
  const std::size_t in_stride = geom_.channels * geom_.height * geom_.width;

  Tensor grad_input(input_.shape());
  const std::size_t chunk =
      std::clamp<std::size_t>(kMaxColsFloats / (pr * pixels), 1, batch);
  std::vector<float> cols(pr * chunk * pixels);
  std::vector<float> dy(oc * chunk * pixels);
  std::vector<float> grad_cols(pr * chunk * pixels);

  for (std::size_t base = 0; base < batch; base += chunk) {
    const std::size_t n = std::min(chunk, batch - base);
    const std::size_t wide = n * pixels;
    for (std::size_t s = 0; s < n; ++s) {
      tensor::im2col_strided(geom_, input_.data() + (base + s) * in_stride,
                             cols.data() + s * pixels, wide);
      // Gather dY from (n, oc, pixels) into (oc x wide).
      for (std::size_t c = 0; c < oc; ++c)
        std::copy_n(grad_output.data() + ((base + s) * oc + c) * pixels,
                    pixels, dy.data() + c * wide + s * pixels);
    }
    // dW += dY (oc x wide) * cols^T (wide x pr)
    tensor::gemm_bt(oc, wide, pr, 1.0f, dy.data(), cols.data(), 1.0f,
                    grad_weight_.data());
    for (std::size_t c = 0; c < oc; ++c) {
      const float* lane = dy.data() + c * wide;
      float acc = 0.0f;
      for (std::size_t p = 0; p < wide; ++p) acc += lane[p];
      grad_bias_[c] += acc;
    }
    // d(cols) = W^T (pr x oc) * dY (oc x wide)
    tensor::gemm_at(pr, oc, wide, 1.0f, weight_.data(), dy.data(), 0.0f,
                    grad_cols.data());
    for (std::size_t s = 0; s < n; ++s)
      tensor::col2im_strided(geom_, grad_cols.data() + s * pixels, wide,
                             grad_input.data() + (base + s) * in_stride);
  }
  return grad_input;
}

void Conv2d::save(std::ostream& os) const {
  weight_.save(os);
  bias_.save(os);
  const std::uint64_t stride = stride_, pad = pad_;
  os.write(reinterpret_cast<const char*>(&stride), sizeof(stride));
  os.write(reinterpret_cast<const char*>(&pad), sizeof(pad));
}

std::unique_ptr<Layer> Conv2d::load(std::istream& is) {
  Tensor w = Tensor::load(is);
  Tensor b = Tensor::load(is);
  std::uint64_t stride = 0, pad = 0;
  is.read(reinterpret_cast<char*>(&stride), sizeof(stride));
  is.read(reinterpret_cast<char*>(&pad), sizeof(pad));
  if (!is) throw std::runtime_error("Conv2d::load: truncated stream");
  return std::make_unique<Conv2d>(std::move(w), std::move(b),
                                  static_cast<std::size_t>(stride),
                                  static_cast<std::size_t>(pad));
}

}  // namespace prionn::nn
