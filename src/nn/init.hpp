// Weight initialisation schemes. He initialisation for ReLU stacks (all of
// PRIONN's models), Xavier for the tanh/sigmoid variants used in tests.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace prionn::nn {

/// N(0, sqrt(2 / fan_in)) — He et al. 2015.
void he_init(tensor::Tensor& w, std::size_t fan_in, util::Rng& rng);

/// U(-a, a), a = sqrt(6 / (fan_in + fan_out)) — Glorot & Bengio 2010.
void xavier_init(tensor::Tensor& w, std::size_t fan_in, std::size_t fan_out,
                 util::Rng& rng);

}  // namespace prionn::nn
