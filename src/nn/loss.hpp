// Losses. The paper's models are classifiers (softmax over runtime / IO
// bins), so softmax cross-entropy is the primary loss; MSE is kept for the
// regression variants exercised in tests.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "tensor/tensor.hpp"

namespace prionn::nn {

/// Thrown when training numerically diverges: a non-finite loss (NaN
/// inputs, overflowed logits) or an exploding gradient norm. This is an
/// environmental/data fault, not a programming error, so unlike the
/// PRIONN_CHECK contracts it is recoverable — the online serving layer
/// catches it and rolls the model back to the last good snapshot
/// (DESIGN.md section 9). Thrown *before* any parameter update, so the
/// network weights are never poisoned by the diverging step.
class TrainingDiverged : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct LossResult {
  double value = 0.0;      // mean loss over the batch
  tensor::Tensor grad;     // dLoss/dLogits, same shape as the logits
};

/// Softmax + cross-entropy fused for numerical stability. `logits` is
/// (N x C); `labels` holds N class indices in [0, C).
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::uint32_t> labels);

/// Per-row softmax probabilities of (N x C) logits (prediction path).
tensor::Tensor softmax_probabilities(const tensor::Tensor& logits);

/// Mean squared error against targets of identical shape.
LossResult mean_squared_error(const tensor::Tensor& output,
                              const tensor::Tensor& target);

}  // namespace prionn::nn
