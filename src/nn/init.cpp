#include "nn/init.hpp"

#include <cmath>

namespace prionn::nn {

void he_init(tensor::Tensor& w, std::size_t fan_in, util::Rng& rng) {
  const double sigma = std::sqrt(2.0 / static_cast<double>(fan_in ? fan_in : 1));
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = static_cast<float>(rng.normal(0.0, sigma));
}

void xavier_init(tensor::Tensor& w, std::size_t fan_in, std::size_t fan_out,
                 util::Rng& rng) {
  const double a =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out ? fan_in + fan_out : 1));
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = static_cast<float>(rng.uniform(-a, a));
}

}  // namespace prionn::nn
