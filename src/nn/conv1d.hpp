// 1-D convolution over (N, C, L) batches — the paper's 1D-CNN variant that
// consumes the flattened script sequence.
#pragma once

#include <memory>

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace prionn::nn {

class Conv1d : public Layer {
 public:
  Conv1d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t pad,
         util::Rng& rng);
  Conv1d(Tensor weight, Tensor bias, std::size_t stride, std::size_t pad);

  std::string kind() const override { return "conv1d"; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override {
    return {&grad_weight_, &grad_bias_};
  }
  void save(std::ostream& os) const override;
  static std::unique_ptr<Layer> load(std::istream& is);

  std::size_t in_channels() const noexcept { return weight_.dim(1); }
  std::size_t out_channels() const noexcept { return weight_.dim(0); }

 private:
  tensor::Conv1dGeom geometry(const Shape& sample) const;

  Tensor weight_;  // (out_c, in_c, k)
  Tensor bias_;    // (out_c)
  Tensor grad_weight_;
  Tensor grad_bias_;
  std::size_t stride_ = 1;
  std::size_t pad_ = 0;

  Tensor input_;
  tensor::Conv1dGeom geom_{};
};

}  // namespace prionn::nn
