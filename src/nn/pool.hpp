// Max pooling (2-D over NCHW, 1-D over NCL). Stores the winning index of
// each window for the backward scatter.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace prionn::nn {

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(std::size_t window = 2, std::size_t stride = 0);

  std::string kind() const override { return "maxpool2d"; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void save(std::ostream& os) const override;
  static std::unique_ptr<Layer> load(std::istream& is);

 private:
  std::size_t window_;
  std::size_t stride_;
  Shape input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

class MaxPool1d : public Layer {
 public:
  explicit MaxPool1d(std::size_t window = 2, std::size_t stride = 0);

  std::string kind() const override { return "maxpool1d"; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void save(std::ostream& os) const override;
  static std::unique_ptr<Layer> load(std::istream& is);

 private:
  std::size_t window_;
  std::size_t stride_;
  Shape input_shape_;
  std::vector<std::size_t> argmax_;
};

}  // namespace prionn::nn
