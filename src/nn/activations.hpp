// Element-wise activation layers. Shape-agnostic: they apply to whatever
// batch tensor flows through.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace prionn::nn {

class Relu : public Layer {
 public:
  std::string kind() const override { return "relu"; }
  Shape output_shape(const Shape& input) const override { return input; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void save(std::ostream& os) const override;
  static std::unique_ptr<Layer> load(std::istream& is);

 private:
  Tensor input_;
};

class Tanh : public Layer {
 public:
  std::string kind() const override { return "tanh"; }
  Shape output_shape(const Shape& input) const override { return input; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void save(std::ostream& os) const override;
  static std::unique_ptr<Layer> load(std::istream& is);

 private:
  Tensor output_;  // tanh' = 1 - y^2, so caching the output suffices
};

class Sigmoid : public Layer {
 public:
  std::string kind() const override { return "sigmoid"; }
  Shape output_shape(const Shape& input) const override { return input; }
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void save(std::ostream& os) const override;
  static std::unique_ptr<Layer> load(std::istream& is);

 private:
  Tensor output_;
};

}  // namespace prionn::nn
