#include "nn/dropout.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace prionn::nn {

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  // The negated form also rejects NaN, which `rate < 0.0 || rate >= 1.0`
  // would wave through (and a NaN rate makes every bernoulli draw UB-ish
  // nonsense when a deserialised layer trains again).
  if (!(rate >= 0.0 && rate < 1.0))
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  trained_forward_ = training;
  if (!training || rate_ == 0.0) return input;
  mask_ = Tensor(input.shape());
  const auto scale = static_cast<float>(1.0 / (1.0 - rate_));
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool keep = !rng_.bernoulli(rate_);
    mask_[i] = keep ? scale : 0.0f;
    out[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!trained_forward_ || rate_ == 0.0) return grad_output;
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] *= mask_[i];
  return grad;
}

void Dropout::save(std::ostream& os) const {
  os.write(reinterpret_cast<const char*>(&rate_), sizeof(rate_));
  // The mask RNG is part of the training trajectory: restoring it lets a
  // checkpointed warm-start retrain replay bit-exactly after a crash.
  rng_.save(os);
}

std::unique_ptr<Layer> Dropout::load(std::istream& is) {
  double rate = 0.0;
  is.read(reinterpret_cast<char*>(&rate), sizeof(rate));
  if (!is) throw std::runtime_error("Dropout::load: truncated stream");
  auto layer = std::make_unique<Dropout>(rate);
  layer->rng_ = util::Rng::load(is);
  return layer;
}

}  // namespace prionn::nn
