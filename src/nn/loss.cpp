#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace prionn::nn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::uint32_t> labels) {
  if (logits.rank() != 2)
    throw std::invalid_argument("softmax_cross_entropy: logits must be N x C");
  const std::size_t batch = logits.dim(0), classes = logits.dim(1);
  if (labels.size() != batch)
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");

  LossResult result;
  result.grad = logits;  // reuse as probability buffer
  tensor::softmax_rows_inplace(result.grad);

  double loss = 0.0;
  const double floor = 1e-12;  // guard the log against exact zeros
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    const std::uint32_t y = labels[n];
    if (y >= classes)
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    float* row = result.grad.data() + n * classes;
    loss -= std::log(std::max(static_cast<double>(row[y]), floor));
    // grad = (p - onehot) / N
    row[y] -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) row[c] *= inv_batch;
  }
  result.value = loss / static_cast<double>(batch);
  // Trust boundary: a NaN/Inf loss means the forward pass diverged (bad
  // inputs or exploded weights). Report it here, at the point of
  // production and before any parameter update, instead of letting NaN
  // gradients silently poison the parameters and every later prediction.
  // Divergence is a recoverable data/environment fault (a poisoned batch,
  // a runaway retrain), so it throws rather than aborting; the resilient
  // serving layer rolls back to the last good snapshot.
  if (!std::isfinite(result.value))
    throw TrainingDiverged("softmax_cross_entropy: loss diverged over " +
                           std::to_string(batch) + " samples");
  PRIONN_DCHECK_FINITE(result.grad.span())
      << "softmax_cross_entropy: non-finite gradient";
  return result;
}

tensor::Tensor softmax_probabilities(const tensor::Tensor& logits) {
  tensor::Tensor probs = logits;
  tensor::softmax_rows_inplace(probs);
  return probs;
}

LossResult mean_squared_error(const tensor::Tensor& output,
                              const tensor::Tensor& target) {
  if (!output.same_shape(target))
    throw std::invalid_argument("mean_squared_error: shape mismatch");
  LossResult result;
  result.grad = tensor::Tensor(output.shape());
  double loss = 0.0;
  const auto n = static_cast<double>(output.size());
  for (std::size_t i = 0; i < output.size(); ++i) {
    const float diff = output[i] - target[i];
    loss += static_cast<double>(diff) * diff;
    result.grad[i] = static_cast<float>(2.0 * diff / n);
  }
  result.value = loss / n;
  if (!std::isfinite(result.value))
    throw TrainingDiverged("mean_squared_error: loss diverged over " +
                           std::to_string(output.size()) + " elements");
  PRIONN_DCHECK_FINITE(result.grad.span())
      << "mean_squared_error: non-finite gradient";
  return result;
}

}  // namespace prionn::nn
