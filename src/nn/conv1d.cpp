#include "nn/conv1d.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "util/check.hpp"

namespace prionn::nn {

Conv1d::Conv1d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               util::Rng& rng)
    : weight_({out_channels, in_channels, kernel}),
      bias_({out_channels}),
      grad_weight_(weight_.shape()),
      grad_bias_(bias_.shape()),
      stride_(stride),
      pad_(pad) {
  he_init(weight_, in_channels * kernel, rng);
}

Conv1d::Conv1d(Tensor weight, Tensor bias, std::size_t stride,
               std::size_t pad)
    : weight_(std::move(weight)),
      bias_(std::move(bias)),
      grad_weight_(weight_.shape()),
      grad_bias_(bias_.shape()),
      stride_(stride),
      pad_(pad) {
  if (weight_.rank() != 3 || bias_.rank() != 1 ||
      bias_.dim(0) != weight_.dim(0))
    throw std::invalid_argument("Conv1d: inconsistent weight/bias shapes");
}

tensor::Conv1dGeom Conv1d::geometry(const Shape& sample) const {
  if (sample.size() != 2 || sample[0] != in_channels())
    throw std::invalid_argument("Conv1d: expected (C, L) sample with C = " +
                                std::to_string(in_channels()));
  tensor::Conv1dGeom g;
  g.channels = sample[0];
  g.length = sample[1];
  g.kernel = weight_.dim(2);
  g.stride = stride_;
  g.pad = pad_;
  if (g.length + 2 * g.pad < g.kernel)
    throw std::invalid_argument("Conv1d: kernel larger than padded input");
  return g;
}

Shape Conv1d::output_shape(const Shape& input) const {
  const auto g = geometry(input);
  return {out_channels(), g.out_len()};
}

namespace {
// Same sub-batch bound as Conv2d: cap the lowered patch matrix size.
constexpr std::size_t kMaxColsFloats1d = 16u << 20;  // 64 MiB
}  // namespace

Tensor Conv1d::forward(const Tensor& input, bool /*training*/) {
  const std::size_t batch = input.dim(0);
  geom_ = geometry({input.dim(1), input.dim(2)});
  input_ = input;

  const std::size_t pr = geom_.patch_rows();
  const std::size_t ol = geom_.out_len();
  const std::size_t oc = out_channels();
  const std::size_t in_stride = geom_.channels * geom_.length;
  Tensor out({batch, oc, ol});

  // Batched lowering: one GEMM per sub-batch (see Conv2d::forward).
  const std::size_t chunk =
      std::clamp<std::size_t>(kMaxColsFloats1d / (pr * ol), 1, batch);
  std::vector<float> cols(pr * chunk * ol);
  std::vector<float> gemm_out(oc * chunk * ol);
  for (std::size_t base = 0; base < batch; base += chunk) {
    const std::size_t n = std::min(chunk, batch - base);
    const std::size_t wide = n * ol;
    for (std::size_t s = 0; s < n; ++s)
      tensor::im2col_1d_strided(geom_, input.data() + (base + s) * in_stride,
                                cols.data() + s * ol, wide);
    tensor::gemm(oc, pr, wide, 1.0f, weight_.data(), cols.data(), 0.0f,
                 gemm_out.data());
    for (std::size_t c = 0; c < oc; ++c) {
      const float b = bias_[c];
      const float* src = gemm_out.data() + c * wide;
      for (std::size_t s = 0; s < n; ++s) {
        float* dst = out.data() + ((base + s) * oc + c) * ol;
        const float* block = src + s * ol;
        for (std::size_t p = 0; p < ol; ++p) dst[p] = block[p] + b;
      }
    }
  }
  return out;
}

Tensor Conv1d::backward(const Tensor& grad_output) {
  PRIONN_CHECK(!input_.empty()) << "Conv1d::backward: forward() first";
  PRIONN_CHECK(grad_output.rank() == 3 &&
               grad_output.dim(0) == input_.dim(0) &&
               grad_output.dim(1) == out_channels() &&
               grad_output.dim(2) == geom_.out_len())
      << "Conv1d::backward: gradient shape "
      << tensor::shape_to_string(grad_output.shape())
      << " does not match forward geometry (" << input_.dim(0) << ", "
      << out_channels() << ", " << geom_.out_len() << ")";
  const std::size_t batch = grad_output.dim(0);
  const std::size_t pr = geom_.patch_rows();
  const std::size_t ol = geom_.out_len();
  const std::size_t oc = out_channels();
  const std::size_t in_stride = geom_.channels * geom_.length;

  Tensor grad_input(input_.shape());
  const std::size_t chunk =
      std::clamp<std::size_t>(kMaxColsFloats1d / (pr * ol), 1, batch);
  std::vector<float> cols(pr * chunk * ol);
  std::vector<float> dy(oc * chunk * ol);
  std::vector<float> grad_cols(pr * chunk * ol);
  for (std::size_t base = 0; base < batch; base += chunk) {
    const std::size_t n = std::min(chunk, batch - base);
    const std::size_t wide = n * ol;
    for (std::size_t s = 0; s < n; ++s) {
      tensor::im2col_1d_strided(geom_, input_.data() + (base + s) * in_stride,
                                cols.data() + s * ol, wide);
      for (std::size_t c = 0; c < oc; ++c)
        std::copy_n(grad_output.data() + ((base + s) * oc + c) * ol, ol,
                    dy.data() + c * wide + s * ol);
    }
    tensor::gemm_bt(oc, wide, pr, 1.0f, dy.data(), cols.data(), 1.0f,
                    grad_weight_.data());
    for (std::size_t c = 0; c < oc; ++c) {
      const float* lane = dy.data() + c * wide;
      float acc = 0.0f;
      for (std::size_t p = 0; p < wide; ++p) acc += lane[p];
      grad_bias_[c] += acc;
    }
    tensor::gemm_at(pr, oc, wide, 1.0f, weight_.data(), dy.data(), 0.0f,
                    grad_cols.data());
    for (std::size_t s = 0; s < n; ++s)
      tensor::col2im_1d_strided(geom_, grad_cols.data() + s * ol, wide,
                                grad_input.data() + (base + s) * in_stride);
  }
  return grad_input;
}

void Conv1d::save(std::ostream& os) const {
  weight_.save(os);
  bias_.save(os);
  const std::uint64_t stride = stride_, pad = pad_;
  os.write(reinterpret_cast<const char*>(&stride), sizeof(stride));
  os.write(reinterpret_cast<const char*>(&pad), sizeof(pad));
}

std::unique_ptr<Layer> Conv1d::load(std::istream& is) {
  Tensor w = Tensor::load(is);
  Tensor b = Tensor::load(is);
  std::uint64_t stride = 0, pad = 0;
  is.read(reinterpret_cast<char*>(&stride), sizeof(stride));
  is.read(reinterpret_cast<char*>(&pad), sizeof(pad));
  if (!is) throw std::runtime_error("Conv1d::load: truncated stream");
  return std::make_unique<Conv1d>(std::move(w), std::move(b),
                                  static_cast<std::size_t>(stride),
                                  static_cast<std::size_t>(pad));
}

}  // namespace prionn::nn
