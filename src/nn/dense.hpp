// Fully connected layer: y = x W^T + b, x is (N x in), W is (out x in).
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace prionn::nn {

class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng);
  /// Deserialisation constructor: weights supplied verbatim.
  Dense(Tensor weight, Tensor bias);

  std::string kind() const override { return "dense"; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override {
    return {&grad_weight_, &grad_bias_};
  }
  void save(std::ostream& os) const override;
  static std::unique_ptr<Layer> load(std::istream& is);

  std::size_t in_features() const noexcept { return weight_.dim(1); }
  std::size_t out_features() const noexcept { return weight_.dim(0); }
  const Tensor& weight() const noexcept { return weight_; }
  const Tensor& bias() const noexcept { return bias_; }

 private:
  Tensor weight_;       // (out x in)
  Tensor bias_;         // (out)
  Tensor grad_weight_;  // (out x in)
  Tensor grad_bias_;    // (out)
  Tensor input_;        // cached batch for backward
};

}  // namespace prionn::nn
