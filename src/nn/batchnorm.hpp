// Batch normalisation (Ioffe & Szegedy 2015) over the channel dimension.
// Supports both (N, C) dense activations and (N, C, ...) convolutional
// activations, normalising per channel across the batch and any trailing
// spatial dimensions. Running statistics drive inference mode, so the
// online protocol can predict between retraining events.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace prionn::nn {

class BatchNorm : public Layer {
 public:
  explicit BatchNorm(std::size_t channels, double momentum = 0.9,
                     double epsilon = 1e-5);
  BatchNorm(Tensor gamma, Tensor beta, Tensor running_mean,
            Tensor running_var, double momentum, double epsilon);

  std::string kind() const override { return "batchnorm"; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> gradients() override {
    return {&grad_gamma_, &grad_beta_};
  }
  void save(std::ostream& os) const override;
  static std::unique_ptr<Layer> load(std::istream& is);

  std::size_t channels() const noexcept { return gamma_.dim(0); }
  const Tensor& running_mean() const noexcept { return running_mean_; }
  const Tensor& running_variance() const noexcept { return running_var_; }

 private:
  /// Validate the input and return (channel index stride layout): the
  /// number of (batch * spatial) samples normalised per channel.
  std::size_t samples_per_channel(const Tensor& input) const;

  Tensor gamma_, beta_;
  Tensor grad_gamma_, grad_beta_;
  Tensor running_mean_, running_var_;
  double momentum_, epsilon_;

  // Cached forward state for backward.
  Tensor input_;
  Tensor normalized_;   // x_hat
  Tensor batch_mean_, batch_inv_std_;
  bool trained_forward_ = false;
};

}  // namespace prionn::nn
