#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace prionn::nn {

namespace {

// Shared step contract: parameter/gradient tensors must agree in shape
// (a mismatch would read out of bounds below), and in checked builds the
// incoming gradients must be finite so a diverging update aborts at the
// step instead of corrupting the weights.
void check_step_pair(const tensor::Tensor& w, const tensor::Tensor& g,
                     std::size_t index) {
  PRIONN_CHECK(g.same_shape(w))
      << "Optimizer::step: gradient " << index << " shape "
      << tensor::shape_to_string(g.shape()) << " != parameter shape "
      << tensor::shape_to_string(w.shape());
  PRIONN_DCHECK_FINITE(g.span())
      << "Optimizer::step: non-finite gradient for parameter " << index;
}

}  // namespace

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr must be positive");
}

void Sgd::step(const std::vector<tensor::Tensor*>& params,
               const std::vector<tensor::Tensor*>& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("Sgd::step: param/grad count mismatch");
  for (std::size_t p = 0; p < params.size(); ++p) {
    tensor::Tensor& w = *params[p];
    const tensor::Tensor& g = *grads[p];
    check_step_pair(w, g, p);
    const auto lr = static_cast<float>(lr_);
    const auto wd = static_cast<float>(weight_decay_);
    if (momentum_ == 0.0) {
      for (std::size_t i = 0; i < w.size(); ++i)
        w[i] -= lr * (g[i] + wd * w[i]);
      continue;
    }
    auto [it, inserted] = velocity_.try_emplace(params[p], w.shape());
    tensor::Tensor& v = it->second;
    if (!inserted && !v.same_shape(w)) v = tensor::Tensor(w.shape());
    const auto mu = static_cast<float>(momentum_);
    for (std::size_t i = 0; i < w.size(); ++i) {
      v[i] = mu * v[i] + g[i] + wd * w[i];
      w[i] -= lr * v[i];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps,
           double weight_decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be positive");
}

void Adam::step(const std::vector<tensor::Tensor*>& params,
                const std::vector<tensor::Tensor*>& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("Adam::step: param/grad count mismatch");
  for (std::size_t p = 0; p < params.size(); ++p) {
    tensor::Tensor& w = *params[p];
    const tensor::Tensor& g = *grads[p];
    check_step_pair(w, g, p);
    auto [it, inserted] = moments_.try_emplace(params[p]);
    Moments& st = it->second;
    if (inserted || !st.m.same_shape(w)) {
      st.m = tensor::Tensor(w.shape());
      st.v = tensor::Tensor(w.shape());
      st.t = 0;
    }
    ++st.t;
    const auto b1 = static_cast<float>(beta1_);
    const auto b2 = static_cast<float>(beta2_);
    const auto wd = static_cast<float>(weight_decay_);
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(st.t));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(st.t));
    const auto alpha = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
    const auto eps = static_cast<float>(eps_);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float gi = g[i] + wd * w[i];
      st.m[i] = b1 * st.m[i] + (1.0f - b1) * gi;
      st.v[i] = b2 * st.v[i] + (1.0f - b2) * gi * gi;
      w[i] -= alpha * st.m[i] / (std::sqrt(st.v[i]) + eps);
    }
  }
}

}  // namespace prionn::nn
