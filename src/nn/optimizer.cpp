#include "nn/optimizer.hpp"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/check.hpp"

namespace prionn::nn {

namespace {

// Shared step contract: parameter/gradient tensors must agree in shape
// (a mismatch would read out of bounds below), and in checked builds the
// incoming gradients must be finite so a diverging update aborts at the
// step instead of corrupting the weights.
void check_step_pair(const tensor::Tensor& w, const tensor::Tensor& g,
                     std::size_t index) {
  PRIONN_CHECK(g.same_shape(w))
      << "Optimizer::step: gradient " << index << " shape "
      << tensor::shape_to_string(g.shape()) << " != parameter shape "
      << tensor::shape_to_string(w.shape());
  PRIONN_DCHECK_FINITE(g.span())
      << "Optimizer::step: non-finite gradient for parameter " << index;
}

}  // namespace

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr must be positive");
}

void Sgd::step(const std::vector<tensor::Tensor*>& params,
               const std::vector<tensor::Tensor*>& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("Sgd::step: param/grad count mismatch");
  for (std::size_t p = 0; p < params.size(); ++p) {
    tensor::Tensor& w = *params[p];
    const tensor::Tensor& g = *grads[p];
    check_step_pair(w, g, p);
    const auto lr = static_cast<float>(lr_);
    const auto wd = static_cast<float>(weight_decay_);
    if (momentum_ == 0.0) {
      for (std::size_t i = 0; i < w.size(); ++i)
        w[i] -= lr * (g[i] + wd * w[i]);
      continue;
    }
    auto [it, inserted] = velocity_.try_emplace(params[p], w.shape());
    tensor::Tensor& v = it->second;
    if (!inserted && !v.same_shape(w)) v = tensor::Tensor(w.shape());
    const auto mu = static_cast<float>(momentum_);
    for (std::size_t i = 0; i < w.size(); ++i) {
      v[i] = mu * v[i] + g[i] + wd * w[i];
      w[i] -= lr * v[i];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps,
           double weight_decay)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be positive");
}

void Adam::step(const std::vector<tensor::Tensor*>& params,
                const std::vector<tensor::Tensor*>& grads) {
  if (params.size() != grads.size())
    throw std::invalid_argument("Adam::step: param/grad count mismatch");
  for (std::size_t p = 0; p < params.size(); ++p) {
    tensor::Tensor& w = *params[p];
    const tensor::Tensor& g = *grads[p];
    check_step_pair(w, g, p);
    auto [it, inserted] = moments_.try_emplace(params[p]);
    Moments& st = it->second;
    if (inserted || !st.m.same_shape(w)) {
      st.m = tensor::Tensor(w.shape());
      st.v = tensor::Tensor(w.shape());
      st.t = 0;
    }
    ++st.t;
    const auto b1 = static_cast<float>(beta1_);
    const auto b2 = static_cast<float>(beta2_);
    const auto wd = static_cast<float>(weight_decay_);
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(st.t));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(st.t));
    const auto alpha = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
    const auto eps = static_cast<float>(eps_);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const float gi = g[i] + wd * w[i];
      st.m[i] = b1 * st.m[i] + (1.0f - b1) * gi;
      st.v[i] = b2 * st.v[i] + (1.0f - b2) * gi * gi;
      w[i] -= alpha * st.m[i] / (std::sqrt(st.v[i]) + eps);
    }
  }
}

namespace {

void write_tensor_data(std::ostream& os, const tensor::Tensor& t) {
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
}

void read_tensor_data(std::istream& is, tensor::Tensor& t) {
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!is) throw std::runtime_error("Adam::load: truncated moment tensor");
}

}  // namespace

void Adam::save(std::ostream& os,
                const std::vector<tensor::Tensor*>& params) const {
  const auto count = static_cast<std::uint64_t>(params.size());
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const tensor::Tensor* p : params) {
    const auto it = moments_.find(p);
    const std::uint8_t has =
        it != moments_.end() && it->second.m.same_shape(*p) ? 1 : 0;
    os.write(reinterpret_cast<const char*>(&has), sizeof(has));
    if (!has) continue;
    const auto t = static_cast<std::uint64_t>(it->second.t);
    os.write(reinterpret_cast<const char*>(&t), sizeof(t));
    write_tensor_data(os, it->second.m);
    write_tensor_data(os, it->second.v);
  }
}

void Adam::load(std::istream& is,
                const std::vector<tensor::Tensor*>& params) {
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is || count != params.size())
    throw std::runtime_error("Adam::load: parameter count mismatch");
  moments_.clear();
  for (tensor::Tensor* p : params) {
    std::uint8_t has = 0;
    is.read(reinterpret_cast<char*>(&has), sizeof(has));
    if (!is) throw std::runtime_error("Adam::load: truncated stream");
    if (!has) continue;
    Moments st;
    std::uint64_t t = 0;
    is.read(reinterpret_cast<char*>(&t), sizeof(t));
    st.t = static_cast<std::size_t>(t);
    st.m = tensor::Tensor(p->shape());
    st.v = tensor::Tensor(p->shape());
    read_tensor_data(is, st.m);
    read_tensor_data(is, st.v);
    moments_.emplace(p, std::move(st));
  }
}

}  // namespace prionn::nn
