#include "nn/activations.hpp"

#include <cmath>
#include <istream>
#include <ostream>

namespace prionn::nn {

Tensor Relu::forward(const Tensor& input, bool /*training*/) {
  input_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i)
    if (out[i] < 0.0f) out[i] = 0.0f;
  return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i)
    if (input_[i] <= 0.0f) grad[i] = 0.0f;
  return grad;
}

void Relu::save(std::ostream& /*os*/) const {}
std::unique_ptr<Layer> Relu::load(std::istream& /*is*/) {
  return std::make_unique<Relu>();
}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i)
    grad[i] *= 1.0f - output_[i] * output_[i];
  return grad;
}

void Tanh::save(std::ostream& /*os*/) const {}
std::unique_ptr<Layer> Tanh::load(std::istream& /*is*/) {
  return std::make_unique<Tanh>();
}

Tensor Sigmoid::forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i)
    grad[i] *= output_[i] * (1.0f - output_[i]);
  return grad;
}

void Sigmoid::save(std::ostream& /*os*/) const {}
std::unique_ptr<Layer> Sigmoid::load(std::istream& /*is*/) {
  return std::make_unique<Sigmoid>();
}

}  // namespace prionn::nn
