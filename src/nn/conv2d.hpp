// 2-D convolution over (N, C, H, W) batches via im2col + GEMM. This is the
// workhorse of the paper's chosen model (2D-CNN over 64 x 64 script
// images).
#pragma once

#include <memory>

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"

namespace prionn::nn {

class Conv2d : public Layer {
 public:
  /// Square kernels and symmetric padding cover every configuration used in
  /// the paper's models; rectangular variants are supported anyway.
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_h, std::size_t kernel_w, std::size_t stride,
         std::size_t pad, util::Rng& rng);
  Conv2d(Tensor weight, Tensor bias, std::size_t stride, std::size_t pad);

  std::string kind() const override { return "conv2d"; }
  Shape output_shape(const Shape& input) const override;
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override {
    return {&grad_weight_, &grad_bias_};
  }
  void save(std::ostream& os) const override;
  static std::unique_ptr<Layer> load(std::istream& is);

  std::size_t in_channels() const noexcept { return weight_.dim(1); }
  std::size_t out_channels() const noexcept { return weight_.dim(0); }

 private:
  tensor::Conv2dGeom geometry(const Shape& sample) const;

  Tensor weight_;  // (out_c, in_c, kh, kw)
  Tensor bias_;    // (out_c)
  Tensor grad_weight_;
  Tensor grad_bias_;
  std::size_t stride_ = 1;
  std::size_t pad_ = 0;

  Tensor input_;               // cached batch
  tensor::Conv2dGeom geom_{};  // geometry of the cached batch
};

}  // namespace prionn::nn
