#include "nn/batchnorm.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/check.hpp"

namespace prionn::nn {

BatchNorm::BatchNorm(std::size_t channels, double momentum, double epsilon)
    : gamma_({channels}, 1.0f),
      beta_({channels}),
      grad_gamma_({channels}),
      grad_beta_({channels}),
      running_mean_({channels}),
      running_var_({channels}, 1.0f),
      momentum_(momentum),
      epsilon_(epsilon) {
  if (channels == 0) throw std::invalid_argument("BatchNorm: channels > 0");
  if (momentum < 0.0 || momentum >= 1.0)
    throw std::invalid_argument("BatchNorm: momentum in [0, 1)");
}

BatchNorm::BatchNorm(Tensor gamma, Tensor beta, Tensor running_mean,
                     Tensor running_var, double momentum, double epsilon)
    : gamma_(std::move(gamma)),
      beta_(std::move(beta)),
      grad_gamma_(gamma_.shape()),
      grad_beta_(beta_.shape()),
      running_mean_(std::move(running_mean)),
      running_var_(std::move(running_var)),
      momentum_(momentum),
      epsilon_(epsilon) {
  if (gamma_.rank() != 1 || !gamma_.same_shape(beta_) ||
      !gamma_.same_shape(running_mean_) || !gamma_.same_shape(running_var_))
    throw std::invalid_argument("BatchNorm: inconsistent parameter shapes");
}

Shape BatchNorm::output_shape(const Shape& input) const {
  if (input.empty() || input[0] != channels())
    throw std::invalid_argument(
        "BatchNorm: expected sample with leading channel dim " +
        std::to_string(channels()));
  return input;
}

std::size_t BatchNorm::samples_per_channel(const Tensor& input) const {
  if (input.rank() < 2 || input.dim(1) != channels())
    throw std::invalid_argument("BatchNorm: expected (N, C, ...) batch");
  return input.size() / channels();
}

Tensor BatchNorm::forward(const Tensor& input, bool training) {
  PRIONN_CHECK(input.rank() >= 2 && input.dim(1) == channels())
      << "BatchNorm::forward: expected (N, " << channels()
      << ", ...) batch, got " << tensor::shape_to_string(input.shape());
  const std::size_t n = input.dim(0);
  const std::size_t c = channels();
  const std::size_t spatial = input.size() / (n * c);
  PRIONN_DCHECK(spatial * n * c == input.size())
      << "BatchNorm::forward: batch size not divisible by channel planes";
  const auto count = static_cast<double>(n * spatial);
  trained_forward_ = training;

  Tensor mean({c}), inv_std({c});
  if (training) {
    // Per-channel batch statistics across batch and spatial dims.
    for (std::size_t ch = 0; ch < c; ++ch) {
      double sum = 0.0;
      for (std::size_t b = 0; b < n; ++b) {
        const float* plane = input.data() + (b * c + ch) * spatial;
        for (std::size_t s = 0; s < spatial; ++s) sum += plane[s];
      }
      const double mu = sum / count;
      double var = 0.0;
      for (std::size_t b = 0; b < n; ++b) {
        const float* plane = input.data() + (b * c + ch) * spatial;
        for (std::size_t s = 0; s < spatial; ++s) {
          const double d = plane[s] - mu;
          var += d * d;
        }
      }
      var /= count;
      mean[ch] = static_cast<float>(mu);
      inv_std[ch] = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
      running_mean_[ch] = static_cast<float>(
          momentum_ * running_mean_[ch] + (1.0 - momentum_) * mu);
      running_var_[ch] = static_cast<float>(
          momentum_ * running_var_[ch] + (1.0 - momentum_) * var);
    }
  } else {
    for (std::size_t ch = 0; ch < c; ++ch) {
      mean[ch] = running_mean_[ch];
      inv_std[ch] = static_cast<float>(
          1.0 / std::sqrt(static_cast<double>(running_var_[ch]) + epsilon_));
    }
  }

  Tensor out(input.shape());
  Tensor x_hat(input.shape());
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float mu = mean[ch], is = inv_std[ch];
      const float g = gamma_[ch], bt = beta_[ch];
      const float* src = input.data() + (b * c + ch) * spatial;
      float* xh = x_hat.data() + (b * c + ch) * spatial;
      float* dst = out.data() + (b * c + ch) * spatial;
      for (std::size_t s = 0; s < spatial; ++s) {
        xh[s] = (src[s] - mu) * is;
        dst[s] = g * xh[s] + bt;
      }
    }
  }
  if (training) {
    input_ = input;
    normalized_ = std::move(x_hat);
    batch_mean_ = std::move(mean);
    batch_inv_std_ = std::move(inv_std);
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  if (!trained_forward_)
    throw std::logic_error("BatchNorm::backward: forward(training) first");
  PRIONN_CHECK(grad_output.same_shape(normalized_))
      << "BatchNorm::backward: gradient shape "
      << tensor::shape_to_string(grad_output.shape())
      << " does not match cached forward shape "
      << tensor::shape_to_string(normalized_.shape());
  const std::size_t n = grad_output.dim(0);
  const std::size_t c = channels();
  const std::size_t spatial = grad_output.size() / (n * c);
  const auto count = static_cast<float>(n * spatial);

  Tensor grad_input(grad_output.shape());
  for (std::size_t ch = 0; ch < c; ++ch) {
    // Accumulate the per-channel reductions needed by the BN gradient.
    float sum_dy = 0.0f, sum_dy_xhat = 0.0f;
    for (std::size_t b = 0; b < n; ++b) {
      const float* dy = grad_output.data() + (b * c + ch) * spatial;
      const float* xh = normalized_.data() + (b * c + ch) * spatial;
      for (std::size_t s = 0; s < spatial; ++s) {
        sum_dy += dy[s];
        sum_dy_xhat += dy[s] * xh[s];
      }
    }
    grad_beta_[ch] += sum_dy;
    grad_gamma_[ch] += sum_dy_xhat;

    const float g = gamma_[ch], is = batch_inv_std_[ch];
    for (std::size_t b = 0; b < n; ++b) {
      const float* dy = grad_output.data() + (b * c + ch) * spatial;
      const float* xh = normalized_.data() + (b * c + ch) * spatial;
      float* dx = grad_input.data() + (b * c + ch) * spatial;
      for (std::size_t s = 0; s < spatial; ++s) {
        // dx = gamma * inv_std / m * (m*dy - sum(dy) - x_hat*sum(dy*x_hat))
        dx[s] = g * is / count *
                (count * dy[s] - sum_dy - xh[s] * sum_dy_xhat);
      }
    }
  }
  return grad_input;
}

void BatchNorm::save(std::ostream& os) const {
  gamma_.save(os);
  beta_.save(os);
  running_mean_.save(os);
  running_var_.save(os);
  os.write(reinterpret_cast<const char*>(&momentum_), sizeof(momentum_));
  os.write(reinterpret_cast<const char*>(&epsilon_), sizeof(epsilon_));
}

std::unique_ptr<Layer> BatchNorm::load(std::istream& is) {
  Tensor gamma = Tensor::load(is);
  Tensor beta = Tensor::load(is);
  Tensor mean = Tensor::load(is);
  Tensor var = Tensor::load(is);
  double momentum = 0.0, epsilon = 0.0;
  is.read(reinterpret_cast<char*>(&momentum), sizeof(momentum));
  is.read(reinterpret_cast<char*>(&epsilon), sizeof(epsilon));
  if (!is) throw std::runtime_error("BatchNorm::load: truncated stream");
  return std::make_unique<BatchNorm>(std::move(gamma), std::move(beta),
                                     std::move(mean), std::move(var),
                                     momentum, epsilon);
}

}  // namespace prionn::nn
