#include "nn/pool.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "util/check.hpp"

namespace prionn::nn {

namespace {
std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("pool load: truncated stream");
  return v;
}
void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
}  // namespace

MaxPool2d::MaxPool2d(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride ? stride : window) {
  if (window_ == 0) throw std::invalid_argument("MaxPool2d: window > 0");
}

Shape MaxPool2d::output_shape(const Shape& input) const {
  if (input.size() != 3)
    throw std::invalid_argument("MaxPool2d: expected (C, H, W)");
  if (input[1] < window_ || input[2] < window_)
    throw std::invalid_argument("MaxPool2d: window larger than input");
  return {input[0], (input[1] - window_) / stride_ + 1,
          (input[2] - window_) / stride_ + 1};
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*training*/) {
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0), c = input.dim(1);
  const std::size_t h = input.dim(2), w = input.dim(3);
  const std::size_t oh = (h - window_) / stride_ + 1;
  const std::size_t ow = (w - window_) / stride_ + 1;
  Tensor out({batch, c, oh, ow});
  argmax_.assign(out.size(), 0);
  std::size_t oi = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (n * c + ch) * h * w;
      const std::size_t plane_base = (n * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            const std::size_t iy = oy * stride_ + ky;
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t ix = ox * stride_ + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          out[oi] = best;
          argmax_[oi] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  PRIONN_CHECK(grad_output.size() == argmax_.size())
      << "MaxPool2d::backward: gradient has " << grad_output.size()
      << " elements but forward produced " << argmax_.size();
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i)
    grad_input[argmax_[i]] += grad_output[i];
  return grad_input;
}

void MaxPool2d::save(std::ostream& os) const {
  write_u64(os, window_);
  write_u64(os, stride_);
}

std::unique_ptr<Layer> MaxPool2d::load(std::istream& is) {
  const auto window = static_cast<std::size_t>(read_u64(is));
  const auto stride = static_cast<std::size_t>(read_u64(is));
  return std::make_unique<MaxPool2d>(window, stride);
}

MaxPool1d::MaxPool1d(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride ? stride : window) {
  if (window_ == 0) throw std::invalid_argument("MaxPool1d: window > 0");
}

Shape MaxPool1d::output_shape(const Shape& input) const {
  if (input.size() != 2)
    throw std::invalid_argument("MaxPool1d: expected (C, L)");
  if (input[1] < window_)
    throw std::invalid_argument("MaxPool1d: window larger than input");
  return {input[0], (input[1] - window_) / stride_ + 1};
}

Tensor MaxPool1d::forward(const Tensor& input, bool /*training*/) {
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0), c = input.dim(1);
  const std::size_t len = input.dim(2);
  const std::size_t ol = (len - window_) / stride_ + 1;
  Tensor out({batch, c, ol});
  argmax_.assign(out.size(), 0);
  std::size_t oi = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* lane = input.data() + (n * c + ch) * len;
      const std::size_t lane_base = (n * c + ch) * len;
      for (std::size_t o = 0; o < ol; ++o, ++oi) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        for (std::size_t k = 0; k < window_; ++k) {
          const std::size_t i = o * stride_ + k;
          if (lane[i] > best) {
            best = lane[i];
            best_idx = lane_base + i;
          }
        }
        out[oi] = best;
        argmax_[oi] = best_idx;
      }
    }
  }
  return out;
}

Tensor MaxPool1d::backward(const Tensor& grad_output) {
  PRIONN_CHECK(grad_output.size() == argmax_.size())
      << "MaxPool1d::backward: gradient has " << grad_output.size()
      << " elements but forward produced " << argmax_.size();
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i)
    grad_input[argmax_[i]] += grad_output[i];
  return grad_input;
}

void MaxPool1d::save(std::ostream& os) const {
  write_u64(os, window_);
  write_u64(os, stride_);
}

std::unique_ptr<Layer> MaxPool1d::load(std::istream& is) {
  const auto window = static_cast<std::size_t>(read_u64(is));
  const auto stride = static_cast<std::size_t>(read_u64(is));
  return std::make_unique<MaxPool1d>(window, stride);
}

}  // namespace prionn::nn
