#include "nn/flatten.hpp"

#include <istream>
#include <ostream>

namespace prionn::nn {

Shape Flatten::output_shape(const Shape& input) const {
  std::size_t n = 1;
  for (const std::size_t d : input) n *= d;
  return {n};
}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  input_shape_ = input.shape();
  Tensor out = input;
  out.reshape({input.dim(0), input.size() / input.dim(0)});
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  grad.reshape(input_shape_);
  return grad;
}

void Flatten::save(std::ostream& /*os*/) const {}
std::unique_ptr<Layer> Flatten::load(std::istream& /*is*/) {
  return std::make_unique<Flatten>();
}

}  // namespace prionn::nn
