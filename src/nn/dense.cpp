#include "nn/dense.hpp"

#include <istream>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "nn/init.hpp"
#include "tensor/gemm.hpp"
#include "util/check.hpp"

namespace prionn::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             util::Rng& rng)
    : weight_({out_features, in_features}),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
  he_init(weight_, in_features, rng);
}

Dense::Dense(Tensor weight, Tensor bias)
    : weight_(std::move(weight)),
      bias_(std::move(bias)),
      grad_weight_(weight_.shape()),
      grad_bias_(bias_.shape()) {
  if (weight_.rank() != 2 || bias_.rank() != 1 ||
      bias_.dim(0) != weight_.dim(0))
    throw std::invalid_argument("Dense: inconsistent weight/bias shapes");
}

Shape Dense::output_shape(const Shape& input) const {
  if (input.size() != 1 || input[0] != in_features())
    throw std::invalid_argument("Dense: expected input of " +
                                std::to_string(in_features()) + " features");
  return {out_features()};
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
  const std::size_t batch = input.dim(0);
  if (input.rank() != 2 || input.dim(1) != in_features())
    throw std::invalid_argument("Dense::forward: bad input shape " +
                                tensor::shape_to_string(input.shape()));
  input_ = input;
  Tensor out({batch, out_features()});
  // out = input (N x in) * W^T (in x out)
  tensor::gemm_bt(batch, in_features(), out_features(), 1.0f, input.data(),
                  weight_.data(), 0.0f, out.data());
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t o = 0; o < out_features(); ++o)
      out.at(n, o) += bias_[o];
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  PRIONN_CHECK(grad_output.rank() == 2 &&
               grad_output.dim(1) == out_features())
      << "Dense::backward: gradient shape "
      << tensor::shape_to_string(grad_output.shape()) << " does not match "
      << out_features() << " output features";
  PRIONN_CHECK(!input_.empty() && grad_output.dim(0) == input_.dim(0))
      << "Dense::backward: gradient batch " << grad_output.dim(0)
      << " does not match cached forward batch "
      << (input_.empty() ? 0 : input_.dim(0));
  const std::size_t batch = grad_output.dim(0);
  // dW += dY^T (out x N) * X (N x in)
  tensor::gemm_at(out_features(), batch, in_features(), 1.0f,
                  grad_output.data(), input_.data(), 1.0f,
                  grad_weight_.data());
  for (std::size_t n = 0; n < batch; ++n)
    for (std::size_t o = 0; o < out_features(); ++o)
      grad_bias_[o] += grad_output.at(n, o);
  // dX = dY (N x out) * W (out x in)
  Tensor grad_input({batch, in_features()});
  tensor::gemm(batch, out_features(), in_features(), 1.0f,
               grad_output.data(), weight_.data(), 0.0f, grad_input.data());
  return grad_input;
}

void Dense::save(std::ostream& os) const {
  weight_.save(os);
  bias_.save(os);
}

std::unique_ptr<Layer> Dense::load(std::istream& is) {
  Tensor w = Tensor::load(is);
  Tensor b = Tensor::load(is);
  return std::make_unique<Dense>(std::move(w), std::move(b));
}

}  // namespace prionn::nn
