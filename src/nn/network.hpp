// Sequential network container with a classifier-oriented training API:
// fit() runs mini-batch epochs against softmax cross-entropy (the paper's
// models are classifiers over value bins), predict_classes()/
// predict_probabilities() serve inference, and repeated fit() calls realise
// the paper's warm-start retraining protocol.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "nn/optimizer.hpp"

namespace prionn::nn {

struct FitOptions {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  bool shuffle = true;
  std::uint64_t shuffle_seed = 1;
  double gradient_clip = 0.0;  // 0 disables element-wise clipping
  /// Divergence guard: when > 0, a mini-batch whose global gradient L2
  /// norm exceeds this throws TrainingDiverged *before* the optimiser
  /// step, leaving the weights untouched (0 = off).
  double max_gradient_norm = 0.0;
  /// Learning-rate schedule: the optimiser's rate is multiplied by this
  /// factor after every epoch (1.0 = constant). The base rate is restored
  /// when fit() returns, so warm-start refits see the same schedule.
  double lr_decay_per_epoch = 1.0;
  /// Early stopping: stop when the epoch loss fails to improve by at
  /// least `min_loss_delta` for `patience` consecutive epochs (0 = off).
  std::size_t early_stop_patience = 0;
  double min_loss_delta = 1e-4;
};

struct FitReport {
  std::vector<double> epoch_loss;  // mean cross-entropy per epoch
  double final_loss() const {
    return epoch_loss.empty() ? 0.0 : epoch_loss.back();
  }
};

class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Append a layer (builder style): net.add(std::make_unique<Dense>(...)).
  Network& add(std::unique_ptr<Layer> layer);

  template <typename L, typename... Args>
  Network& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  std::size_t depth() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  std::size_t parameter_count() const;

  /// Shape of one output sample for one input sample shape.
  Shape output_shape(Shape input) const;

  /// Forward over a batch; training toggles dropout.
  Tensor forward(const Tensor& batch, bool training = false);

  /// Backward from a loss gradient; returns gradient w.r.t. the input batch.
  Tensor backward(const Tensor& grad_output);

  void zero_gradients();
  std::vector<Tensor*> parameters() const;
  std::vector<Tensor*> gradients() const;

  /// Train as a classifier: inputs is the batch tensor (N leading), labels
  /// are class indices. Warm start: calling fit again continues from the
  /// current weights (and the optimiser keeps its state).
  FitReport fit(const Tensor& inputs, std::span<const std::uint32_t> labels,
                Optimizer& opt, const FitOptions& options = {});

  /// One gradient step on one mini-batch; returns the batch loss. Throws
  /// TrainingDiverged on a non-finite loss or (when max_gradient_norm > 0)
  /// an exploding gradient, before any weight is updated.
  double train_batch(const Tensor& inputs,
                     std::span<const std::uint32_t> labels, Optimizer& opt,
                     double gradient_clip = 0.0,
                     double max_gradient_norm = 0.0);

  /// Argmax class per sample.
  std::vector<std::uint32_t> predict_classes(const Tensor& inputs);
  /// Softmax probability rows (N x C).
  Tensor predict_probabilities(const Tensor& inputs);

  /// Argmax class plus its softmax probability, per sample. One forward
  /// pass and no N x C probability tensor — the serving batch path wants
  /// both the class and a confidence without paying for the full softmax
  /// materialisation.
  struct Top1 {
    std::uint32_t cls = 0;
    double probability = 0.0;  // max softmax probability, (0, 1]
  };
  std::vector<Top1> predict_top1(const Tensor& inputs);

  /// Fraction of samples whose argmax matches the label.
  double accuracy(const Tensor& inputs,
                  std::span<const std::uint32_t> labels);

  /// One-line structural summary for logs.
  std::string summary(const Shape& input_sample) const;

  void save(std::ostream& os) const;
  static Network load(std::istream& is);

 private:
  /// Gather rows `idx` of a batch tensor into a contiguous sub-batch.
  static Tensor gather(const Tensor& batch, std::span<const std::size_t> idx);

  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace prionn::nn
