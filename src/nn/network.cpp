#include "nn/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace prionn::nn {

Network& Network::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Network::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

std::size_t Network::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l->parameter_count();
  return n;
}

Shape Network::output_shape(Shape input) const {
  for (const auto& l : layers_) input = l->output_shape(input);
  return input;
}

namespace {

// Per-layer-kind accumulated time. Only reached when layer timing is on,
// so a mutex-guarded registry lookup per layer is acceptable; the
// always-on path below pays one relaxed atomic load per forward/backward.
void account_layer_ns(const char* direction, const std::string& kind,
                      std::uint64_t ns) {
  obs::registry()
      .counter("prionn_nn_" + std::string(direction) + "_ns_total_" + kind,
               "accumulated " + std::string(direction) +
                   " time in this layer kind, nanoseconds")
      .inc(ns);
}

}  // namespace

Tensor Network::forward(const Tensor& batch, bool training) {
  if (obs::layer_timing_enabled()) {
    Tensor x = batch;
    for (const auto& l : layers_) {
      util::Timer timer;
      x = l->forward(x, training);
      account_layer_ns("forward", l->kind(), timer.elapsed_ns());
    }
    return x;
  }
  Tensor x = batch;
  for (const auto& l : layers_) x = l->forward(x, training);
  return x;
}

Tensor Network::backward(const Tensor& grad_output) {
  if (obs::layer_timing_enabled()) {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      util::Timer timer;
      g = (*it)->backward(g);
      account_layer_ns("backward", (*it)->kind(), timer.elapsed_ns());
    }
    return g;
  }
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Network::zero_gradients() {
  for (const auto& l : layers_) l->zero_gradients();
}

std::vector<Tensor*> Network::parameters() const {
  std::vector<Tensor*> out;
  for (const auto& l : layers_)
    for (Tensor* p : l->parameters()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Network::gradients() const {
  std::vector<Tensor*> out;
  for (const auto& l : layers_)
    for (Tensor* g : l->gradients()) out.push_back(g);
  return out;
}

Tensor Network::gather(const Tensor& batch,
                       std::span<const std::size_t> idx) {
  const std::size_t sample = batch.size() / batch.dim(0);
  Shape shape = batch.shape();
  shape[0] = idx.size();
  Tensor out(std::move(shape));
  for (std::size_t i = 0; i < idx.size(); ++i)
    std::copy_n(batch.data() + idx[i] * sample, sample,
                out.data() + i * sample);
  return out;
}

double Network::train_batch(const Tensor& inputs,
                            std::span<const std::uint32_t> labels,
                            Optimizer& opt, double gradient_clip,
                            double max_gradient_norm) {
  zero_gradients();
  const Tensor logits = forward(inputs, /*training=*/true);
  LossResult loss = softmax_cross_entropy(logits, labels);
  backward(loss.grad);
  if (gradient_clip > 0.0) {
    for (Tensor* g : gradients())
      tensor::clip_inplace(g->span(), static_cast<float>(gradient_clip));
  }
  if (max_gradient_norm > 0.0) {
    double sq = 0.0;
    for (const Tensor* g : gradients())
      for (const float v : g->span()) sq += static_cast<double>(v) * v;
    const double norm = std::sqrt(sq);
    if (!std::isfinite(norm) || norm > max_gradient_norm)
      throw TrainingDiverged("Network::train_batch: gradient norm " +
                             std::to_string(norm) + " exceeds limit " +
                             std::to_string(max_gradient_norm));
  }
  opt.step(parameters(), gradients());
  return loss.value;
}

FitReport Network::fit(const Tensor& inputs,
                       std::span<const std::uint32_t> labels, Optimizer& opt,
                       const FitOptions& options) {
  const std::size_t n = inputs.dim(0);
  if (labels.size() != n)
    throw std::invalid_argument("Network::fit: label count mismatch");
  if (options.batch_size == 0)
    throw std::invalid_argument("Network::fit: batch_size must be > 0");

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng(options.shuffle_seed);

  FitReport report;
  report.epoch_loss.reserve(options.epochs);
  const double base_lr = opt.learning_rate();
  double best_loss = std::numeric_limits<double>::infinity();
  std::size_t epochs_without_improvement = 0;
  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.shuffle) rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += options.batch_size) {
      const std::size_t count = std::min(options.batch_size, n - start);
      const std::span<const std::size_t> idx(order.data() + start, count);
      const Tensor x = gather(inputs, idx);
      std::vector<std::uint32_t> y(count);
      for (std::size_t i = 0; i < count; ++i) y[i] = labels[idx[i]];
      loss_sum += train_batch(x, y, opt, options.gradient_clip,
                              options.max_gradient_norm);
      ++batches;
    }
    const double epoch_loss =
        batches ? loss_sum / static_cast<double>(batches) : 0.0;
    report.epoch_loss.push_back(epoch_loss);

    if (options.lr_decay_per_epoch != 1.0)
      opt.set_learning_rate(opt.learning_rate() *
                            options.lr_decay_per_epoch);
    if (options.early_stop_patience > 0) {
      if (epoch_loss < best_loss - options.min_loss_delta) {
        best_loss = epoch_loss;
        epochs_without_improvement = 0;
      } else if (++epochs_without_improvement >=
                 options.early_stop_patience) {
        break;
      }
    }
  }
  if (options.lr_decay_per_epoch != 1.0) opt.set_learning_rate(base_lr);
  return report;
}

std::vector<std::uint32_t> Network::predict_classes(const Tensor& inputs) {
  const Tensor logits = forward(inputs, /*training=*/false);
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  std::vector<std::uint32_t> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::uint32_t>(tensor::argmax(
        std::span<const float>(logits.data() + i * c, c)));
  return out;
}

Tensor Network::predict_probabilities(const Tensor& inputs) {
  return softmax_probabilities(forward(inputs, /*training=*/false));
}

std::vector<Network::Top1> Network::predict_top1(const Tensor& inputs) {
  const Tensor logits = forward(inputs, /*training=*/false);
  const std::size_t n = logits.dim(0), c = logits.dim(1);
  std::vector<Top1> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::span<const float> row(logits.data() + i * c, c);
    const std::size_t cls = tensor::argmax(row);
    // Stable softmax anchored at the winning logit: the argmax logit is
    // the row maximum, so every exponent is <= 0 and the sum is >= 1.
    double denom = 0.0;
    for (std::size_t j = 0; j < c; ++j)
      denom += std::exp(static_cast<double>(row[j]) -
                        static_cast<double>(row[cls]));
    out[i].cls = static_cast<std::uint32_t>(cls);
    out[i].probability = 1.0 / denom;
  }
  return out;
}

double Network::accuracy(const Tensor& inputs,
                         std::span<const std::uint32_t> labels) {
  const auto pred = predict_classes(inputs);
  if (pred.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == labels[i]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

std::string Network::summary(const Shape& input_sample) const {
  std::ostringstream os;
  Shape shape = input_sample;
  os << "input " << tensor::shape_to_string(shape) << "\n";
  for (const auto& l : layers_) {
    shape = l->output_shape(shape);
    os << "  " << l->kind() << " -> " << tensor::shape_to_string(shape)
       << " (" << l->parameter_count() << " params)\n";
  }
  os << "total parameters: " << parameter_count() << "\n";
  return os.str();
}

void Network::save(std::ostream& os) const { save_network(os, *this); }

Network Network::load(std::istream& is) { return load_network(is); }

}  // namespace prionn::nn
