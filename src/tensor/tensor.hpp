// Dense float32 n-dimensional array with row-major layout — the storage
// type behind the neural-network substrate. Kept deliberately simple: a
// contiguous, owning buffer plus a shape; views and broadcasting are not
// needed by this library and are omitted per the Core Guidelines advice to
// prefer the simplest abstraction that serves the callers.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace prionn::tensor {

using Shape = std::vector<std::size_t>;

std::size_t shape_size(const Shape& shape) noexcept;
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  /// 1-D tensor from values.
  static Tensor from_values(std::initializer_list<float> values);

  const Shape& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t dim(std::size_t axis) const { return shape_.at(axis); }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> span() noexcept { return data_; }
  std::span<const float> span() const noexcept { return data_; }

  float& operator[](std::size_t i) noexcept { return data_[i]; }
  float operator[](std::size_t i) const noexcept { return data_[i]; }

  /// Multi-index access (bounds-checked in debug builds only).
  float& at(std::size_t i0) noexcept { return data_[i0]; }
  float& at(std::size_t i0, std::size_t i1) noexcept {
    return data_[i0 * shape_[1] + i1];
  }
  float at(std::size_t i0, std::size_t i1) const noexcept {
    return data_[i0 * shape_[1] + i1];
  }
  float& at(std::size_t i0, std::size_t i1, std::size_t i2) noexcept {
    return data_[(i0 * shape_[1] + i1) * shape_[2] + i2];
  }
  float at(std::size_t i0, std::size_t i1, std::size_t i2) const noexcept {
    return data_[(i0 * shape_[1] + i1) * shape_[2] + i2];
  }
  float& at(std::size_t i0, std::size_t i1, std::size_t i2,
            std::size_t i3) noexcept {
    return data_[((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3];
  }
  float at(std::size_t i0, std::size_t i1, std::size_t i2,
           std::size_t i3) const noexcept {
    return data_[((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3];
  }

  void fill(float value) noexcept;
  /// Reinterpret the buffer under a new shape of identical total size.
  Tensor& reshape(Shape shape);
  /// Copy of row `r` of a rank-2 tensor as a rank-1 tensor.
  Tensor row(std::size_t r) const;

  /// In-place arithmetic (element-wise; shapes must match).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar) noexcept;

  /// y += alpha * x for matching shapes.
  void axpy(float alpha, const Tensor& x);

  bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

  /// Binary serialisation (little-endian host assumed, as everywhere in
  /// this library).
  void save(std::ostream& os) const;
  static Tensor load(std::istream& is);

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace prionn::tensor
