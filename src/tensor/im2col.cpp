#include "tensor/im2col.hpp"

namespace prionn::tensor {

void im2col_strided(const Conv2dGeom& g, const float* image, float* cols,
                    std::size_t ld) noexcept {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    const float* plane = image + c * g.height * g.width;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out = cols + row * ld;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          // Signed arithmetic: padding can push the tap before row/col 0.
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride_h + kh) -
              static_cast<std::ptrdiff_t>(g.pad_h);
          const bool y_ok =
              iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.height);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride_w + kw) -
                static_cast<std::ptrdiff_t>(g.pad_w);
            const bool x_ok =
                ix >= 0 && ix < static_cast<std::ptrdiff_t>(g.width);
            out[oy * ow + ox] =
                (y_ok && x_ok)
                    ? plane[static_cast<std::size_t>(iy) * g.width +
                            static_cast<std::size_t>(ix)]
                    : 0.0f;
          }
        }
      }
    }
  }
}

void im2col(const Conv2dGeom& g, const float* image, float* cols) noexcept {
  im2col_strided(g, image, cols, g.patch_cols());
}

void col2im_strided(const Conv2dGeom& g, const float* cols, std::size_t ld,
                    float* image_grad) noexcept {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    float* plane = image_grad + c * g.height * g.width;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in = cols + row * ld;
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride_h + kh) -
              static_cast<std::ptrdiff_t>(g.pad_h);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.height)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride_w + kw) -
                static_cast<std::ptrdiff_t>(g.pad_w);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.width))
              continue;
            plane[static_cast<std::size_t>(iy) * g.width +
                  static_cast<std::size_t>(ix)] += in[oy * ow + ox];
          }
        }
      }
    }
  }
}

void col2im(const Conv2dGeom& g, const float* cols,
            float* image_grad) noexcept {
  col2im_strided(g, cols, g.patch_cols(), image_grad);
}

void im2col_1d_strided(const Conv1dGeom& g, const float* signal, float* cols,
                       std::size_t ld) noexcept {
  const std::size_t ol = g.out_len();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    const float* lane = signal + c * g.length;
    for (std::size_t k = 0; k < g.kernel; ++k, ++row) {
      float* out = cols + row * ld;
      for (std::size_t o = 0; o < ol; ++o) {
        const std::ptrdiff_t i = static_cast<std::ptrdiff_t>(o * g.stride + k) -
                                 static_cast<std::ptrdiff_t>(g.pad);
        out[o] = (i >= 0 && i < static_cast<std::ptrdiff_t>(g.length))
                     ? lane[static_cast<std::size_t>(i)]
                     : 0.0f;
      }
    }
  }
}

void im2col_1d(const Conv1dGeom& g, const float* signal,
               float* cols) noexcept {
  im2col_1d_strided(g, signal, cols, g.patch_cols());
}

void col2im_1d_strided(const Conv1dGeom& g, const float* cols,
                       std::size_t ld, float* signal_grad) noexcept {
  const std::size_t ol = g.out_len();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    float* lane = signal_grad + c * g.length;
    for (std::size_t k = 0; k < g.kernel; ++k, ++row) {
      const float* in = cols + row * ld;
      for (std::size_t o = 0; o < ol; ++o) {
        const std::ptrdiff_t i = static_cast<std::ptrdiff_t>(o * g.stride + k) -
                                 static_cast<std::ptrdiff_t>(g.pad);
        if (i >= 0 && i < static_cast<std::ptrdiff_t>(g.length))
          lane[static_cast<std::size_t>(i)] += in[o];
      }
    }
  }
}

void col2im_1d(const Conv1dGeom& g, const float* cols,
               float* signal_grad) noexcept {
  col2im_1d_strided(g, cols, g.patch_cols(), signal_grad);
}

}  // namespace prionn::tensor
