#include "tensor/tensor.hpp"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace prionn::tensor {

std::size_t shape_size(const Shape& shape) noexcept {
  std::size_t n = 1;
  for (const std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ")";
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_size(shape_))
    throw std::invalid_argument("Tensor: data size does not match shape " +
                                shape_to_string(shape_));
}

Tensor Tensor::from_values(std::initializer_list<float> values) {
  return Tensor({values.size()}, std::vector<float>(values));
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::reshape(Shape shape) {
  if (shape_size(shape) != data_.size())
    throw std::invalid_argument("Tensor::reshape: size mismatch, have " +
                                shape_to_string(shape_) + " want " +
                                shape_to_string(shape));
  shape_ = std::move(shape);
  return *this;
}

Tensor Tensor::row(std::size_t r) const {
  if (rank() != 2) throw std::logic_error("Tensor::row: rank-2 only");
  const std::size_t cols = shape_[1];
  Tensor out({cols});
  std::copy_n(data_.data() + r * cols, cols, out.data());
  return out;
}

Tensor& Tensor::operator+=(const Tensor& other) {
  if (!same_shape(other))
    throw std::invalid_argument("Tensor::+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  if (!same_shape(other))
    throw std::invalid_argument("Tensor::-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) noexcept {
  for (float& x : data_) x *= scalar;
  return *this;
}

void Tensor::axpy(float alpha, const Tensor& x) {
  if (!same_shape(x)) throw std::invalid_argument("Tensor::axpy: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * x.data_[i];
}

void Tensor::save(std::ostream& os) const {
  const auto rank64 = static_cast<std::uint64_t>(shape_.size());
  os.write(reinterpret_cast<const char*>(&rank64), sizeof(rank64));
  for (const std::size_t d : shape_) {
    const auto d64 = static_cast<std::uint64_t>(d);
    os.write(reinterpret_cast<const char*>(&d64), sizeof(d64));
  }
  os.write(reinterpret_cast<const char*>(data_.data()),
           static_cast<std::streamsize>(data_.size() * sizeof(float)));
}

Tensor Tensor::load(std::istream& is) {
  std::uint64_t rank64 = 0;
  is.read(reinterpret_cast<char*>(&rank64), sizeof(rank64));
  if (!is || rank64 > 8)
    throw std::runtime_error("Tensor::load: corrupt header");
  // A corrupt header must not become an allocation bomb, and the element
  // count must be computed overflow-checked: dims like {3, 2^63} wrap
  // size_t multiplication to a tiny product whose buffer later code would
  // index far past.
  constexpr std::uint64_t kMaxElements = 1ull << 28;  // 1 GiB of floats
  std::uint64_t elements = 1;
  Shape shape(rank64);
  for (auto& d : shape) {
    std::uint64_t d64 = 0;
    is.read(reinterpret_cast<char*>(&d64), sizeof(d64));
    if (!is) throw std::runtime_error("Tensor::load: corrupt header");
    if (d64 != 0 && elements > kMaxElements / d64)
      throw std::runtime_error("Tensor::load: implausible shape");
    elements *= d64;
    d = static_cast<std::size_t>(d64);
  }
  Tensor out(std::move(shape));
  is.read(reinterpret_cast<char*>(out.data()),
          static_cast<std::streamsize>(out.size() * sizeof(float)));
  if (!is) throw std::runtime_error("Tensor::load: truncated payload");
  return out;
}

}  // namespace prionn::tensor
