// im2col / col2im lowering: turns convolution into GEMM, the classic
// approach used by Caffe-era frameworks and the right trade-off for the
// small images (64 x 64 script grids) this library convolves.
#pragma once

#include <cstddef>

namespace prionn::tensor {

struct Conv2dGeom {
  std::size_t channels = 1;
  std::size_t height = 1, width = 1;
  std::size_t kernel_h = 3, kernel_w = 3;
  std::size_t stride_h = 1, stride_w = 1;
  std::size_t pad_h = 0, pad_w = 0;

  std::size_t out_h() const noexcept {
    return (height + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  std::size_t out_w() const noexcept {
    return (width + 2 * pad_w - kernel_w) / stride_w + 1;
  }
  /// Rows of the lowered patch matrix: one per (c, kh, kw) tap.
  std::size_t patch_rows() const noexcept {
    return channels * kernel_h * kernel_w;
  }
  /// Columns of the lowered patch matrix: one per output pixel.
  std::size_t patch_cols() const noexcept { return out_h() * out_w(); }
};

/// Lower `image` (C x H x W, row-major) to `cols` (patch_rows x patch_cols).
/// Out-of-bounds taps (padding) contribute zero.
void im2col(const Conv2dGeom& g, const float* image, float* cols) noexcept;

/// Strided variant for batched lowering: patch row r of this sample is
/// written at cols[r * ld ..], so several samples can share one wide patch
/// matrix (each occupying a contiguous column block) and be multiplied by
/// the kernel in a single GEMM.
void im2col_strided(const Conv2dGeom& g, const float* image, float* cols,
                    std::size_t ld) noexcept;

/// Scatter-add the lowered gradient back to image space (the adjoint of
/// im2col). `image_grad` must be zeroed by the caller beforehand if it
/// should not accumulate.
void col2im(const Conv2dGeom& g, const float* cols,
            float* image_grad) noexcept;

/// Strided adjoint matching im2col_strided.
void col2im_strided(const Conv2dGeom& g, const float* cols, std::size_t ld,
                    float* image_grad) noexcept;

struct Conv1dGeom {
  std::size_t channels = 1;
  std::size_t length = 1;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_len() const noexcept {
    return (length + 2 * pad - kernel) / stride + 1;
  }
  std::size_t patch_rows() const noexcept { return channels * kernel; }
  std::size_t patch_cols() const noexcept { return out_len(); }
};

void im2col_1d(const Conv1dGeom& g, const float* signal,
               float* cols) noexcept;
void im2col_1d_strided(const Conv1dGeom& g, const float* signal, float* cols,
                       std::size_t ld) noexcept;
void col2im_1d(const Conv1dGeom& g, const float* cols,
               float* signal_grad) noexcept;
void col2im_1d_strided(const Conv1dGeom& g, const float* cols,
                       std::size_t ld, float* signal_grad) noexcept;

}  // namespace prionn::tensor
