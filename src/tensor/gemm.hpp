// Single-precision general matrix multiply, the computational core of both
// the dense layers and the im2col convolutions. Cache-blocked with a
// vectorisable micro-kernel and optional thread-pool row parallelism.
#pragma once

#include <cstddef>

namespace prionn::tensor {

/// C[m x n] = alpha * A[m x k] * B[k x n] + beta * C.  Row-major, no alias.
void gemm(std::size_t m, std::size_t k, std::size_t n, float alpha,
          const float* a, const float* b, float beta, float* c);

/// C[m x n] = alpha * A^T[k x m] * B[k x n] + beta * C (A stored k x m).
void gemm_at(std::size_t m, std::size_t k, std::size_t n, float alpha,
             const float* a, const float* b, float beta, float* c);

/// C[m x n] = alpha * A[m x k] * B^T[n x k] + beta * C (B stored n x k).
void gemm_bt(std::size_t m, std::size_t k, std::size_t n, float alpha,
             const float* a, const float* b, float beta, float* c);

/// y[m] = A[m x k] * x[k] (+ y if beta == 1).
void gemv(std::size_t m, std::size_t k, const float* a, const float* x,
          float beta, float* y);

}  // namespace prionn::tensor
