#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prionn::tensor {

std::size_t argmax(std::span<const float> xs) noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < xs.size(); ++i)
    if (xs[i] > xs[best]) best = i;
  return best;
}

void softmax_inplace(std::span<float> xs) noexcept {
  if (xs.empty()) return;
  const float peak = *std::max_element(xs.begin(), xs.end());
  float total = 0.0f;
  for (float& x : xs) {
    x = std::exp(x - peak);
    total += x;
  }
  const float inv = 1.0f / total;
  for (float& x : xs) x *= inv;
}

void softmax_rows_inplace(Tensor& t) {
  if (t.rank() != 2)
    throw std::invalid_argument("softmax_rows_inplace: rank-2 required");
  const std::size_t rows = t.dim(0), cols = t.dim(1);
  for (std::size_t r = 0; r < rows; ++r)
    softmax_inplace(std::span<float>(t.data() + r * cols, cols));
}

float sum(std::span<const float> xs) noexcept {
  float acc = 0.0f;
  for (const float x : xs) acc += x;
  return acc;
}

float dot(std::span<const float> a, std::span<const float> b) noexcept {
  float acc = 0.0f;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float squared_norm(std::span<const float> xs) noexcept {
  float acc = 0.0f;
  for (const float x : xs) acc += x * x;
  return acc;
}

std::size_t clip_inplace(std::span<float> xs, float limit) noexcept {
  std::size_t clipped = 0;
  for (float& x : xs) {
    if (x > limit) {
      x = limit;
      ++clipped;
    } else if (x < -limit) {
      x = -limit;
      ++clipped;
    }
  }
  return clipped;
}

}  // namespace prionn::tensor
