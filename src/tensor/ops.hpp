// Element-wise and reduction primitives shared by the NN layers.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.hpp"

namespace prionn::tensor {

/// Index of the maximum element (first on ties); span must be non-empty.
std::size_t argmax(std::span<const float> xs) noexcept;

/// Numerically stable in-place softmax over a span.
void softmax_inplace(std::span<float> xs) noexcept;

/// Row-wise softmax of a rank-2 tensor, in place.
void softmax_rows_inplace(Tensor& t);

float sum(std::span<const float> xs) noexcept;
float dot(std::span<const float> a, std::span<const float> b) noexcept;

/// Squared L2 norm.
float squared_norm(std::span<const float> xs) noexcept;

/// Clip every element into [-limit, limit]; returns count of clipped values.
std::size_t clip_inplace(std::span<float> xs, float limit) noexcept;

}  // namespace prionn::tensor
