#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

#include "util/thread_pool.hpp"

namespace prionn::tensor {

namespace {

// Register-tiled micro-kernel: an MR x NR accumulator block lives in
// vector registers for the whole k-strip, so each element of C is loaded
// and stored once per k-block instead of once per k iteration. NR = 32
// floats is two AVX-512 lanes (or four AVX2 lanes); MR = 4 keeps
// MR * NR / 32 + spare well under the register budget.
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 32;
// Cache blocking: a kKC x kNC panel of B (~512 KiB) fits in L2.
constexpr std::size_t kKC = 256;
constexpr std::size_t kNC = 512;

inline void micro_full(std::size_t kc, float alpha, const float* a,
                       std::size_t lda, const float* b, std::size_t ldb,
                       float* c, std::size_t ldc) {
  float acc[kMR][kNR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* bp = b + p * ldb;
    for (std::size_t i = 0; i < kMR; ++i) {
      const float aip = a[i * lda + p];
      for (std::size_t j = 0; j < kNR; ++j) acc[i][j] += aip * bp[j];
    }
  }
  for (std::size_t i = 0; i < kMR; ++i)
    for (std::size_t j = 0; j < kNR; ++j)
      c[i * ldc + j] += alpha * acc[i][j];
}

/// Edge kernel for remainder tiles (mr <= kMR, nr <= kNR).
inline void micro_edge(std::size_t mr, std::size_t nr, std::size_t kc,
                       float alpha, const float* a, std::size_t lda,
                       const float* b, std::size_t ldb, float* c,
                       std::size_t ldc) {
  float acc[kMR][kNR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* bp = b + p * ldb;
    for (std::size_t i = 0; i < mr; ++i) {
      const float aip = a[i * lda + p];
      for (std::size_t j = 0; j < nr; ++j) acc[i][j] += aip * bp[j];
    }
  }
  for (std::size_t i = 0; i < mr; ++i)
    for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] += alpha * acc[i][j];
}

void gemm_rows(std::size_t row_lo, std::size_t row_hi, std::size_t k,
               std::size_t n, float alpha, const float* a, const float* b,
               float beta, float* c) {
  for (std::size_t i = row_lo; i < row_hi; ++i) {
    float* ci = c + i * n;
    if (beta == 0.0f) {
      std::fill(ci, ci + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
  }
  for (std::size_t pc = 0; pc < k; pc += kKC) {
    const std::size_t kc = std::min(kKC, k - pc);
    for (std::size_t jc = 0; jc < n; jc += kNC) {
      const std::size_t nc = std::min(kNC, n - jc);
      for (std::size_t i = row_lo; i < row_hi; i += kMR) {
        const std::size_t mr = std::min(kMR, row_hi - i);
        const float* ai = a + i * k + pc;
        for (std::size_t j = 0; j < nc; j += kNR) {
          const std::size_t nr = std::min(kNR, nc - j);
          const float* bj = b + pc * n + jc + j;
          float* cij = c + i * n + jc + j;
          if (mr == kMR && nr == kNR)
            micro_full(kc, alpha, ai, k, bj, n, cij, n);
          else
            micro_edge(mr, nr, kc, alpha, ai, k, bj, n, cij, n);
        }
      }
    }
  }
}

}  // namespace

void gemm(std::size_t m, std::size_t k, std::size_t n, float alpha,
          const float* a, const float* b, float beta, float* c) {
  // Parallelise over row blocks only when the work amortises the fork cost.
  const std::size_t flops = 2 * m * k * n;
  auto& pool = util::ThreadPool::global();
  if (flops < (1u << 22) || pool.size() <= 1 || m < 2 * pool.size()) {
    gemm_rows(0, m, k, n, alpha, a, b, beta, c);
    return;
  }
  pool.parallel_for_chunks(0, m, [&](std::size_t lo, std::size_t hi) {
    gemm_rows(lo, hi, k, n, alpha, a, b, beta, c);
  });
}

void gemm_at(std::size_t m, std::size_t k, std::size_t n, float alpha,
             const float* a, const float* b, float beta, float* c) {
  // A^T access is strided; materialise the transpose once so the main loop
  // stays unit-stride. m*k is small relative to the m*k*n multiply.
  thread_local std::vector<float> at;
  if (at.size() < m * k) at.resize(m * k);
  for (std::size_t p = 0; p < k; ++p)
    for (std::size_t i = 0; i < m; ++i) at[i * k + p] = a[p * m + i];
  gemm(m, k, n, alpha, at.data(), b, beta, c);
}

namespace {

/// Reusable per-thread transpose scratch: gemm_at/gemm_bt are called per
/// mini-batch from the layers, so a monotonically growing buffer avoids
/// allocator churn on the hot path.
std::vector<float>& transpose_scratch() {
  thread_local std::vector<float> scratch;
  return scratch;
}

/// Cache-blocked out-of-place transpose: dst[j * rows + i] = src[i * cols + j].
void transpose_into(const float* src, std::size_t rows, std::size_t cols,
                    float* dst) noexcept {
  constexpr std::size_t kTile = 32;
  for (std::size_t i0 = 0; i0 < rows; i0 += kTile) {
    const std::size_t i1 = std::min(rows, i0 + kTile);
    for (std::size_t j0 = 0; j0 < cols; j0 += kTile) {
      const std::size_t j1 = std::min(cols, j0 + kTile);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t j = j0; j < j1; ++j)
          dst[j * rows + i] = src[i * cols + j];
    }
  }
}

}  // namespace

void gemm_bt(std::size_t m, std::size_t k, std::size_t n, float alpha,
             const float* a, const float* b, float beta, float* c) {
  // Materialise B (stored n x k) as (k x n) once and reuse the tiled GEMM:
  // the transpose is O(k n) against the O(m k n) multiply and the scratch
  // is recycled across calls.
  auto& bt = transpose_scratch();
  if (bt.size() < k * n) bt.resize(k * n);
  transpose_into(b, n, k, bt.data());
  gemm(m, k, n, alpha, a, bt.data(), beta, c);
}

void gemv(std::size_t m, std::size_t k, const float* a, const float* x,
          float beta, float* y) {
  for (std::size_t i = 0; i < m; ++i) {
    float acc = beta == 0.0f ? 0.0f : beta * y[i];
    const float* ai = a + i * k;
    for (std::size_t p = 0; p < k; ++p) acc += ai[p] * x[p];
    y[i] = acc;
  }
}

}  // namespace prionn::tensor
