// Character-level word2vec (skip-gram with negative sampling, Mikolov et
// al. 2013) — the paper's fourth data-mapping transform. Trained on the
// corpus of job scripts, it embeds each ASCII character into a small dense
// vector carrying the contexts the character appears in.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string_view>
#include <vector>

#include "embed/char_vocab.hpp"
#include "util/rng.hpp"

namespace prionn::embed {

/// Training architecture (Mikolov et al. 2013): skip-gram predicts the
/// context from the centre character; CBOW predicts the centre character
/// from the averaged context. Skip-gram is the default (it is what the
/// reference word2vec uses for small corpora).
enum class Word2VecAlgorithm { kSkipGram, kCbow };

struct Word2VecOptions {
  Word2VecAlgorithm algorithm = Word2VecAlgorithm::kSkipGram;
  std::size_t dimension = 4;     // paper's chosen output vector size
  std::size_t window = 2;        // context radius in characters
  std::size_t negatives = 5;     // negative samples per positive pair
  std::size_t epochs = 2;
  double learning_rate = 0.025;
  double min_learning_rate = 1e-4;
  double subsample_threshold = 1e-3;  // frequent-token subsampling (t)
  /// Standardise each embedding dimension to zero mean / unit variance
  /// over the corpus (weighted by token frequency) after training, so the
  /// CNN sees well-conditioned inputs regardless of the embedding's raw
  /// scale.
  bool standardize = true;
  std::uint64_t seed = 42;
};

/// Lookup table mapping character token -> embedding vector.
class CharEmbedding {
 public:
  CharEmbedding() = default;
  CharEmbedding(std::size_t dimension, std::vector<float> table);

  std::size_t dimension() const noexcept { return dimension_; }
  bool empty() const noexcept { return table_.empty(); }

  std::span<const float> vector(std::size_t token) const noexcept {
    const std::size_t t = token < CharVocab::kSize ? token : 0;
    return {table_.data() + t * dimension_, dimension_};
  }
  std::span<const float> vector_of(char c) const noexcept {
    return vector(CharVocab::token(c));
  }

  /// Cosine similarity between two characters' embeddings.
  double similarity(char a, char b) const noexcept;

  void save(std::ostream& os) const;
  static CharEmbedding load(std::istream& is);

 private:
  std::size_t dimension_ = 0;
  std::vector<float> table_;  // kSize x dimension, row-major
};

/// Train skip-gram embeddings over tokenised scripts.
class Word2VecTrainer {
 public:
  explicit Word2VecTrainer(Word2VecOptions options = {});

  /// Train on raw script texts (tokenised internally).
  CharEmbedding train(std::span<const std::string_view> corpus);
  CharEmbedding train(const std::vector<std::string>& corpus);

  /// Train on pre-tokenised documents.
  CharEmbedding train_tokens(
      const std::vector<std::vector<std::size_t>>& corpus);

  const Word2VecOptions& options() const noexcept { return options_; }

 private:
  Word2VecOptions options_;
};

}  // namespace prionn::embed
