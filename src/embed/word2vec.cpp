#include "embed/word2vec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace prionn::embed {

namespace {

constexpr std::size_t kV = CharVocab::kSize;

inline float fast_sigmoid(float x) noexcept {
  // Clamp to the region where the exact value is representable; outside it
  // the gradient is numerically zero anyway.
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

/// Unigram^(3/4) negative-sampling table, as in the reference word2vec.
class NegativeTable {
 public:
  NegativeTable(const std::array<std::size_t, kV>& counts, std::size_t size)
      : table_(size) {
    double total = 0.0;
    std::array<double, kV> weights{};
    for (std::size_t t = 0; t < kV; ++t) {
      weights[t] = std::pow(static_cast<double>(counts[t]), 0.75);
      total += weights[t];
    }
    if (total <= 0.0) {
      for (auto& slot : table_) slot = 0;
      return;
    }
    std::size_t t = 0;
    double cumulative = weights[0] / total;
    for (std::size_t i = 0; i < size; ++i) {
      table_[i] = t;
      if (static_cast<double>(i + 1) / static_cast<double>(size) >
              cumulative &&
          t + 1 < kV) {
        ++t;
        cumulative += weights[t] / total;
      }
    }
  }

  std::size_t sample(util::Rng& rng) const noexcept {
    return table_[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(table_.size()) - 1))];
  }

 private:
  std::vector<std::size_t> table_;
};

}  // namespace

CharEmbedding::CharEmbedding(std::size_t dimension, std::vector<float> table)
    : dimension_(dimension), table_(std::move(table)) {
  if (table_.size() != kV * dimension_)
    throw std::invalid_argument("CharEmbedding: table size mismatch");
}

double CharEmbedding::similarity(char a, char b) const noexcept {
  const auto va = vector_of(a), vb = vector_of(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < dimension_; ++i) {
    dot += static_cast<double>(va[i]) * vb[i];
    na += static_cast<double>(va[i]) * va[i];
    nb += static_cast<double>(vb[i]) * vb[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0.0 ? dot / denom : 0.0;
}

void CharEmbedding::save(std::ostream& os) const {
  const auto dim = static_cast<std::uint64_t>(dimension_);
  os.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  os.write(reinterpret_cast<const char*>(table_.data()),
           static_cast<std::streamsize>(table_.size() * sizeof(float)));
}

CharEmbedding CharEmbedding::load(std::istream& is) {
  std::uint64_t dim = 0;
  is.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  if (!is || dim == 0 || dim > 4096)
    throw std::runtime_error("CharEmbedding::load: corrupt header");
  std::vector<float> table(kV * dim);
  is.read(reinterpret_cast<char*>(table.data()),
          static_cast<std::streamsize>(table.size() * sizeof(float)));
  if (!is) throw std::runtime_error("CharEmbedding::load: truncated payload");
  return CharEmbedding(static_cast<std::size_t>(dim), std::move(table));
}

Word2VecTrainer::Word2VecTrainer(Word2VecOptions options)
    : options_(options) {
  if (options_.dimension == 0)
    throw std::invalid_argument("Word2Vec: dimension must be > 0");
  if (options_.window == 0)
    throw std::invalid_argument("Word2Vec: window must be > 0");
}

CharEmbedding Word2VecTrainer::train(
    std::span<const std::string_view> corpus) {
  std::vector<std::vector<std::size_t>> docs;
  docs.reserve(corpus.size());
  for (const auto text : corpus) docs.push_back(CharVocab::tokenize(text));
  return train_tokens(docs);
}

CharEmbedding Word2VecTrainer::train(const std::vector<std::string>& corpus) {
  std::vector<std::vector<std::size_t>> docs;
  docs.reserve(corpus.size());
  for (const auto& text : corpus) docs.push_back(CharVocab::tokenize(text));
  return train_tokens(docs);
}

CharEmbedding Word2VecTrainer::train_tokens(
    const std::vector<std::vector<std::size_t>>& corpus) {
  const std::size_t dim = options_.dimension;
  util::Rng rng(options_.seed);

  // Input (embedding) and output (context) matrices, kV x dim.
  std::vector<float> in(kV * dim), out(kV * dim, 0.0f);
  const float init_scale = 0.5f / static_cast<float>(dim);
  for (float& w : in)
    w = static_cast<float>(rng.uniform(-init_scale, init_scale));

  const auto counts = CharVocab::count_frequencies(corpus);
  std::size_t total_tokens = 0;
  for (const std::size_t c : counts) total_tokens += c;
  if (total_tokens == 0) return CharEmbedding(dim, std::move(in));

  const NegativeTable negatives(counts, 1 << 16);

  // Frequent-token subsampling probabilities (keep-probability per token).
  std::array<double, kV> keep{};
  for (std::size_t t = 0; t < kV; ++t) {
    const double f =
        static_cast<double>(counts[t]) / static_cast<double>(total_tokens);
    keep[t] = f > 0.0
                  ? std::min(1.0, std::sqrt(options_.subsample_threshold / f) +
                                      options_.subsample_threshold / f)
                  : 1.0;
  }

  const std::size_t pairs_per_epoch = total_tokens;
  const std::size_t total_steps = options_.epochs * pairs_per_epoch;
  std::size_t step = 0;
  std::vector<float> grad_center(dim);
  std::vector<float> hidden(dim);  // CBOW's averaged context embedding

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const auto& doc : corpus) {
      // Apply subsampling to form the effective sentence.
      std::vector<std::size_t> sent;
      sent.reserve(doc.size());
      for (const std::size_t t : doc)
        if (rng.uniform() < keep[t < kV ? t : 0]) sent.push_back(t);

      for (std::size_t pos = 0; pos < sent.size(); ++pos, ++step) {
        const double progress =
            static_cast<double>(step) / static_cast<double>(total_steps + 1);
        const auto lr = static_cast<float>(
            std::max(options_.min_learning_rate,
                     options_.learning_rate * (1.0 - progress)));

        // Dynamic window as in the reference implementation.
        const std::size_t reduced = static_cast<std::size_t>(rng.uniform_int(
                                        1, static_cast<std::int64_t>(
                                               options_.window)));
        const std::size_t lo = pos >= reduced ? pos - reduced : 0;
        const std::size_t hi = std::min(sent.size(), pos + reduced + 1);
        const std::size_t center = sent[pos];

        if (options_.algorithm == Word2VecAlgorithm::kCbow) {
          // CBOW: the averaged context embedding predicts the centre.
          std::fill(hidden.begin(), hidden.end(), 0.0f);
          std::size_t ctx_count = 0;
          for (std::size_t ctx = lo; ctx < hi; ++ctx) {
            if (ctx == pos) continue;
            const float* v = in.data() + sent[ctx] * dim;
            for (std::size_t d = 0; d < dim; ++d) hidden[d] += v[d];
            ++ctx_count;
          }
          if (ctx_count == 0) continue;
          const float inv = 1.0f / static_cast<float>(ctx_count);
          for (std::size_t d = 0; d < dim; ++d) hidden[d] *= inv;

          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          for (std::size_t k = 0; k <= options_.negatives; ++k) {
            std::size_t target;
            float label;
            if (k == 0) {
              target = center;
              label = 1.0f;
            } else {
              target = negatives.sample(rng);
              if (target == center) continue;
              label = 0.0f;
            }
            float* v_out = out.data() + target * dim;
            float score = 0.0f;
            for (std::size_t d = 0; d < dim; ++d)
              score += hidden[d] * v_out[d];
            const float g = lr * (label - fast_sigmoid(score));
            for (std::size_t d = 0; d < dim; ++d) {
              grad_center[d] += g * v_out[d];
              v_out[d] += g * hidden[d];
            }
          }
          for (std::size_t ctx = lo; ctx < hi; ++ctx) {
            if (ctx == pos) continue;
            float* v = in.data() + sent[ctx] * dim;
            for (std::size_t d = 0; d < dim; ++d)
              v[d] += grad_center[d] * inv;
          }
          continue;
        }

        // Skip-gram: the centre embedding predicts each context token.
        float* v_in = in.data() + center * dim;
        for (std::size_t ctx = lo; ctx < hi; ++ctx) {
          if (ctx == pos) continue;
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          // One positive plus `negatives` negative targets.
          for (std::size_t k = 0; k <= options_.negatives; ++k) {
            std::size_t target;
            float label;
            if (k == 0) {
              target = sent[ctx];
              label = 1.0f;
            } else {
              target = negatives.sample(rng);
              if (target == sent[ctx]) continue;
              label = 0.0f;
            }
            float* v_out = out.data() + target * dim;
            float score = 0.0f;
            for (std::size_t d = 0; d < dim; ++d) score += v_in[d] * v_out[d];
            const float g = lr * (label - fast_sigmoid(score));
            for (std::size_t d = 0; d < dim; ++d) {
              grad_center[d] += g * v_out[d];
              v_out[d] += g * v_in[d];
            }
          }
          for (std::size_t d = 0; d < dim; ++d) v_in[d] += grad_center[d];
        }
      }
    }
  }
  if (options_.standardize) {
    // Frequency-weighted standardisation per dimension: tokens that occur
    // more often contribute proportionally to the statistics the CNN will
    // actually see.
    for (std::size_t d = 0; d < dim; ++d) {
      double mean = 0.0;
      for (std::size_t t = 0; t < kV; ++t)
        mean += static_cast<double>(counts[t]) * in[t * dim + d];
      mean /= static_cast<double>(total_tokens);
      double var = 0.0;
      for (std::size_t t = 0; t < kV; ++t) {
        const double diff = in[t * dim + d] - mean;
        var += static_cast<double>(counts[t]) * diff * diff;
      }
      var /= static_cast<double>(total_tokens);
      const double inv_std = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
      for (std::size_t t = 0; t < kV; ++t)
        in[t * dim + d] = static_cast<float>(
            (in[t * dim + d] - mean) * inv_std);
    }
  }
  return CharEmbedding(dim, std::move(in));
}

}  // namespace prionn::embed
