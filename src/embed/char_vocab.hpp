// Character vocabulary over 7-bit ASCII. Job scripts are plain ASCII text;
// any byte outside [0, 127] maps to the unknown slot. The fixed 128-slot
// table is what the paper's one-hot transform assumes ("a unique 128 value
// vector").
#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

namespace prionn::embed {

class CharVocab {
 public:
  static constexpr std::size_t kSize = 128;

  /// Token id of a character (identity for ASCII, 0 for out-of-range).
  static std::size_t token(char c) noexcept {
    const auto u = static_cast<unsigned char>(c);
    return u < kSize ? u : 0;
  }

  /// Tokenise a script into a flat id sequence (line structure discarded,
  /// matching the 1-D "flattened" mapping of the paper).
  static std::vector<std::size_t> tokenize(std::string_view text);

  /// Per-token occurrence counts over a corpus; index = token id.
  static std::array<std::size_t, kSize> count_frequencies(
      const std::vector<std::vector<std::size_t>>& corpus) noexcept;
};

}  // namespace prionn::embed
