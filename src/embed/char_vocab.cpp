#include "embed/char_vocab.hpp"

namespace prionn::embed {

std::vector<std::size_t> CharVocab::tokenize(std::string_view text) {
  std::vector<std::size_t> out;
  out.reserve(text.size());
  for (const char c : text) out.push_back(token(c));
  return out;
}

std::array<std::size_t, CharVocab::kSize> CharVocab::count_frequencies(
    const std::vector<std::vector<std::size_t>>& corpus) noexcept {
  std::array<std::size_t, kSize> counts{};
  for (const auto& doc : corpus)
    for (const std::size_t t : doc) ++counts[t < kSize ? t : 0];
  return counts;
}

}  // namespace prionn::embed
