// Minimal JSON support for the telemetry layer: a writer for flat objects
// (string / number / bool / array-of-number fields) and the matching
// parser, enough for the JSONL event-log schema to round-trip in tests
// without an external dependency. Not a general JSON library: nested
// objects are rejected on parse.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace prionn::obs {

using JsonValue =
    std::variant<double, bool, std::string, std::vector<double>>;
using JsonObject = std::map<std::string, JsonValue>;

/// Escape and quote a JSON string.
std::string json_quote(std::string_view s);

/// Shortest round-trip decimal for a double ("17 significant digits when
/// needed"); integers print without a fractional part.
std::string json_number(double v);

/// Serialise a flat object with deterministic (sorted-key) field order.
std::string json_serialize(const JsonObject& object);

/// Parse one flat JSON object; nullopt on malformed input or nesting.
std::optional<JsonObject> json_parse(std::string_view text);

/// Typed field access helpers (nullopt when absent or wrong type).
std::optional<double> json_number_field(const JsonObject& o,
                                        const std::string& key);
std::optional<bool> json_bool_field(const JsonObject& o,
                                    const std::string& key);
std::optional<std::string> json_string_field(const JsonObject& o,
                                             const std::string& key);
std::optional<std::vector<double>> json_array_field(const JsonObject& o,
                                                    const std::string& key);

}  // namespace prionn::obs
