#include "obs/events.hpp"

#include <cmath>
#include <ostream>

#include "obs/json.hpp"

namespace prionn::obs {

namespace {

template <typename Integer>
double as_number(Integer v) {
  return static_cast<double>(v);
}

std::optional<JsonObject> parse_typed(const std::string& line,
                                      const std::string& type) {
  auto object = json_parse(line);
  if (!object) return std::nullopt;
  const auto t = json_string_field(*object, "type");
  if (!t || *t != type) return std::nullopt;
  return object;
}

/// Checked index/count field: the schema stores them as JSON numbers, but
/// a hostile line can carry -1 or 1e300, and casting those doubles to an
/// unsigned type is undefined behaviour. Only exactly-representable
/// non-negative integers (<= 2^53) are meaningful for these fields.
std::optional<std::uint64_t> json_index_field(const JsonObject& o,
                                              const std::string& key) {
  const auto v = json_number_field(o, key);
  if (!v) return std::nullopt;
  constexpr double kMaxExact = 9007199254740992.0;  // 2^53
  if (!(*v >= 0.0 && *v <= kMaxExact) || *v != std::floor(*v))
    return std::nullopt;
  return static_cast<std::uint64_t>(*v);
}

}  // namespace

void EventLog::append(const RetrainEvent& e) {
  JsonObject o;
  o["type"] = std::string("retrain");
  o["window_id"] = as_number(e.window_id);
  o["job_index"] = as_number(e.job_index);
  o["window_size"] = as_number(e.window_size);
  o["holdback_size"] = as_number(e.holdback_size);
  o["loss"] = e.loss;
  o["holdback_accuracy"] = e.holdback_accuracy;
  o["accepted"] = e.accepted;
  o["rollback"] = e.rollback;
  o["benched"] = e.benched;
  o["checkpoint_generation"] = as_number(e.checkpoint_generation);
  o["duration_ms"] = e.duration_ms;
  util::ScopedLock lock(mu_);
  lines_.push_back(json_serialize(o));
}

void EventLog::append(const WindowEvent& e) {
  JsonObject o;
  o["type"] = std::string("window");
  o["window_id"] = as_number(e.window_id);
  o["first_job_index"] = as_number(e.first_job_index);
  o["predictions"] = as_number(e.predictions);
  o["from_neural_net"] = as_number(e.from_neural_net);
  o["from_random_forest"] = as_number(e.from_random_forest);
  o["from_requested"] = as_number(e.from_requested);
  o["checkpoint_generation"] = as_number(e.checkpoint_generation);
  util::ScopedLock lock(mu_);
  lines_.push_back(json_serialize(o));
}

void EventLog::append(const IngestEvent& e) {
  JsonObject o;
  o["type"] = std::string("ingest");
  o["source"] = e.source;
  o["rows_accepted"] = as_number(e.rows_accepted);
  o["rows_quarantined"] = as_number(e.rows_quarantined);
  o["quarantined_fraction"] = e.quarantined_fraction;
  util::ScopedLock lock(mu_);
  lines_.push_back(json_serialize(o));
}

std::size_t EventLog::size() const {
  util::ScopedLock lock(mu_);
  return lines_.size();
}

void EventLog::clear() {
  util::ScopedLock lock(mu_);
  lines_.clear();
}

std::vector<std::string> EventLog::lines() const {
  util::ScopedLock lock(mu_);
  return lines_;
}

void EventLog::export_jsonl(std::ostream& os) const {
  for (const auto& line : lines()) os << line << "\n";
}

std::optional<RetrainEvent> EventLog::parse_retrain(
    const std::string& line) {
  const auto o = parse_typed(line, "retrain");
  if (!o) return std::nullopt;
  RetrainEvent e;
  const auto window_id = json_index_field(*o, "window_id");
  const auto job_index = json_index_field(*o, "job_index");
  const auto window_size = json_index_field(*o, "window_size");
  const auto holdback_size = json_index_field(*o, "holdback_size");
  const auto loss = json_array_field(*o, "loss");
  const auto holdback_accuracy = json_number_field(*o, "holdback_accuracy");
  const auto accepted = json_bool_field(*o, "accepted");
  const auto rollback = json_bool_field(*o, "rollback");
  const auto benched = json_bool_field(*o, "benched");
  const auto generation = json_index_field(*o, "checkpoint_generation");
  const auto duration_ms = json_number_field(*o, "duration_ms");
  if (!window_id || !job_index || !window_size || !holdback_size || !loss ||
      !holdback_accuracy || !accepted || !rollback || !benched ||
      !generation || !duration_ms)
    return std::nullopt;
  e.window_id = *window_id;
  e.job_index = *job_index;
  e.window_size = static_cast<std::size_t>(*window_size);
  e.holdback_size = static_cast<std::size_t>(*holdback_size);
  e.loss = *loss;
  e.holdback_accuracy = *holdback_accuracy;
  e.accepted = *accepted;
  e.rollback = *rollback;
  e.benched = *benched;
  e.checkpoint_generation = *generation;
  e.duration_ms = *duration_ms;
  return e;
}

std::optional<WindowEvent> EventLog::parse_window(const std::string& line) {
  const auto o = parse_typed(line, "window");
  if (!o) return std::nullopt;
  WindowEvent e;
  const auto window_id = json_index_field(*o, "window_id");
  const auto first = json_index_field(*o, "first_job_index");
  const auto predictions = json_index_field(*o, "predictions");
  const auto nn = json_index_field(*o, "from_neural_net");
  const auto rf = json_index_field(*o, "from_random_forest");
  const auto requested = json_index_field(*o, "from_requested");
  const auto generation = json_index_field(*o, "checkpoint_generation");
  if (!window_id || !first || !predictions || !nn || !rf || !requested ||
      !generation)
    return std::nullopt;
  e.window_id = *window_id;
  e.first_job_index = *first;
  e.predictions = static_cast<std::size_t>(*predictions);
  e.from_neural_net = static_cast<std::size_t>(*nn);
  e.from_random_forest = static_cast<std::size_t>(*rf);
  e.from_requested = static_cast<std::size_t>(*requested);
  e.checkpoint_generation = *generation;
  return e;
}

std::optional<IngestEvent> EventLog::parse_ingest(const std::string& line) {
  const auto o = parse_typed(line, "ingest");
  if (!o) return std::nullopt;
  IngestEvent e;
  const auto source = json_string_field(*o, "source");
  const auto accepted = json_index_field(*o, "rows_accepted");
  const auto quarantined = json_index_field(*o, "rows_quarantined");
  const auto fraction = json_number_field(*o, "quarantined_fraction");
  if (!source || !accepted || !quarantined || !fraction) return std::nullopt;
  e.source = *source;
  e.rows_accepted = static_cast<std::size_t>(*accepted);
  e.rows_quarantined = static_cast<std::size_t>(*quarantined);
  e.quarantined_fraction = *fraction;
  return e;
}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

}  // namespace prionn::obs
