#include "obs/exporters.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace prionn::obs {

namespace {

void help_and_type(std::ostream& os, const std::string& name,
                   const std::string& help, const char* type) {
  if (!help.empty()) os << "# HELP " << name << " " << help << "\n";
  os << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

std::string prometheus_text(const Registry& registry) {
  const auto snap = registry.snapshot();
  std::ostringstream os;
  for (const auto& c : snap.counters) {
    help_and_type(os, c.name, c.help, "counter");
    os << c.name << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    help_and_type(os, g.name, g.help, "gauge");
    os << g.name << " " << json_number(g.value) << "\n";
  }
  for (const auto& h : snap.histograms) {
    help_and_type(os, h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      os << h.name << "_bucket{le=\"";
      if (i < h.upper_bounds.size())
        os << json_number(h.upper_bounds[i]);
      else
        os << "+Inf";
      os << "\"} " << cumulative << "\n";
    }
    os << h.name << "_sum " << json_number(h.sum) << "\n";
    os << h.name << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string json_snapshot(const Registry& registry) {
  const auto snap = registry.snapshot();
  std::ostringstream os;
  for (const auto& c : snap.counters) {
    JsonObject o;
    o["name"] = c.name;
    o["kind"] = std::string("counter");
    o["value"] = static_cast<double>(c.value);
    os << json_serialize(o) << "\n";
  }
  for (const auto& g : snap.gauges) {
    JsonObject o;
    o["name"] = g.name;
    o["kind"] = std::string("gauge");
    o["value"] = g.value;
    os << json_serialize(o) << "\n";
  }
  for (const auto& h : snap.histograms) {
    JsonObject o;
    o["name"] = h.name;
    o["kind"] = std::string("histogram");
    o["upper_bounds"] = h.upper_bounds;
    std::vector<double> buckets;
    buckets.reserve(h.buckets.size());
    for (const auto b : h.buckets) buckets.push_back(static_cast<double>(b));
    o["buckets"] = std::move(buckets);
    o["count"] = static_cast<double>(h.count);
    o["sum"] = h.sum;
    os << json_serialize(o) << "\n";
  }
  return os.str();
}

void export_telemetry_files(const std::string& stem, const Registry& registry,
                            const EventLog& events,
                            const TraceBuffer& spans) {
  const auto open = [](const std::string& path) {
    std::ofstream os(path, std::ios::trunc);
    if (!os)
      throw std::runtime_error("export_telemetry_files: cannot open " + path);
    return os;
  };
  {
    auto os = open(stem + ".prom");
    os << prometheus_text(registry);
  }
  {
    auto os = open(stem + ".metrics.jsonl");
    os << json_snapshot(registry);
  }
  {
    auto os = open(stem + ".events.jsonl");
    events.export_jsonl(os);
  }
  {
    auto os = open(stem + ".trace.jsonl");
    spans.export_chrome_jsonl(os);
  }
}

}  // namespace prionn::obs
