// Structured serving event log. One JSONL record per retrain attempt, per
// prediction window (the stretch of submissions between retrain
// boundaries), and per trace-ingestion pass, so a BENCH run or a
// long-running service leaves a machine-readable account of the online
// protocol: loss trajectories, holdback accuracy, rollback and bench
// decisions, fallback provenance counts, quarantine counts, and the
// checkpoint generation each window was served under.
//
// Every record carries a "type" discriminator; the typed structs below
// are the schema, and serialise/parse round-trip exactly (tested).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace prionn::obs {

/// One retrain attempt of the online protocol (accepted or rejected).
struct RetrainEvent {
  std::uint64_t window_id = 0;     // retrain attempt ordinal, from 0
  std::uint64_t job_index = 0;     // submission index that triggered it
  std::size_t window_size = 0;     // completions trained on
  std::size_t holdback_size = 0;   // held-back validation batch (0 = off)
  std::vector<double> loss;        // per-head final losses (runtime, read, write)
  double holdback_accuracy = -1.0; // -1 when the guard did not run
  bool accepted = false;
  bool rollback = false;           // snapshot restore performed
  bool benched = false;            // rejection limit hit at this event
  std::uint64_t checkpoint_generation = 0;  // durable writes so far
  double duration_ms = 0.0;
};

/// One prediction window: all submissions served between two retrain
/// boundaries (or before the first / after the last one).
struct WindowEvent {
  std::uint64_t window_id = 0;     // matches the retrain that opened it
  std::uint64_t first_job_index = 0;
  std::size_t predictions = 0;
  std::size_t from_neural_net = 0;  // provenance counts
  std::size_t from_random_forest = 0;
  std::size_t from_requested = 0;
  std::uint64_t checkpoint_generation = 0;
};

/// One quarantine-aware ingestion pass over a trace file.
struct IngestEvent {
  std::string source;              // path or logical stream name
  std::size_t rows_accepted = 0;
  std::size_t rows_quarantined = 0;
  double quarantined_fraction = 0.0;
};

/// Append-only, thread-safe event collector with JSONL export.
class EventLog {
 public:
  void append(const RetrainEvent& e);
  void append(const WindowEvent& e);
  void append(const IngestEvent& e);

  std::size_t size() const;
  void clear();

  /// Serialised records, in append order (one JSON object per entry).
  std::vector<std::string> lines() const;
  /// One record per line.
  void export_jsonl(std::ostream& os) const;

  /// Schema round-trip: parse a line back into its typed record. nullopt
  /// when the line is not that record type or is malformed.
  static std::optional<RetrainEvent> parse_retrain(const std::string& line);
  static std::optional<WindowEvent> parse_window(const std::string& line);
  static std::optional<IngestEvent> parse_ingest(const std::string& line);

  /// The process-wide log the serving loops report into.
  static EventLog& global();

 private:
  mutable util::Mutex mu_;
  std::vector<std::string> lines_ PRIONN_GUARDED_BY(mu_);
};

}  // namespace prionn::obs
