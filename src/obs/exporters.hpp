// Telemetry exporters: Prometheus text exposition (0.0.4 format) and a
// JSONL metrics snapshot, plus file-writing conveniences used by the
// serving loops, the resilient_serving example, and the BENCH binaries.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace prionn::obs {

/// Prometheus text exposition of a registry snapshot: `# HELP` / `# TYPE`
/// preambles, `_bucket{le="..."}` / `_sum` / `_count` series per
/// histogram. Deterministic (sorted by metric name).
std::string prometheus_text(const Registry& registry = Registry::global());

/// One JSON object per metric per line: {"name":...,"kind":...,...}.
std::string json_snapshot(const Registry& registry = Registry::global());

/// Write the full telemetry state of the process next to `stem`:
///   <stem>.prom        Prometheus text dump
///   <stem>.metrics.jsonl  metrics snapshot
///   <stem>.events.jsonl   structured event log
///   <stem>.trace.jsonl    chrome://tracing span export
/// Throws std::runtime_error when a file cannot be opened.
void export_telemetry_files(const std::string& stem,
                            const Registry& registry = Registry::global(),
                            const EventLog& events = EventLog::global(),
                            const TraceBuffer& spans = TraceBuffer::global());

}  // namespace prionn::obs
