// Thread-safe metrics registry for the serving stack: counters, gauges,
// and fixed-bucket latency histograms. The design splits registration
// (named lookup, mutex-protected, done once per call site) from the hot
// path (a handle reference whose increment is a single relaxed atomic
// op), so instrumented loops never touch a lock or a string.
//
// Handles returned by the registry are stable for the registry's
// lifetime: metrics live in node-based storage and are never removed,
// only reset.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace prionn::obs {

/// Monotonic event count. Relaxed ordering: totals are exact (atomic RMW)
/// but carry no synchronises-with edges, which is all a metric needs.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, bytes in use).
class Gauge {
 public:
  void set(double x) noexcept { value_.store(x, std::memory_order_relaxed); }
  void add(double dx) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + dx,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Cumulative histogram with fixed upper bounds (Prometheus-style: bucket
/// i counts observations <= bounds[i], plus an implicit +Inf bucket).
/// observe() is lock-free: one relaxed RMW per bucket walk plus a CAS for
/// the running sum.
class LatencyHistogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing; an +Inf
  /// bucket is appended implicitly.
  explicit LatencyHistogram(std::vector<double> upper_bounds);

  void observe(double x) noexcept;

  /// Finite bounds plus the implicit +Inf bucket.
  std::size_t buckets() const noexcept { return bounds_.size() + 1; }
  /// Upper bound of bucket i (+Inf for the last one).
  double upper_bound(std::size_t i) const;
  /// Count of observations that landed in bucket i (non-cumulative).
  std::uint64_t bucket_count(std::size_t i) const;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Estimated p-quantile (p clamped to [0, 1]) by linear interpolation
  /// within the containing bucket (lower edge of bucket 0 is 0, the
  /// natural floor for latencies). Observations in the +Inf bucket report
  /// the largest finite bound. NaN when empty. The snapshot is taken with
  /// relaxed loads; concurrent observers make it approximate, never UB.
  double quantile(double p) const noexcept;

  /// Fold `other` into this histogram (per-thread histogram combination).
  /// Throws std::invalid_argument when the bounds differ.
  void merge(const LatencyHistogram& other);

  void reset() noexcept;

  /// Geometric default for nanosecond latencies: 1 us .. ~10 s.
  static std::vector<double> default_latency_bounds_ns();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metric store. Lookup interns the metric on first use and returns
/// a stable reference; re-registering a name with a different metric type
/// (or different histogram bounds) throws std::logic_error.
class Registry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  LatencyHistogram& histogram(const std::string& name,
                              std::vector<double> upper_bounds,
                              const std::string& help = "");
  /// Histogram with default_latency_bounds_ns().
  LatencyHistogram& latency(const std::string& name,
                            const std::string& help = "");

  /// Point-in-time copy for exporters, sorted by name.
  struct Snapshot {
    struct CounterRow {
      std::string name, help;
      std::uint64_t value = 0;
    };
    struct GaugeRow {
      std::string name, help;
      double value = 0.0;
    };
    struct HistogramRow {
      std::string name, help;
      std::vector<double> upper_bounds;       // finite bounds
      std::vector<std::uint64_t> buckets;     // per-bucket, incl. +Inf
      std::uint64_t count = 0;
      double sum = 0.0;
    };
    std::vector<CounterRow> counters;
    std::vector<GaugeRow> gauges;
    std::vector<HistogramRow> histograms;
  };
  Snapshot snapshot() const;

  /// Zero every metric (bench/test isolation); handles stay valid.
  void reset_all();

  /// The process-wide registry every instrumented module reports into.
  static Registry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };
  Entry& find_or_create(const std::string& name, Kind kind,
                        const std::string& help) PRIONN_REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::map<std::string, Entry> entries_ PRIONN_GUARDED_BY(mu_);
};

}  // namespace prionn::obs
