#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <ostream>

#include "util/timer.hpp"

namespace prionn::obs {

namespace {

std::atomic<bool> g_enabled{true};

// Small stable ordinal per thread; OS thread ids recycle and are wide.
std::uint32_t this_thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

thread_local std::uint32_t t_span_depth = 0;

}  // namespace

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceBuffer::record(const SpanRecord& span) {
  util::ScopedLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[next_] = span;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::size_t TraceBuffer::size() const {
  util::ScopedLock lock(mu_);
  return ring_.size();
}

std::uint64_t TraceBuffer::total_recorded() const {
  util::ScopedLock lock(mu_);
  return total_;
}

std::vector<SpanRecord> TraceBuffer::snapshot() const {
  util::ScopedLock lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, `next_` points at the oldest entry.
  const std::size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

void TraceBuffer::clear() {
  util::ScopedLock lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

void TraceBuffer::export_chrome_jsonl(std::ostream& os) const {
  auto spans = snapshot();
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  // Timestamps are microseconds in the trace-event format. Emitting the
  // steady-clock value directly keeps events from separate exports of the
  // same process comparable.
  for (const auto& s : spans) {
    const double begin_us = static_cast<double>(s.start_ns) / 1e3;
    const double end_us =
        static_cast<double>(s.start_ns + s.duration_ns) / 1e3;
    os << "{\"name\":\"" << s.name << "\",\"ph\":\"B\",\"ts\":" << begin_us
       << ",\"pid\":0,\"tid\":" << s.thread_id
       << ",\"args\":{\"depth\":" << s.depth << "}}\n";
    os << "{\"name\":\"" << s.name << "\",\"ph\":\"E\",\"ts\":" << end_us
       << ",\"pid\":0,\"tid\":" << s.thread_id << "}\n";
  }
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

Span::Span(const char* name) noexcept : name_(name) {
  if (!enabled()) return;
  active_ = true;
  depth_ = t_span_depth++;
  start_ns_ = util::Timer::now_ns();
}

Span::~Span() {
  if (!active_) return;
  --t_span_depth;
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.duration_ns = util::Timer::now_ns() - start_ns_;
  record.thread_id = this_thread_ordinal();
  record.depth = depth_;
  TraceBuffer::global().record(record);
}

}  // namespace prionn::obs
