#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace prionn::obs {

LatencyHistogram::LatencyHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("LatencyHistogram: need at least one bound");
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i)
    if (!(bounds_[i] < bounds_[i + 1]))
      throw std::invalid_argument(
          "LatencyHistogram: bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(buckets());
  for (std::size_t i = 0; i < buckets(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
}

void LatencyHistogram::observe(double x) noexcept {
  // NaN compares false against every bound and lands in +Inf; acceptable
  // for a metric (the contract layer guards real NaN propagation).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::upper_bound(std::size_t i) const {
  if (i >= buckets())
    throw std::out_of_range("LatencyHistogram::upper_bound");
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

std::uint64_t LatencyHistogram::bucket_count(std::size_t i) const {
  if (i >= buckets())
    throw std::out_of_range("LatencyHistogram::bucket_count");
  return counts_[i].load(std::memory_order_relaxed);
}

double LatencyHistogram::quantile(double p) const noexcept {
  std::vector<std::uint64_t> snap(buckets());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets(); ++i) {
    snap[i] = counts_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets(); ++i) {
    if (snap[i] == 0) continue;
    const auto below = static_cast<double>(cumulative);
    cumulative += snap[i];
    if (static_cast<double>(cumulative) >= target) {
      if (i >= bounds_.size()) return bounds_.back();  // +Inf bucket
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double inside = std::clamp(
          (target - below) / static_cast<double>(snap[i]), 0.0, 1.0);
      return lo + inside * (bounds_[i] - lo);
    }
  }
  return bounds_.back();
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (bounds_ != other.bounds_)
    throw std::invalid_argument("LatencyHistogram::merge: bounds differ");
  for (std::size_t i = 0; i < buckets(); ++i)
    counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  const double add = other.sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + add,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::reset() noexcept {
  for (std::size_t i = 0; i < buckets(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> LatencyHistogram::default_latency_bounds_ns() {
  // 1 us to 10.24 s doubling: covers a sub-ms CNN forward pass up to a
  // multi-second retrain in one bucket layout.
  std::vector<double> bounds;
  for (double b = 1e3; b <= 10.24e9; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Registry::Entry& Registry::find_or_create(const std::string& name, Kind kind,
                                          const std::string& help) {
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    e.help = help;
  } else if (e.kind != kind) {
    throw std::logic_error("Registry: metric '" + name +
                           "' re-registered with a different type");
  }
  return e;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  util::ScopedLock lock(mu_);
  Entry& e = find_or_create(name, Kind::kCounter, help);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  util::ScopedLock lock(mu_);
  Entry& e = find_or_create(name, Kind::kGauge, help);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

LatencyHistogram& Registry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const std::string& help) {
  util::ScopedLock lock(mu_);
  Entry& e = find_or_create(name, Kind::kHistogram, help);
  if (!e.histogram) {
    e.histogram = std::make_unique<LatencyHistogram>(std::move(upper_bounds));
  } else {
    // The handle is shared; silently differing bucket layouts would make
    // the exported series incoherent.
    for (std::size_t i = 0; i < upper_bounds.size(); ++i)
      if (i + 1 >= e.histogram->buckets() ||
          e.histogram->upper_bound(i) != upper_bounds[i])
        throw std::logic_error("Registry: histogram '" + name +
                               "' re-registered with different bounds");
    if (upper_bounds.size() + 1 != e.histogram->buckets())
      throw std::logic_error("Registry: histogram '" + name +
                             "' re-registered with different bounds");
  }
  return *e.histogram;
}

LatencyHistogram& Registry::latency(const std::string& name,
                                    const std::string& help) {
  return histogram(name, LatencyHistogram::default_latency_bounds_ns(), help);
}

Registry::Snapshot Registry::snapshot() const {
  util::ScopedLock lock(mu_);
  Snapshot snap;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        snap.counters.push_back({name, e.help, e.counter->value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({name, e.help, e.gauge->value()});
        break;
      case Kind::kHistogram: {
        Snapshot::HistogramRow row;
        row.name = name;
        row.help = e.help;
        for (std::size_t i = 0; i + 1 < e.histogram->buckets(); ++i)
          row.upper_bounds.push_back(e.histogram->upper_bound(i));
        for (std::size_t i = 0; i < e.histogram->buckets(); ++i)
          row.buckets.push_back(e.histogram->bucket_count(i));
        row.count = e.histogram->count();
        row.sum = e.histogram->sum();
        snap.histograms.push_back(std::move(row));
        break;
      }
    }
  }
  return snap;
}

void Registry::reset_all() {
  util::ScopedLock lock(mu_);
  for (auto& [name, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace prionn::obs
