#include "obs/obs.hpp"

#include <atomic>

namespace prionn::obs {

namespace {
std::atomic<bool> g_layer_timing{false};
}  // namespace

void set_layer_timing(bool on) noexcept {
  g_layer_timing.store(on, std::memory_order_relaxed);
}

bool layer_timing_raw() noexcept {
  return g_layer_timing.load(std::memory_order_relaxed);
}

}  // namespace prionn::obs
