// Scoped tracing: RAII span timers feeding a bounded in-memory ring
// buffer, exportable as chrome://tracing-compatible begin/end events
// (one JSON object per line). Spans nest — a per-thread depth counter is
// recorded so a flattened export still reconstructs the call tree — and
// the ring holds the most recent `capacity` completed spans, dropping the
// oldest; `total_recorded()` keeps the true count.
//
// Span construction checks the process-wide runtime switch
// (obs::set_enabled) once with a relaxed load; a disabled span does no
// clock read and no buffer work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace prionn::obs {

/// Process-wide runtime switch for span collection (and the event log).
/// Defaults to on in PRIONN_OBS builds; flip off to measure the disabled
/// fast path. Relaxed atomics: toggling mid-run is safe, not synchronised.
void set_enabled(bool on) noexcept;
bool enabled() noexcept;

struct SpanRecord {
  const char* name = "";       // interned literal; callers pass literals
  std::uint64_t start_ns = 0;  // steady-clock timestamp
  std::uint64_t duration_ns = 0;
  std::uint32_t thread_id = 0;  // small per-thread ordinal, not the OS tid
  std::uint32_t depth = 0;      // nesting level at the time of the span
};

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  void record(const SpanRecord& span);

  std::size_t capacity() const noexcept { return capacity_; }
  /// Completed spans currently retained (<= capacity).
  std::size_t size() const;
  /// All spans ever recorded, including those the ring has since dropped.
  std::uint64_t total_recorded() const;

  /// Retained spans, oldest first.
  std::vector<SpanRecord> snapshot() const;

  void clear();

  /// chrome://tracing "JSON Lines" export: a B (begin) and E (end) event
  /// pair per span, microsecond timestamps, ordered by begin time.
  void export_chrome_jsonl(std::ostream& os) const;

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// The process-wide buffer the PRIONN_OBS_SPAN macro reports into.
  static TraceBuffer& global();

 private:
  mutable util::Mutex mu_;
  std::size_t capacity_;  // immutable after construction; unguarded
  std::vector<SpanRecord> ring_ PRIONN_GUARDED_BY(mu_);
  std::size_t next_ PRIONN_GUARDED_BY(mu_) = 0;  // ring write cursor
  std::uint64_t total_ PRIONN_GUARDED_BY(mu_) = 0;
};

/// RAII span: times its scope and records into the global buffer on
/// destruction. Only literals should be passed as `name` — the record
/// stores the pointer, not a copy.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace prionn::obs
