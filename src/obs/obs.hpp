// Umbrella header for instrumented modules. Everything hot goes through
// the PRIONN_OBS_* macros below, which follow a two-level discipline:
//
//   - compile time: building with -DPRIONN_OBS=OFF (CMake) defines
//     PRIONN_OBS_ENABLED=0 and the macros expand to nothing — zero code,
//     zero data, measured by bench/micro_obs;
//   - run time: in enabled builds, span collection and the event log obey
//     obs::set_enabled(); counters/histograms always count (one relaxed
//     atomic op — cheaper than a branch would be worth).
//
// Named handles are resolved once per call site via function-local
// statics, so the hot path never touches the registry mutex.
//
// The classes themselves (Registry, TraceBuffer, EventLog, exporters)
// compile in both configurations, so tests and offline consumers do not
// depend on the build flavour; only instrumentation call sites vanish.
#pragma once

#ifndef PRIONN_OBS_ENABLED
#define PRIONN_OBS_ENABLED 1
#endif

#include "obs/events.hpp"
#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace prionn::obs {

inline constexpr bool kEnabled = PRIONN_OBS_ENABLED != 0;

inline Registry& registry() { return Registry::global(); }
inline EventLog& event_log() { return EventLog::global(); }
inline TraceBuffer& trace_buffer() { return TraceBuffer::global(); }

/// Per-layer forward/backward timing in nn::Network. Off by default: even
/// in enabled builds the cost is one relaxed load per forward() call
/// until someone turns it on.
void set_layer_timing(bool on) noexcept;
bool layer_timing_raw() noexcept;
inline bool layer_timing_enabled() noexcept {
  if constexpr (!kEnabled) return false;
  return layer_timing_raw();
}

/// Slow-path event emission; compiled out entirely under PRIONN_OBS=OFF,
/// gated by the runtime switch otherwise.
template <typename Event>
inline void emit(const Event& e) {
#if PRIONN_OBS_ENABLED
  if (enabled()) event_log().append(e);
#else
  static_cast<void>(e);
#endif
}

/// RAII latency observer used by the PRIONN_OBS_TIME macro.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram& hist) noexcept : hist_(hist) {}
  ~ScopedLatency() {
    hist_.observe(static_cast<double>(timer_.elapsed_ns()));
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  LatencyHistogram& hist_;
  util::Timer timer_;
};

}  // namespace prionn::obs

#define PRIONN_OBS_CONCAT_IMPL(a, b) a##b
#define PRIONN_OBS_CONCAT(a, b) PRIONN_OBS_CONCAT_IMPL(a, b)

#if PRIONN_OBS_ENABLED

/// Trace the enclosing scope as a span named `name` (a string literal).
#define PRIONN_OBS_SPAN(name)                                     \
  ::prionn::obs::Span PRIONN_OBS_CONCAT(prionn_obs_span_,         \
                                        __COUNTER__) { name }

/// Bump a named counter by 1 / by `n`.
#define PRIONN_OBS_INC(name, help)                                 \
  do {                                                             \
    static ::prionn::obs::Counter& prionn_obs_c =                  \
        ::prionn::obs::Registry::global().counter(name, help);     \
    prionn_obs_c.inc();                                            \
  } while (0)
#define PRIONN_OBS_ADD(name, help, n)                              \
  do {                                                             \
    static ::prionn::obs::Counter& prionn_obs_c =                  \
        ::prionn::obs::Registry::global().counter(name, help);     \
    prionn_obs_c.inc(static_cast<std::uint64_t>(n));               \
  } while (0)

/// Set a named gauge to `value`.
#define PRIONN_OBS_GAUGE_SET(name, help, value)                    \
  do {                                                             \
    static ::prionn::obs::Gauge& prionn_obs_g =                    \
        ::prionn::obs::Registry::global().gauge(name, help);       \
    prionn_obs_g.set(static_cast<double>(value));                  \
  } while (0)

/// Observe `ns` nanoseconds into a named latency histogram.
#define PRIONN_OBS_OBSERVE_NS(name, help, ns)                      \
  do {                                                             \
    static ::prionn::obs::LatencyHistogram& prionn_obs_h =         \
        ::prionn::obs::Registry::global().latency(name, help);     \
    prionn_obs_h.observe(static_cast<double>(ns));                 \
  } while (0)

/// Time the enclosing scope into a named latency histogram.
#define PRIONN_OBS_TIME(name, help)                                \
  static ::prionn::obs::LatencyHistogram& PRIONN_OBS_CONCAT(       \
      prionn_obs_th_, __LINE__) =                                  \
      ::prionn::obs::Registry::global().latency(name, help);       \
  ::prionn::obs::ScopedLatency PRIONN_OBS_CONCAT(                  \
      prionn_obs_t_, __LINE__) {                                   \
    PRIONN_OBS_CONCAT(prionn_obs_th_, __LINE__)                    \
  }

#else  // !PRIONN_OBS_ENABLED: instrumentation compiles to nothing.

#define PRIONN_OBS_SPAN(name) static_cast<void>(0)
#define PRIONN_OBS_INC(name, help) static_cast<void>(0)
#define PRIONN_OBS_ADD(name, help, n) static_cast<void>(sizeof(n))
#define PRIONN_OBS_GAUGE_SET(name, help, value) \
  static_cast<void>(sizeof(value))
#define PRIONN_OBS_OBSERVE_NS(name, help, ns) static_cast<void>(sizeof(ns))
#define PRIONN_OBS_TIME(name, help) static_cast<void>(0)

#endif  // PRIONN_OBS_ENABLED
