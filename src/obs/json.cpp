#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace prionn::obs {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  return buf;
}

std::string json_serialize(const JsonObject& object) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : object) {
    if (!first) out.push_back(',');
    first = false;
    out += json_quote(key);
    out.push_back(':');
    if (const auto* d = std::get_if<double>(&value)) {
      out += json_number(*d);
    } else if (const auto* b = std::get_if<bool>(&value)) {
      out += *b ? "true" : "false";
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      out += json_quote(*s);
    } else {
      const auto& arr = std::get<std::vector<double>>(value);
      out.push_back('[');
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) out.push_back(',');
        out += json_number(arr[i]);
      }
      out.push_back(']');
    }
  }
  out.push_back('}');
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonObject> parse_object() {
    skip_ws();
    if (!consume('{')) return std::nullopt;
    JsonObject out;
    skip_ws();
    if (consume('}')) return finish(std::move(out));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      auto value = parse_value();
      if (!value) return std::nullopt;
      out[*std::move(key)] = *std::move(value);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return finish(std::move(out));
      return std::nullopt;
    }
  }

 private:
  std::optional<JsonObject> finish(JsonObject out) {
    skip_ws();
    return pos_ == text_.size() ? std::optional<JsonObject>(std::move(out))
                                : std::nullopt;
  }

  std::optional<JsonValue> parse_value() {
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue(*std::move(s));
    }
    if (c == '[') {
      ++pos_;
      std::vector<double> arr;
      skip_ws();
      if (consume(']')) return JsonValue(std::move(arr));
      while (true) {
        skip_ws();
        auto n = parse_number();
        if (!n) return std::nullopt;
        arr.push_back(*n);
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return JsonValue(std::move(arr));
        return std::nullopt;
      }
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue(false);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      // null only appears where a non-finite number was serialised.
      pos_ += 4;
      return JsonValue(std::nan(""));
    }
    auto n = parse_number();
    if (!n) return std::nullopt;
    return JsonValue(*n);
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return std::nullopt;
            }
            // Only the control-character escapes our writer emits.
            if (code > 0x7F) return std::nullopt;
            out.push_back(static_cast<char>(code));
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;
  }

  std::optional<double> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    double value = 0.0;
    const auto* begin = text_.data() + start;
    const auto* end = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end) return std::nullopt;
    return value;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonObject> json_parse(std::string_view text) {
  return Parser(text).parse_object();
}

std::optional<double> json_number_field(const JsonObject& o,
                                        const std::string& key) {
  const auto it = o.find(key);
  if (it == o.end()) return std::nullopt;
  const auto* d = std::get_if<double>(&it->second);
  return d ? std::optional<double>(*d) : std::nullopt;
}

std::optional<bool> json_bool_field(const JsonObject& o,
                                    const std::string& key) {
  const auto it = o.find(key);
  if (it == o.end()) return std::nullopt;
  const auto* b = std::get_if<bool>(&it->second);
  return b ? std::optional<bool>(*b) : std::nullopt;
}

std::optional<std::string> json_string_field(const JsonObject& o,
                                             const std::string& key) {
  const auto it = o.find(key);
  if (it == o.end()) return std::nullopt;
  const auto* s = std::get_if<std::string>(&it->second);
  return s ? std::optional<std::string>(*s) : std::nullopt;
}

std::optional<std::vector<double>> json_array_field(const JsonObject& o,
                                                    const std::string& key) {
  const auto it = o.find(key);
  if (it == o.end()) return std::nullopt;
  const auto* a = std::get_if<std::vector<double>>(&it->second);
  return a ? std::optional<std::vector<double>>(*a) : std::nullopt;
}

}  // namespace prionn::obs
