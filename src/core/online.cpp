#include "core/online.hpp"

#include <algorithm>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "util/timer.hpp"

namespace prionn::core {

void OnlineProtocolOptions::validate(const char* who) const {
  const auto fail = [who](const char* what) {
    throw std::invalid_argument(std::string(who) + ": " + what);
  };
  if (retrain_interval == 0) fail("retrain_interval must be > 0");
  if (train_window == 0) fail("train_window must be > 0");
  if (embedding_corpus == 0) fail("embedding_corpus must be > 0");
}

std::vector<std::size_t> OnlineResult::predicted_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    if (predictions[i]) out.push_back(i);
  return out;
}

OnlineTrainer::OnlineTrainer(OnlineOptions options)
    : options_(options), predictor_(options.predictor) {
  options_.validate("OnlineTrainer");
}

OnlineResult OnlineTrainer::run(const std::vector<trace::JobRecord>& jobs) {
  OnlineResult result;
  result.predictions.assign(jobs.size(), std::nullopt);

  // Jobs complete asynchronously: a min-heap on end_time feeds the pool of
  // completed jobs as the submission clock advances.
  const auto later_end = [&jobs](std::size_t a, std::size_t b) {
    return jobs[a].end_time > jobs[b].end_time;
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(later_end)>
      in_flight(later_end);
  std::vector<std::size_t> completed;  // indices, in completion order
  completed.reserve(jobs.size());

  bool embedding_ready =
      options_.predictor.image.transform != Transform::kWord2Vec;
  std::size_t submissions_since_train = 0;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& job = jobs[i];
    // Advance the completion pool to this submission instant.
    while (!in_flight.empty() &&
           jobs[in_flight.top()].end_time <= job.submit_time) {
      completed.push_back(in_flight.top());
      in_flight.pop();
    }

    // Retrain every `retrain_interval` submissions once enough history
    // exists (and immediately for the very first training event).
    const bool due = !predictor_.trained()
                         ? completed.size() >= options_.min_initial_completions
                         : submissions_since_train >= options_.retrain_interval;
    if (due && !completed.empty()) {
      const std::size_t window =
          std::min(options_.train_window, completed.size());
      std::vector<trace::JobRecord> recent;
      recent.reserve(window);
      for (std::size_t k = completed.size() - window; k < completed.size();
           ++k)
        recent.push_back(jobs[completed[k]]);

      if (options_.reinitialize_on_retrain && predictor_.trained()) {
        // Cold-start ablation: throw the learned weights away but keep the
        // corpus-trained embedding, which the paper also fits once.
        embed::CharEmbedding embedding;
        const bool keep_embedding =
            options_.predictor.image.transform == Transform::kWord2Vec;
        if (keep_embedding) embedding = predictor_.mapper().embedding();
        predictor_ = PrionnPredictor(options_.predictor);
        if (keep_embedding) predictor_.set_embedding(std::move(embedding));
      }

      if (!embedding_ready) {
        std::vector<std::string> corpus;
        const std::size_t corpus_size =
            std::min(options_.embedding_corpus, completed.size());
        corpus.reserve(corpus_size);
        for (std::size_t k = completed.size() - corpus_size;
             k < completed.size(); ++k)
          corpus.push_back(jobs[completed[k]].script);
        const std::uint64_t t0 = util::Timer::now_ns();
        predictor_.fit_embedding(corpus);
        result.train_ns += util::Timer::now_ns() - t0;
        embedding_ready = true;
      }

      {
        PRIONN_OBS_SPAN("online.retrain");
        const std::uint64_t t0 = util::Timer::now_ns();
        predictor_.train(recent);
        result.train_ns += util::Timer::now_ns() - t0;
      }
      PRIONN_OBS_INC("prionn_retrains_total",
                     "training events of the online protocol");
      ++result.training_events;
      submissions_since_train = 0;
    }

    if (predictor_.trained()) {
      const std::uint64_t t0 = util::Timer::now_ns();
      result.predictions[i] =
          predictor_.predict_batch(std::span<const std::string>(&job.script, 1))
              .front()
              .value;
      const std::uint64_t elapsed_ns = util::Timer::now_ns() - t0;
      result.predict_ns += elapsed_ns;
      PRIONN_OBS_INC("prionn_predictions_total",
                     "predictions served at submission time");
      PRIONN_OBS_OBSERVE_NS("prionn_predict_latency_ns",
                            "per-job prediction latency", elapsed_ns);
    }
    ++submissions_since_train;
    in_flight.push(i);
  }
  result.train_seconds = static_cast<double>(result.train_ns) / 1e9;
  result.predict_seconds = static_cast<double>(result.predict_ns) / 1e9;
  PRIONN_OBS_GAUGE_SET("prionn_online_train_seconds",
                       "total monotonic time in training during a replay",
                       result.train_seconds);
  PRIONN_OBS_GAUGE_SET("prionn_online_predict_seconds",
                       "total monotonic time in inference during a replay",
                       result.predict_seconds);
  return result;
}

}  // namespace prionn::core
