// Phase 2 of the paper (section 4): feed per-job runtime and IO
// predictions into the cluster simulator to predict turnaround times,
// future system IO, and IO bursts for an IO-aware scheduler.
#pragma once

#include <cstddef>
#include <vector>

#include "core/predictor.hpp"
#include "sched/burst.hpp"
#include "sched/cluster.hpp"
#include "sched/io_timeline.hpp"
#include "trace/job_record.hpp"

namespace prionn::core {

struct Phase2Options {
  sched::ClusterOptions cluster;
  double bucket_seconds = 60.0;   // the paper works in minutes
  double burst_sigma = 1.0;       // burst threshold = mean + sigma * std
  std::vector<std::size_t> window_minutes = {5, 10, 15, 20, 30, 45, 60};
};

/// Turnaround evaluation (section 4.2): simulate the system; on every
/// submission snapshot the state twice and replay with (a) user-requested
/// runtimes and (b) PRIONN-predicted runtimes. All values in seconds,
/// parallel to the input job vector.
struct TurnaroundEval {
  std::vector<double> simulated;       // ground truth from the simulation
  std::vector<double> predicted_user;
  std::vector<double> predicted_prionn;
  std::vector<sched::ScheduledJob> schedule;  // in completion order
};

TurnaroundEval evaluate_turnaround(
    const std::vector<trace::JobRecord>& jobs,
    const std::vector<JobPrediction>& predictions,
    const Phase2Options& options = {});

/// System-IO evaluation (section 4.3): compare an actual aggregate IO
/// timeline against a predicted one and score IO bursts over the
/// tolerance windows.
struct SystemIoEval {
  std::vector<double> actual_series;
  std::vector<double> predicted_series;
  std::vector<double> accuracies;  // relative accuracy per active bucket
  double burst_threshold = 0.0;    // from the actual distribution
  struct WindowScore {
    std::size_t window_minutes = 0;
    sched::BurstScore score;
  };
  std::vector<WindowScore> windows;
};

/// Per-job IO intervals from a schedule with *actual* start/end and
/// *actual* bandwidths (ground truth timeline).
std::vector<sched::IoInterval> actual_io_intervals(
    const std::vector<trace::JobRecord>& jobs,
    const std::vector<sched::ScheduledJob>& schedule);

/// Evaluation 1 (Figs. 12 and 13): perfect turnaround knowledge — actual
/// start/end, predicted bandwidths.
std::vector<sched::IoInterval> predicted_io_intervals_perfect(
    const std::vector<trace::JobRecord>& jobs,
    const std::vector<sched::ScheduledJob>& schedule,
    const std::vector<JobPrediction>& predictions);

/// Evaluation 2 (Figs. 14 and 15): predicted turnaround — the predicted
/// completion is submit + predicted turnaround, the predicted start is
/// completion minus the predicted runtime, with predicted bandwidths.
std::vector<sched::IoInterval> predicted_io_intervals_predicted(
    const std::vector<trace::JobRecord>& jobs,
    const std::vector<double>& predicted_turnaround_seconds,
    const std::vector<JobPrediction>& predictions);

SystemIoEval evaluate_system_io(
    const std::vector<sched::IoInterval>& actual,
    const std::vector<sched::IoInterval>& predicted,
    const Phase2Options& options = {});

}  // namespace prionn::core
