// The PRIONN predictor facade: data mapping + three classifier heads
// (runtime minutes, total bytes read, total bytes written) trained on
// completed jobs and queried at submission time. Bandwidths are derived
// from the predicted totals and the predicted runtime, exactly as in
// section 3.2 of the paper.
#pragma once

#include <cmath>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/bins.hpp"
#include "core/model_zoo.hpp"
#include "core/script_image.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "trace/job_record.hpp"

namespace prionn::core {

struct PredictorOptions {
  ScriptImageOptions image;            // transform + grid size
  ModelKind model = ModelKind::kCnn2d;
  ModelPreset preset = ModelPreset::kFast;
  std::size_t runtime_bins = 960;      // one bin per minute (paper)
  std::size_t io_bins = 64;
  std::size_t word2vec_dimension = 4;  // paper's chosen size
  std::size_t epochs = 10;             // per (re)training event (paper)
  std::size_t batch_size = 32;
  double learning_rate = 3e-3;         // Adam
  double dropout = 0.05;
  bool predict_io = true;              // heads for bytes read/written
  /// Divergence guard forwarded to nn::FitOptions: a retrain whose global
  /// gradient L2 norm exceeds this throws nn::TrainingDiverged before the
  /// weights are touched (0 = off).
  double max_gradient_norm = 0.0;
  std::uint64_t seed = 1234;
};

struct JobPrediction {
  double runtime_minutes = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;

  // Bandwidths degrade to 0 for degenerate *or non-finite* inputs: a
  // NaN-poisoned runtime would otherwise satisfy none of the comparisons
  // yet still propagate NaN bandwidth into the IO-aware scheduler.
  double read_bandwidth() const noexcept {
    return safe_bandwidth(bytes_read);
  }
  double write_bandwidth() const noexcept {
    return safe_bandwidth(bytes_written);
  }

 private:
  double safe_bandwidth(double bytes) const noexcept {
    if (!std::isfinite(runtime_minutes) || runtime_minutes <= 0.0)
      return 0.0;
    const double bw = bytes / (runtime_minutes * 60.0);
    return std::isfinite(bw) ? bw : 0.0;
  }
};

/// Prediction plus the classifier's softmax confidence per head — an
/// IO-aware scheduler or the serving fallback chain can shed to
/// conservative estimates when the model is unsure (e.g. an unseen
/// script). This is what the one batch inference path returns; callers
/// that only want the value take `.value`.
struct ConfidentPrediction {
  JobPrediction value;
  double runtime_confidence = 0.0;  // max softmax probability, (0, 1]
  double read_confidence = 0.0;
  double write_confidence = 0.0;
};

class PrionnPredictor {
 public:
  explicit PrionnPredictor(PredictorOptions options = {});

  /// Word2vec needs a corpus-trained character embedding; call once before
  /// the first train() when the transform is kWord2Vec (no-op otherwise).
  void fit_embedding(const std::vector<std::string>& scripts);

  /// Install an already-trained embedding (checkpoint restore, or reusing
  /// the corpus embedding across the cold-retrain ablation).
  void set_embedding(embed::CharEmbedding embedding);

  /// Final per-head training losses of one train() call, for divergence
  /// monitoring by the resilient serving layer.
  struct TrainReport {
    double runtime_loss = 0.0;
    double read_loss = 0.0;
    double write_loss = 0.0;
  };

  /// (Re)train on completed jobs. Warm start: repeated calls continue from
  /// the current weights and optimiser state (paper section 2.3: models
  /// are retrained rather than re-initialised). Throws
  /// nn::TrainingDiverged when the loss goes non-finite or the gradient
  /// norm guard trips; the weights touched so far may be partially
  /// updated, so callers that need atomicity snapshot first
  /// (core/resilient_online does).
  TrainReport train(const std::vector<trace::JobRecord>& completed_jobs);

  bool trained() const noexcept { return trained_; }
  std::size_t training_events() const noexcept { return training_events_; }

  /// THE inference path: one batched forward pass per head over all
  /// scripts, returning value + per-head confidence for each. Every other
  /// predict entry point (the single-item wrappers below, both online
  /// trainers, the fallback chain, the serving subsystem) funnels through
  /// here, so batched and sequential replay are the same arithmetic.
  std::vector<ConfidentPrediction> predict_batch(
      std::span<const std::string> scripts);

  /// Same forward pass over an already-mapped batch tensor (leading axis
  /// N). The serving layer's encoding cache assembles batches from cached
  /// per-script samples and skips the data-mapping stage entirely.
  std::vector<ConfidentPrediction> predict_batch_mapped(
      const tensor::Tensor& batch);

  /// Map one script to the sample tensor predict_batch_mapped() expects
  /// (shape (channels, rows, cols) for the 2-D models, (channels, length)
  /// for 1-D) — the unit the serving encoding cache stores.
  tensor::Tensor map_sample(std::string_view script) const;

  // Thin single-item / value-only wrappers over predict_batch().
  JobPrediction predict(const std::string& script);
  std::vector<JobPrediction> predict(const std::vector<std::string>& scripts);
  ConfidentPrediction predict_with_confidence(const std::string& script);

  const PredictorOptions& options() const noexcept { return options_; }
  const ScriptImageMapper& mapper() const;
  const RuntimeBins& runtime_bins() const noexcept { return runtime_bins_; }
  const IoBins& io_bins() const noexcept { return io_bins_; }

  /// Checkpointing: persist the full predictor — options, embedding,
  /// network weights, dropout RNG trajectories and Adam moments — so a
  /// scheduler restart resumes not just predictions but the *training
  /// trajectory* bit-exactly (save → load → retrain equals never having
  /// restarted). save(os) followed by load(is) then save(os2) produces
  /// identical bytes.
  void save(std::ostream& os) const;
  static PrionnPredictor load(std::istream& is);

 private:
  tensor::Tensor map_batch(std::span<const std::string> scripts) const;
  void ensure_mapper();

  PredictorOptions options_;
  RuntimeBins runtime_bins_;
  IoBins io_bins_;
  std::optional<ScriptImageMapper> mapper_;
  embed::CharEmbedding embedding_;

  nn::Network runtime_net_;
  nn::Network read_net_;
  nn::Network write_net_;
  nn::Adam runtime_opt_;
  nn::Adam read_opt_;
  nn::Adam write_opt_;
  bool trained_ = false;
  std::size_t training_events_ = 0;
};

}  // namespace prionn::core
