// Factory for the paper's three deep models (section 2.2):
//   - NN:     fully connected network over the flattened 1-D mapping
//   - 1D-CNN: 1-D convolutions over the flattened mapping
//   - 2D-CNN: 2-D convolutions over the script grid — the paper's choice,
//             "four convolutional layers and four fully connected layers".
// Two presets: `kPaper` follows the paper's depth/width; `kFast` is a
// scaled-down variant for CPU-bound tests and benches (DESIGN.md section 2
// notes all timing results are comparative, so the preset applies
// uniformly across models).
#pragma once

#include <cstdint>
#include <string_view>

#include "nn/network.hpp"

namespace prionn::core {

enum class ModelKind { kFullyConnected, kCnn1d, kCnn2d };
enum class ModelPreset { kPaper, kFast };

std::string_view model_name(ModelKind kind) noexcept;

struct ModelConfig {
  ModelKind kind = ModelKind::kCnn2d;
  ModelPreset preset = ModelPreset::kFast;
  std::size_t channels = 4;  // input channels (transform-dependent)
  std::size_t rows = 64;
  std::size_t cols = 64;
  std::size_t classes = 960;
  double dropout = 0.1;
  std::uint64_t seed = 123;
};

/// Build an untrained model for the given input geometry.
nn::Network build_model(const ModelConfig& config);

}  // namespace prionn::core
