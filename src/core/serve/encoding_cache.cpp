#include "core/serve/encoding_cache.hpp"

#include <utility>

#include "util/check.hpp"

namespace prionn::core::serve {

EncodingCache::EncodingCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) entries_.reserve(capacity_);
}

const tensor::Tensor* EncodingCache::find(std::string_view script) {
  if (capacity_ == 0) {
    ++misses_;
    return nullptr;
  }
  const auto it = entries_.find(script);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->sample;
}

void EncodingCache::insert(std::string_view script, tensor::Tensor sample) {
  if (capacity_ == 0) return;
  if (const auto it = entries_.find(script); it != entries_.end()) {
    it->second->sample = std::move(sample);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    // Evict the map entry first: its key views the list node's storage.
    entries_.erase(std::string_view(lru_.back().script));
    lru_.pop_back();
  }
  lru_.push_front(Entry{std::string(script), std::move(sample)});
  entries_.emplace(std::string_view(lru_.front().script), lru_.begin());
  PRIONN_DCHECK(entries_.size() == lru_.size())
      << "EncodingCache: map/list size skew " << entries_.size() << " vs "
      << lru_.size();
}

void EncodingCache::clear() {
  entries_.clear();
  lru_.clear();
}

}  // namespace prionn::core::serve
