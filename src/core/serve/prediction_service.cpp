#include "core/serve/prediction_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "nn/loss.hpp"
#include "obs/obs.hpp"
#include "tensor/tensor.hpp"
#include "util/timer.hpp"

namespace prionn::core::serve {

void ServiceOptions::validate() const {
  protocol.validate("PredictionService");
  if (batching.max_batch == 0)
    throw std::invalid_argument(
        "PredictionService: batching.max_batch must be > 0");
  if (batching.queue_capacity == 0)
    throw std::invalid_argument(
        "PredictionService: batching.queue_capacity must be > 0");
}

PredictionService::PredictionService(ServiceOptions options)
    : options_(std::move(options)),
      fallback_(options_.fallback),
      cache_(options_.encoding_cache_capacity) {
  options_.validate();
  {
    util::ScopedLock ml(model_mutex_);
    live_ = std::make_unique<PrionnPredictor>(options_.predictor);
  }
  {
    util::ScopedLock wl(window_mutex_);
    embedding_ready_ =
        options_.predictor.image.transform != Transform::kWord2Vec;
  }
  batcher_ = std::thread([this] { batcher_loop(); });
  if (options_.background_retrain)
    trainer_ = std::thread([this] { trainer_loop(); });
}

PredictionService::~PredictionService() {
  // Stop order matters: the batcher drains every accepted request before
  // exiting (no promise is ever abandoned), then the trainer is released.
  {
    util::ScopedLock lock(queue_mutex_);
    stopping_ = true;
    queue_cv_.notify_all();
  }
  if (batcher_.joinable()) batcher_.join();
  {
    util::ScopedLock wl(window_mutex_);
    trainer_stop_ = true;
    trainer_cv_.notify_all();
  }
  if (trainer_.joinable()) trainer_.join();
}

std::future<ProvenancedPrediction> PredictionService::submit(
    const trace::JobRecord& job) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  PRIONN_OBS_INC("prionn_serve_submissions_total",
                 "submissions accepted by the serving front-end");

  Request request;
  request.job = job;
  request.enqueue_ns = util::Timer::now_ns();
  std::future<ProvenancedPrediction> future = request.promise.get_future();

  bool shed_request = false;
  {
    util::ScopedLock lock(queue_mutex_);
    if (stopping_ || pending_.size() >= options_.batching.queue_capacity) {
      shed_request = true;
    } else {
      pending_.push_back(std::move(request));
      ++outstanding_;
      max_queue_depth_ =
          std::max<std::uint64_t>(max_queue_depth_, pending_.size());
      PRIONN_OBS_GAUGE_SET("prionn_serve_queue_depth",
                           "pending submissions in the serving queue",
                           pending_.size());
      queue_cv_.notify_one();
    }
  }
  if (shed_request) {
    // Backpressure: answer inline from the fallback chain, skipping the
    // NN leg — waiting for the busy model is exactly what shedding
    // avoids. Quality degrades (RF or the requested runtime); latency
    // does not.
    shed_.fetch_add(1, std::memory_order_relaxed);
    PRIONN_OBS_INC("prionn_serve_shed_total",
                   "submissions shed to the fallback chain (queue full)");
    ProvenancedPrediction prediction;
    {
      util::ScopedLock fl(fallback_mutex_);
      prediction = fallback_.predict(nullptr, request.job);
    }
    fulfill(request, prediction);
  }

  // §2.3 cadence: every submission counts, shed or not.
  {
    util::ScopedLock wl(window_mutex_);
    ++submissions_since_train_;
    if (options_.background_retrain && !retrain_requested_ &&
        !nn_benched_.load(std::memory_order_relaxed) && retrain_due()) {
      retrain_requested_ = true;
      trainer_cv_.notify_one();
    }
  }
  return future;
}

ProvenancedPrediction PredictionService::predict_now(
    const trace::JobRecord& job) {
  return submit(job).get();
}

void PredictionService::complete(const trace::JobRecord& job) {
  const std::size_t bound = std::max(options_.protocol.train_window,
                                     options_.protocol.embedding_corpus);
  util::ScopedLock wl(window_mutex_);
  window_.push_back(job);
  while (window_.size() > bound) window_.pop_front();
  ++total_completions_;
  PRIONN_OBS_GAUGE_SET("prionn_serve_window_size",
                       "completions retained for retraining",
                       window_.size());
}

void PredictionService::flush() {
  {
    util::ScopedLock lock(queue_mutex_);
    drain_fast_ = true;  // close the current batch without waiting out
                         // its delay budget
    queue_cv_.notify_all();
    while (outstanding_ > 0) idle_cv_.wait(queue_mutex_);
    drain_fast_ = false;
  }
  if (options_.background_retrain) {
    util::ScopedLock wl(window_mutex_);
    while (retrain_requested_ || trainer_busy_)
      trainer_done_cv_.wait(window_mutex_);
  }
}

bool PredictionService::retrain_now() {
  if (options_.background_retrain)
    throw std::logic_error(
        "PredictionService::retrain_now: the background trainer owns "
        "retraining for this service");
  return run_retrain();
}

std::size_t PredictionService::training_events() const {
  util::ScopedLock wl(window_mutex_);
  return training_events_;
}

ServiceStats PredictionService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_jobs = batched_jobs_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.swaps = swaps_.load(std::memory_order_relaxed);
  s.nn_benched = nn_benched_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < s.source_counts.size(); ++i)
    s.source_counts[i] = source_counts_[i].load(std::memory_order_relaxed);
  {
    util::ScopedLock lock(queue_mutex_);
    s.max_queue_depth = max_queue_depth_;
  }
  {
    util::ScopedLock wl(window_mutex_);
    s.rejected_retrains = rejected_retrains_;
  }
  return s;
}

bool PredictionService::retrain_due() const {
  if (window_.empty()) return false;
  if (training_events_ == 0) {
    // A rejected first attempt also waits out a full interval before the
    // retry (same gating as ResilientOnlineTrainer).
    return total_completions_ >= options_.protocol.min_initial_completions &&
           (rejected_retrains_ == 0 ||
            submissions_since_train_ >= options_.protocol.retrain_interval);
  }
  return submissions_since_train_ >= options_.protocol.retrain_interval;
}

void PredictionService::batcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      util::ScopedLock lock(queue_mutex_);
      while (pending_.empty() && !stopping_) queue_cv_.wait(queue_mutex_);
      if (pending_.empty()) return;  // stopping, and fully drained

      // Coalesce: wait for peers until the batch fills, the oldest
      // request's delay budget runs out, or a flush/shutdown hurries us.
      const std::uint64_t deadline =
          pending_.front().enqueue_ns +
          options_.batching.max_delay_us * 1000;
      while (pending_.size() < options_.batching.max_batch && !stopping_ &&
             !drain_fast_) {
        const std::uint64_t now = util::Timer::now_ns();
        if (now >= deadline) break;
        const bool filled = queue_cv_.wait_for(
            queue_mutex_, std::chrono::nanoseconds(deadline - now),
            [this]() PRIONN_REQUIRES(queue_mutex_) {
              return pending_.size() >= options_.batching.max_batch ||
                     stopping_ || drain_fast_;
            });
        if (!filled) break;  // deadline passed first
      }

      const std::size_t n =
          std::min(options_.batching.max_batch, pending_.size());
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      PRIONN_OBS_GAUGE_SET("prionn_serve_queue_depth",
                           "pending submissions in the serving queue",
                           pending_.size());
    }

    serve_batch(batch);

    {
      util::ScopedLock lock(queue_mutex_);
      outstanding_ -= batch.size();
      if (outstanding_ == 0) idle_cv_.notify_all();
    }
  }
}

void PredictionService::serve_batch(std::vector<Request>& batch) {
  PRIONN_OBS_SPAN("serve.micro_batch");
  PRIONN_OBS_TIME("prionn_serve_batch_latency_ns",
                  "wall time of one micro-batch serve");
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_jobs_.fetch_add(batch.size(), std::memory_order_relaxed);
  PRIONN_OBS_GAUGE_SET("prionn_serve_batch_size",
                       "size of the last served micro-batch", batch.size());

  // One forward pass for the whole batch, under the model lock: forward()
  // mutates layer activation caches, and the mapper must not be swapped
  // out from under us mid-batch. Training never runs under this lock —
  // only the trainer's snapshot encode and pointer swap do, so the wait
  // here is bounded by milliseconds, not a training event.
  std::vector<ConfidentPrediction> nn_out;
  bool use_nn = false;
  if (!nn_benched_.load(std::memory_order_relaxed)) {
    util::ScopedLock ml(model_mutex_);
    if (live_ && live_->trained()) {
      use_nn = true;
      // An embedding (re)fit is the one event that changes the
      // script->image function: drop every cached encoding from before it.
      const std::uint64_t epoch =
          cache_epoch_.load(std::memory_order_acquire);
      if (epoch != cache_epoch_seen_) {
        cache_.clear();
        cache_epoch_seen_ = epoch;
      }
      // Assemble the batch tensor from cached per-script samples,
      // mapping only the misses.
      tensor::Tensor batch_tensor;
      std::size_t sample_size = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const std::string& script = batch[i].job.script;
        const tensor::Tensor* sample = cache_.find(script);
        tensor::Tensor mapped;
        if (sample == nullptr) {
          mapped = live_->map_sample(script);
          sample = &mapped;
        }
        if (i == 0) {
          tensor::Shape shape;
          shape.reserve(sample->rank() + 1);
          shape.push_back(batch.size());
          for (std::size_t axis = 0; axis < sample->rank(); ++axis)
            shape.push_back(sample->dim(axis));
          batch_tensor = tensor::Tensor(std::move(shape));
          sample_size = sample->size();
        }
        std::memcpy(batch_tensor.data() + i * sample_size, sample->data(),
                    sample_size * sizeof(float));
        if (sample == &mapped) cache_.insert(script, std::move(mapped));
      }
      nn_out = live_->predict_batch_mapped(batch_tensor);
    }
  }
  cache_hits_.store(cache_.hits(), std::memory_order_relaxed);
  cache_misses_.store(cache_.misses(), std::memory_order_relaxed);
  PRIONN_OBS_GAUGE_SET("prionn_serve_cache_entries",
                       "scripts held by the encoding cache", cache_.size());

  // Fulfil outside the model lock: confidence-gated NN answers directly,
  // everything else walks the fallback chain.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ProvenancedPrediction prediction;
    bool from_nn = false;
    if (use_nn) {
      const ConfidentPrediction& c = nn_out[i];
      if (c.runtime_confidence >= options_.fallback.min_confidence &&
          std::isfinite(c.value.runtime_minutes)) {
        prediction.value = c.value;
        prediction.source = PredictionSource::kNeuralNet;
        prediction.confidence = c.runtime_confidence;
        from_nn = true;
        // Keep the provenance counters consistent with the sequential
        // serving path (FallbackPredictor::predict bumps these itself).
        PRIONN_OBS_INC("prionn_predictions_total",
                       "predictions served at submission time");
        PRIONN_OBS_INC("prionn_predictions_nn_total",
                       "predictions served by the neural net");
      }
    }
    if (!from_nn) {
      util::ScopedLock fl(fallback_mutex_);
      prediction = fallback_.predict(nullptr, batch[i].job);
    }
    fulfill(batch[i], prediction);
  }
}

void PredictionService::fulfill(Request& request,
                                const ProvenancedPrediction& prediction) {
  const std::uint64_t latency_ns =
      util::Timer::now_ns() - request.enqueue_ns;
  PRIONN_OBS_OBSERVE_NS("prionn_serve_submit_latency_ns",
                        "submit-to-fulfilment latency", latency_ns);
  served_.fetch_add(1, std::memory_order_relaxed);
  source_counts_[static_cast<std::size_t>(prediction.source)].fetch_add(
      1, std::memory_order_relaxed);
  request.promise.set_value(prediction);
}

void PredictionService::trainer_loop() {
  for (;;) {
    {
      util::ScopedLock wl(window_mutex_);
      while (!retrain_requested_ && !trainer_stop_)
        trainer_cv_.wait(window_mutex_);
      if (!retrain_requested_) return;  // stopping
      // Transfer requested -> busy in one critical section, so flush()
      // never observes the gap between the two as "idle".
      retrain_requested_ = false;
      trainer_busy_ = true;
    }
    run_retrain(/*claimed=*/true);
  }
}

bool PredictionService::run_retrain(bool claimed) {
  PRIONN_OBS_SPAN("serve.retrain");
  util::Timer retrain_timer;

  // Claim the trainer slot and snapshot the training window. Submissions
  // arriving while we train count toward the *next* interval.
  std::vector<trace::JobRecord> recent;
  std::vector<std::string> corpus;
  bool fit_embedding = false;
  std::uint64_t attempt = 0;
  {
    util::ScopedLock wl(window_mutex_);
    if (!claimed) {  // serialize concurrent retrain_now() callers
      while (trainer_busy_) trainer_done_cv_.wait(window_mutex_);
      trainer_busy_ = true;
    }
    if (window_.empty()) {  // nothing to learn from yet
      trainer_busy_ = false;
      trainer_done_cv_.notify_all();
      return false;
    }
    submissions_since_train_ = 0;
    attempt = static_cast<std::uint64_t>(training_events_ +
                                         rejected_retrains_);
    const std::size_t window =
        std::min(options_.protocol.train_window, window_.size());
    recent.assign(window_.end() - static_cast<std::ptrdiff_t>(window),
                  window_.end());
    if (!embedding_ready_) {
      fit_embedding = true;
      const std::size_t corpus_size =
          std::min(options_.protocol.embedding_corpus, window_.size());
      corpus.reserve(corpus_size);
      for (auto it = window_.end() - static_cast<std::ptrdiff_t>(corpus_size);
           it != window_.end(); ++it)
        corpus.push_back(it->script);
    }
  }
  retrain_active_.store(true, std::memory_order_relaxed);

  // Snapshot the live model under a brief lock; decode the shadow copy
  // outside it. save/load is bit-exact (weights, Adam moments, dropout
  // RNG), so training the shadow follows the exact trajectory training
  // the live model in place would have.
  std::string snapshot;
  {
    PRIONN_OBS_SPAN("serve.snapshot");
    util::ScopedLock ml(model_mutex_);
    std::ostringstream snap(std::ios::binary);
    live_->save(snap);
    snapshot = std::move(snap).str();
  }
  std::istringstream snap_in(snapshot, std::ios::binary);
  auto shadow = std::make_unique<PrionnPredictor>(
      PrionnPredictor::load(snap_in));
  snapshot.clear();

  // Guards, as in ResilientOnlineTrainer: hold back a validation batch
  // when the accuracy floor is on.
  std::vector<trace::JobRecord> train_set = recent;
  std::vector<trace::JobRecord> holdback;
  if (options_.min_holdback_accuracy > 0.0 &&
      recent.size() > options_.holdback_size) {
    holdback.assign(recent.end() -
                        static_cast<std::ptrdiff_t>(options_.holdback_size),
                    recent.end());
    train_set.assign(recent.begin(),
                     recent.end() - static_cast<std::ptrdiff_t>(
                                        options_.holdback_size));
  }

  obs::RetrainEvent event;
  event.window_id = attempt;
  event.window_size = recent.size();
  event.holdback_size = holdback.size();

  bool accepted = true;
  try {
    if (fit_embedding) shadow->fit_embedding(corpus);
    {
      PRIONN_OBS_SPAN("serve.shadow_train");
      const auto report = shadow->train(train_set);
      event.loss = {report.runtime_loss, report.read_loss,
                    report.write_loss};
      if (!std::isfinite(report.runtime_loss) ||
          !std::isfinite(report.read_loss) ||
          !std::isfinite(report.write_loss))
        accepted = false;
    }
    if (accepted && !holdback.empty()) {
      PRIONN_OBS_SPAN("serve.holdback_eval");
      std::vector<std::string> holdback_scripts;
      holdback_scripts.reserve(holdback.size());
      for (const auto& h : holdback) holdback_scripts.push_back(h.script);
      const auto predicted = shadow->predict_batch(holdback_scripts);
      std::size_t correct = 0;
      for (std::size_t h = 0; h < holdback.size(); ++h) {
        if (shadow->runtime_bins().label_of(
                predicted[h].value.runtime_minutes) ==
            shadow->runtime_bins().label_of(holdback[h].runtime_minutes))
          ++correct;
      }
      const double accuracy = static_cast<double>(correct) /
                              static_cast<double>(holdback.size());
      event.holdback_accuracy = accuracy;
      accepted = accuracy >= options_.min_holdback_accuracy;
    }
  } catch (const nn::TrainingDiverged&) {
    accepted = false;
  }

  bool benched = false;
  if (accepted) {
    // Refit the fallback baseline on the same window the NN trained on.
    {
      util::ScopedLock fl(fallback_mutex_);
      fallback_.fit_baseline(recent);
    }
    // Publish: a pointer swap under the model lock. Readers observe
    // either the old model or the new one, never a half-trained mix, and
    // block for at most the swap itself.
    std::uint64_t swap_ns = 0;
    {
      const std::uint64_t t0 = util::Timer::now_ns();
      util::ScopedLock ml(model_mutex_);
      live_ = std::move(shadow);
      swap_ns = util::Timer::now_ns() - t0;
    }
    swaps_.fetch_add(1, std::memory_order_relaxed);
    PRIONN_OBS_OBSERVE_NS("prionn_serve_swap_latency_ns",
                          "model publish: pointer swap incl. lock wait",
                          swap_ns);
    PRIONN_OBS_INC("prionn_retrains_total",
                   "training events of the online protocol");
    // The new embedding invalidates cached encodings; the batcher clears
    // the cache when it observes the bumped epoch.
    if (fit_embedding)
      cache_epoch_.fetch_add(1, std::memory_order_release);
  } else {
    // Rollback is free with double buffering: discard the shadow — the
    // live model IS the pre-retrain snapshot and never stopped serving.
    PRIONN_OBS_INC("prionn_retrains_rejected_total",
                   "retrain attempts rejected by the guards");
    PRIONN_OBS_INC("prionn_rollbacks_total",
                   "shadow models discarded (live model kept serving)");
  }

  {
    util::ScopedLock wl(window_mutex_);
    if (accepted) {
      ++training_events_;
      consecutive_rejections_ = 0;
      if (fit_embedding) embedding_ready_ = true;
    } else {
      ++rejected_retrains_;
      if (++consecutive_rejections_ >= options_.max_consecutive_rejections) {
        benched = true;
        nn_benched_.store(true, std::memory_order_relaxed);
        PRIONN_OBS_INC("prionn_nn_benched_total",
                       "times the neural net was benched for the run");
      }
    }
    trainer_busy_ = false;
    trainer_done_cv_.notify_all();
  }
  retrain_active_.store(false, std::memory_order_relaxed);

  event.accepted = accepted;
  event.rollback = !accepted;
  event.benched = benched;
  event.duration_ms =
      static_cast<double>(retrain_timer.elapsed_ns()) / 1e6;
  obs::emit(event);
  return accepted;
}

}  // namespace prionn::core::serve
