// Script-image encoding cache for the serving hot path. The data-mapping
// stage (crop/pad to the character grid + per-character transform, incl.
// the word2vec embedding lookup) is a pure function of the script text
// and the trained embedding, so repeat submissions of the same script —
// the common case on production clusters, where users resubmit the same
// job script hundreds of times — can skip it entirely. A model swap
// invalidates nothing here; only refitting the embedding does (the
// service clears the cache at that point).
//
// Bounded LRU keyed by the full script text: two scripts that differ only
// beyond the crop window would map to the same image, but keying by the
// exact text keeps the cache trivially correct. Not internally
// synchronised — the batcher thread is the only user.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

#include "tensor/tensor.hpp"

namespace prionn::core::serve {

class EncodingCache {
 public:
  /// `capacity` = max cached scripts; 0 disables the cache entirely
  /// (find always misses, insert is a no-op).
  explicit EncodingCache(std::size_t capacity);

  /// Cached sample tensor for `script`, or nullptr on a miss. A hit
  /// refreshes the entry's LRU position. The pointer is valid until the
  /// next insert()/clear().
  const tensor::Tensor* find(std::string_view script);

  /// Insert (or refresh) the mapped sample for `script`, evicting the
  /// least-recently-used entry when full.
  void insert(std::string_view script, tensor::Tensor sample);

  /// Drop everything — called when the embedding is (re)fit, which is the
  /// one event that changes the script -> image function.
  void clear();

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    std::string script;
    tensor::Tensor sample;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  // Keys are string_views into the list entries' own script storage,
  // which std::list never relocates.
  std::unordered_map<std::string_view, std::list<Entry>::iterator> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace prionn::core::serve
