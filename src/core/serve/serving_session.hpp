// Trace replay through the concurrent PredictionService — the bridge
// between the figure benchmarks (which replay recorded traces) and the
// serving subsystem (which serves live submissions).
//
// Two modes:
//   - kDeterministic: the session drives the §2.3 retrain cadence itself
//     (flush() barrier + retrain_now() at exactly the submissions where
//     OnlineTrainer would train), so the replay is prediction-for-
//     prediction identical to the sequential trainer at a fixed seed —
//     micro-batched inference and the encoding cache change the wall
//     clock, never the arithmetic. fig08/fig11 can run through the
//     service and reproduce their curves bit-exactly.
//   - kConcurrent: retraining runs on the service's background thread and
//     submissions never wait for it; which model generation serves a
//     given job depends on timing. This is the mode the serving latency
//     benchmark measures.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/serve/prediction_service.hpp"
#include "trace/job_record.hpp"

namespace prionn::core::serve {

enum class ReplayMode {
  kDeterministic,  // cadence barriers; equals OnlineTrainer bit-exactly
  kConcurrent,     // background retrain; inference never blocks on it
};

struct SessionOptions {
  ServiceOptions service;
  ReplayMode mode = ReplayMode::kDeterministic;
};

struct SessionResult {
  /// One per input job, in submission order; every job gets an answer
  /// (the fallback chain serves the pre-training prefix).
  std::vector<ProvenancedPrediction> predictions;
  std::size_t training_events = 0;
  std::uint64_t replay_ns = 0;  // wall time of the whole replay
  ServiceStats stats;

  /// OnlineResult-shaped view: the NN-served predictions, nullopt where
  /// the fallback chain answered — what the figure pipelines consume.
  std::vector<std::optional<JobPrediction>> nn_predictions() const;
};

class ServingSession {
 public:
  explicit ServingSession(SessionOptions options);

  /// Replay a completed-jobs trace (sorted by submit time) through the
  /// service: completions are fed to the training window as the
  /// submission clock passes their end times, exactly like the
  /// sequential trainers. May be called again to continue the protocol
  /// on a further trace segment.
  SessionResult replay(const std::vector<trace::JobRecord>& jobs);

  PredictionService& service() noexcept { return *service_; }

 private:
  SessionOptions options_;
  std::unique_ptr<PredictionService> service_;
};

}  // namespace prionn::core::serve
