// Concurrent serving front-end for the PRIONN predictor: the paper's
// §2.3 protocol (predict at submission, retrain every retrain_interval
// submissions on the train_window most recent completions) decoupled
// from the sequential replay loops so inference never stalls behind a
// retrain.
//
//   submit() ──► bounded queue ──► batcher thread ──► one batched
//                                   forward pass per micro-batch
//   complete() ──► completion window ──► trainer thread ──► shadow
//                                   copy trained off-thread, published
//                                   with an atomic model swap
//
//   - Micro-batching: concurrent submit() calls are coalesced into
//     batches of at most `max_batch`, waiting at most `max_delay_us`
//     for peers, then served by ONE forward pass per head (the batch
//     path is per-sample identical to single-item predicts).
//   - Double-buffered model: the retrain thread snapshots the live
//     predictor (milliseconds), trains a shadow copy on the completion
//     window (seconds) with no lock held, and publishes it with a
//     pointer swap. A retrain that diverges or fails the holdback-
//     accuracy guard is discarded — the live model IS the last-good
//     snapshot, so rollback is free (semantics from core/resilient_online).
//   - Encoding cache: the script->image mapping is memoised per script
//     (serve/encoding_cache.hpp); repeat submissions skip the data-
//     mapping stage. Model swaps invalidate nothing; only an embedding
//     (re)fit clears it.
//   - Backpressure: when the queue is full, submit() sheds the request
//     to the fallback chain (RF -> requested, skipping the NN leg that
//     needs the busy model) and returns an already-resolved future, so
//     saturation degrades answer quality instead of latency.
//
// Everything is instrumented: queue depth, batch size, swap latency,
// cache hit rate, shed count (see DESIGN §11).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/fallback.hpp"
#include "core/online.hpp"
#include "core/predictor.hpp"
#include "core/serve/encoding_cache.hpp"
#include "trace/job_record.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace prionn::core::serve {

struct BatchingOptions {
  /// Most submissions coalesced into one forward pass.
  std::size_t max_batch = 32;
  /// Longest the oldest queued request waits for peers before its batch
  /// is closed (the latency the batcher may add on a quiet service).
  std::uint64_t max_delay_us = 200;
  /// Bounded submit queue; a submit beyond this sheds to the fallback
  /// chain instead of queueing (backpressure).
  std::size_t queue_capacity = 1024;
};

struct ServiceOptions {
  PredictorOptions predictor;
  /// Shared §2.3 cadence parameters (same struct the replay trainers use).
  OnlineProtocolOptions protocol;
  FallbackOptions fallback;
  BatchingOptions batching;

  /// Scripts memoised by the encoding cache; 0 disables it.
  std::size_t encoding_cache_capacity = 4096;

  /// true: a background thread retrains whenever the protocol cadence is
  /// due. false: the owner drives training explicitly via retrain_now()
  /// — the deterministic replay mode (ServingSession) uses this to stay
  /// prediction-for-prediction identical to the sequential trainers.
  bool background_retrain = true;

  /// Divergence guards, as in ResilientOptions: a retrain whose losses
  /// go non-finite, throws nn::TrainingDiverged, or scores below
  /// `min_holdback_accuracy` on a held-back batch is rejected and the
  /// live model keeps serving (0 disables the holdback check).
  double min_holdback_accuracy = 0.0;
  std::size_t holdback_size = 32;
  /// Back-to-back rejected retrains before the NN is benched and the
  /// service degrades to the fallback chain for good.
  std::size_t max_consecutive_rejections = 3;

  /// Throws std::invalid_argument on parameters the service cannot run
  /// with (delegates protocol checks to OnlineProtocolOptions::validate).
  void validate() const;
};

/// Point-in-time snapshot of the service counters (monotonic except
/// queue-depth watermarks). Also exported through the obs registry as
/// prionn_serve_* metrics.
struct ServiceStats {
  std::uint64_t submitted = 0;     // submit() calls accepted or shed
  std::uint64_t served = 0;        // futures fulfilled
  std::uint64_t shed = 0;          // served via the backpressure path
  std::uint64_t batches = 0;       // forward passes run
  std::uint64_t batched_jobs = 0;  // sum of batch sizes
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t swaps = 0;              // accepted retrains published
  std::uint64_t rejected_retrains = 0;  // guard-rejected (rolled back)
  std::uint64_t max_queue_depth = 0;
  bool nn_benched = false;
  /// Fulfilled predictions by provenance, in PredictionSource order.
  std::array<std::uint64_t, 3> source_counts{};

  double mean_batch_size() const noexcept {
    return batches ? static_cast<double>(batched_jobs) /
                         static_cast<double>(batches)
                   : 0.0;
  }
};

class PredictionService {
 public:
  explicit PredictionService(ServiceOptions options);
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Enqueue one submission. The future resolves when the batcher has
  /// served it (or immediately, via the fallback chain, when the queue
  /// is saturated). Never blocks on training. Thread-safe.
  std::future<ProvenancedPrediction> submit(const trace::JobRecord& job);

  /// submit() + get(): the blocking single-item convenience.
  ProvenancedPrediction predict_now(const trace::JobRecord& job);

  /// Record a completed job into the training window; may arm the
  /// background retrain when the cadence is due. Thread-safe.
  void complete(const trace::JobRecord& job);

  /// Block until every accepted submission has been served and no
  /// retrain is in flight.
  void flush();

  /// Run one training event synchronously on the calling thread (only
  /// valid with background_retrain == false). Returns true when the new
  /// model was accepted and swapped in, false when the window was empty
  /// or the guards rejected it.
  bool retrain_now();

  /// Accepted training events so far.
  std::size_t training_events() const;
  bool trained() const { return training_events() > 0; }

  /// True while a retrain (background or retrain_now) is running — the
  /// serving-latency benches use this to classify submissions.
  bool retrain_in_flight() const noexcept {
    return retrain_active_.load(std::memory_order_relaxed);
  }

  ServiceStats stats() const;
  const ServiceOptions& options() const noexcept { return options_; }

 private:
  struct Request {
    trace::JobRecord job;
    std::promise<ProvenancedPrediction> promise;
    std::uint64_t enqueue_ns = 0;
  };

  void batcher_loop();
  void trainer_loop();
  /// Serve one popped micro-batch: one forward pass for the NN-eligible
  /// requests, fallback chain for the rest.
  void serve_batch(std::vector<Request>& batch);
  /// One full training event: snapshot -> shadow train -> guards ->
  /// swap-or-discard. Returns true when the shadow was published.
  /// `claimed` means the caller already owns the trainer_busy_ slot.
  bool run_retrain(bool claimed = false);
  /// Cadence check; callers hold window_mutex_.
  bool retrain_due() const PRIONN_REQUIRES(window_mutex_);
  void fulfill(Request& request, const ProvenancedPrediction& prediction);

  ServiceOptions options_;

  // --- submit queue: producers -> batcher -------------------------------
  mutable util::Mutex queue_mutex_;
  util::CondVar queue_cv_;  // batcher waits for work / batch fill
  util::CondVar idle_cv_;   // flush() waits for outstanding_ == 0
  std::deque<Request> pending_ PRIONN_GUARDED_BY(queue_mutex_);
  std::size_t outstanding_ PRIONN_GUARDED_BY(queue_mutex_) = 0;
  std::uint64_t max_queue_depth_ PRIONN_GUARDED_BY(queue_mutex_) = 0;
  bool drain_fast_ PRIONN_GUARDED_BY(queue_mutex_) = false;
  bool stopping_ PRIONN_GUARDED_BY(queue_mutex_) = false;

  // --- live model: batcher <-> trainer ----------------------------------
  // Held during a batch forward pass, a snapshot encode, and the pointer
  // swap — never during training itself, which runs on the shadow copy.
  mutable util::Mutex model_mutex_;
  std::unique_ptr<PrionnPredictor> live_ PRIONN_GUARDED_BY(model_mutex_);

  // --- completion window & protocol cadence -----------------------------
  mutable util::Mutex window_mutex_;
  util::CondVar trainer_cv_;       // trainer waits for a due cadence
  util::CondVar trainer_done_cv_;  // flush() waits for trainer idle
  std::deque<trace::JobRecord> window_ PRIONN_GUARDED_BY(window_mutex_);
  std::size_t total_completions_ PRIONN_GUARDED_BY(window_mutex_) = 0;
  std::size_t submissions_since_train_ PRIONN_GUARDED_BY(window_mutex_) = 0;
  std::size_t training_events_ PRIONN_GUARDED_BY(window_mutex_) = 0;
  std::size_t rejected_retrains_ PRIONN_GUARDED_BY(window_mutex_) = 0;
  std::size_t consecutive_rejections_ PRIONN_GUARDED_BY(window_mutex_) = 0;
  bool embedding_ready_ PRIONN_GUARDED_BY(window_mutex_) = false;
  bool retrain_requested_ PRIONN_GUARDED_BY(window_mutex_) = false;
  bool trainer_busy_ PRIONN_GUARDED_BY(window_mutex_) = false;
  bool trainer_stop_ PRIONN_GUARDED_BY(window_mutex_) = false;

  // --- fallback chain: batcher + shed path + trainer refit --------------
  mutable util::Mutex fallback_mutex_;
  FallbackPredictor fallback_ PRIONN_GUARDED_BY(fallback_mutex_);

  // --- batcher-private (single-threaded, no lock) -----------------------
  EncodingCache cache_;
  std::uint64_t cache_epoch_seen_ = 0;

  // --- cross-thread flags & counters (relaxed atomics) ------------------
  std::atomic<std::uint64_t> cache_epoch_{0};  // bumped on embedding fit
  std::atomic<bool> nn_benched_{false};
  std::atomic<bool> retrain_active_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_jobs_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::array<std::atomic<std::uint64_t>, 3> source_counts_{};

  std::thread batcher_;
  std::thread trainer_;
};

}  // namespace prionn::core::serve
