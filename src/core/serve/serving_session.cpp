#include "core/serve/serving_session.hpp"

#include <queue>
#include <utility>

#include "obs/obs.hpp"
#include "util/timer.hpp"

namespace prionn::core::serve {

std::vector<std::optional<JobPrediction>> SessionResult::nn_predictions()
    const {
  std::vector<std::optional<JobPrediction>> out(predictions.size());
  for (std::size_t i = 0; i < predictions.size(); ++i)
    if (predictions[i].source == PredictionSource::kNeuralNet)
      out[i] = predictions[i].value;
  return out;
}

ServingSession::ServingSession(SessionOptions options)
    : options_(std::move(options)) {
  // The mode owns the retrain policy: deterministic replay drives
  // training itself, concurrent replay delegates to the service.
  options_.service.background_retrain =
      options_.mode == ReplayMode::kConcurrent;
  service_ = std::make_unique<PredictionService>(options_.service);
}

SessionResult ServingSession::replay(
    const std::vector<trace::JobRecord>& jobs) {
  PRIONN_OBS_SPAN("serve.replay");
  const std::uint64_t t0 = util::Timer::now_ns();
  SessionResult result;

  std::vector<std::future<ProvenancedPrediction>> futures;
  futures.reserve(jobs.size());

  // Same completion model as OnlineTrainer: a min-heap on end_time feeds
  // the training window as the submission clock advances, so the service
  // sees completions in the identical order the sequential replay would.
  const auto later_end = [&jobs](std::size_t a, std::size_t b) {
    return jobs[a].end_time > jobs[b].end_time;
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(later_end)>
      in_flight(later_end);

  const bool deterministic = options_.mode == ReplayMode::kDeterministic;
  const OnlineProtocolOptions& protocol = options_.service.protocol;
  std::size_t completed = 0;
  std::size_t submissions_since_train = 0;
  std::size_t rejected_attempts = 0;

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& job = jobs[i];
    while (!in_flight.empty() &&
           jobs[in_flight.top()].end_time <= job.submit_time) {
      service_->complete(jobs[in_flight.top()]);
      in_flight.pop();
      ++completed;
    }

    if (deterministic) {
      // OnlineTrainer's cadence, verbatim (plus ResilientOnlineTrainer's
      // full-interval backoff after a guard-rejected attempt): retrain at
      // exactly these submissions, with a flush() barrier first so every
      // outstanding request is served by the pre-retrain model.
      const bool trained = service_->trained();
      bool due;
      if (!trained) {
        due = completed >= protocol.min_initial_completions &&
              (rejected_attempts == 0 ||
               submissions_since_train >= protocol.retrain_interval);
      } else {
        due = submissions_since_train >= protocol.retrain_interval;
      }
      if (due && completed > 0 && !service_->stats().nn_benched) {
        service_->flush();
        if (!service_->retrain_now()) ++rejected_attempts;
        submissions_since_train = 0;
      }
    }

    futures.push_back(service_->submit(job));
    ++submissions_since_train;
    in_flight.push(i);
  }

  service_->flush();
  result.predictions.reserve(futures.size());
  for (auto& f : futures) result.predictions.push_back(f.get());
  result.training_events = service_->training_events();
  result.stats = service_->stats();
  result.replay_ns = util::Timer::now_ns() - t0;
  return result;
}

}  // namespace prionn::core::serve
