#include "core/script_image.hpp"

#include <stdexcept>

#include "embed/char_vocab.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"
#include "util/thread_pool.hpp"

namespace prionn::core {

std::string_view transform_name(Transform t) noexcept {
  switch (t) {
    case Transform::kBinary: return "binary";
    case Transform::kSimple: return "simple";
    case Transform::kOneHot: return "one-hot";
    case Transform::kWord2Vec: return "word2vec";
  }
  return "unknown";
}

ScriptImageMapper::ScriptImageMapper(ScriptImageOptions options,
                                     embed::CharEmbedding embedding)
    : options_(options), embedding_(std::move(embedding)) {
  if (options_.rows == 0 || options_.cols == 0)
    throw std::invalid_argument("ScriptImageMapper: grid must be non-empty");
  if (options_.transform == Transform::kWord2Vec && embedding_.empty())
    throw std::invalid_argument(
        "ScriptImageMapper: word2vec transform needs a trained embedding");
}

std::size_t ScriptImageMapper::channels() const noexcept {
  switch (options_.transform) {
    case Transform::kBinary:
    case Transform::kSimple: return 1;
    case Transform::kOneHot: return embed::CharVocab::kSize;
    case Transform::kWord2Vec: return embedding_.dimension();
  }
  return 1;
}

std::vector<std::string> ScriptImageMapper::to_grid(
    std::string_view script) const {
  auto lines = util::split_lines(script);
  lines.resize(options_.rows);  // crop or extend with empty lines
  for (auto& line : lines) line.resize(options_.cols, ' ');
  // Post-condition for the crop/pad above: every script maps to exactly
  // the configured grid (the paper's 64x64), whatever its original shape.
  PRIONN_DCHECK(lines.size() == options_.rows &&
                lines.front().size() == options_.cols &&
                lines.back().size() == options_.cols)
      << "ScriptImageMapper::to_grid: grid is not " << options_.rows << "x"
      << options_.cols;
  return lines;
}

void ScriptImageMapper::write_pixel(float* sample, std::size_t r,
                                    std::size_t c, char ch) const noexcept {
  const std::size_t plane = options_.rows * options_.cols;
  const std::size_t offset = r * options_.cols + c;
  switch (options_.transform) {
    case Transform::kBinary:
      sample[offset] = (ch == ' ' || ch == '\t') ? 0.0f : 1.0f;
      break;
    case Transform::kSimple:
      // Unique value per ASCII character, scaled into [0, 1] so the first
      // convolution sees inputs of unit order.
      sample[offset] = static_cast<float>(embed::CharVocab::token(ch)) /
                       static_cast<float>(embed::CharVocab::kSize - 1);
      break;
    case Transform::kOneHot:
      sample[embed::CharVocab::token(ch) * plane + offset] = 1.0f;
      break;
    case Transform::kWord2Vec: {
      const auto v = embedding_.vector_of(ch);
      PRIONN_DCHECK(v.size() == embedding_.dimension())
          << "ScriptImageMapper: embedding vector width " << v.size()
          << " != dimension " << embedding_.dimension();
      for (std::size_t d = 0; d < v.size(); ++d)
        sample[d * plane + offset] = v[d];
      break;
    }
  }
}

tensor::Tensor ScriptImageMapper::map_2d(std::string_view script) const {
  PRIONN_CHECK(channels() > 0)
      << "ScriptImageMapper: transform '"
      << transform_name(options_.transform) << "' yields zero channels";
  tensor::Tensor out({channels(), options_.rows, options_.cols});
  const auto grid = to_grid(script);
  for (std::size_t r = 0; r < options_.rows; ++r)
    for (std::size_t c = 0; c < options_.cols; ++c)
      write_pixel(out.data(), r, c, grid[r][c]);
  return out;
}

tensor::Tensor ScriptImageMapper::map_1d(std::string_view script) const {
  tensor::Tensor image = map_2d(script);
  // The flattened sequence is the same data viewed as (channels, rows*cols):
  // the grid rows are concatenated, matching the paper's "all lines of the
  // text are concatenated into a single line".
  image.reshape({channels(), options_.rows * options_.cols});
  return image;
}

tensor::Tensor ScriptImageMapper::map_batch_2d(
    std::span<const std::string> scripts) const {
  PRIONN_CHECK(channels() > 0)
      << "ScriptImageMapper: transform '"
      << transform_name(options_.transform) << "' yields zero channels";
  tensor::Tensor out(
      {scripts.size(), channels(), options_.rows, options_.cols});
  const std::size_t sample_size = channels() * options_.rows * options_.cols;
  PRIONN_DCHECK(out.size() == scripts.size() * sample_size)
      << "ScriptImageMapper::map_batch_2d: tensor/sample stride mismatch";
  // The paper maps scripts "concurrently"; each script is independent.
  util::parallel_for(0, scripts.size(), [&](std::size_t i) {
    const auto grid = to_grid(scripts[i]);
    float* sample = out.data() + i * sample_size;
    for (std::size_t r = 0; r < options_.rows; ++r)
      for (std::size_t c = 0; c < options_.cols; ++c)
        write_pixel(sample, r, c, grid[r][c]);
  });
  return out;
}

tensor::Tensor ScriptImageMapper::map_batch_1d(
    std::span<const std::string> scripts) const {
  tensor::Tensor out = map_batch_2d(scripts);
  out.reshape({scripts.size(), channels(), options_.rows * options_.cols});
  return out;
}

}  // namespace prionn::core
