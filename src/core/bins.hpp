// Classifier output bins. The paper's deep models are classifiers: the
// runtime head has 960 nodes, one per minute in [0, 960] (section 2.2);
// for IO we quantise total bytes onto a logarithmic grid, since per-job IO
// spans many orders of magnitude (Fig. 9a).
#pragma once

#include <cstdint>
#include <cstddef>

namespace prionn::core {

/// One-minute runtime bins: bin k represents a runtime of k minutes,
/// k in [0, bins). Cab's 16-hour cap gives the paper's 960 bins.
class RuntimeBins {
 public:
  explicit RuntimeBins(std::size_t bins = 960);

  std::size_t bins() const noexcept { return bins_; }
  std::uint32_t label_of(double minutes) const noexcept;
  double minutes_of(std::uint32_t label) const noexcept;

 private:
  std::size_t bins_;
};

/// Logarithmic byte bins over [min_bytes, max_bytes).
class IoBins {
 public:
  IoBins(std::size_t bins = 64, double min_bytes = 1e4,
         double max_bytes = 1e14);

  std::size_t bins() const noexcept { return bins_; }
  std::uint32_t label_of(double bytes) const noexcept;
  /// Geometric centre of the bin — the value a predicted label decodes to.
  double bytes_of(std::uint32_t label) const noexcept;

 private:
  std::size_t bins_;
  double log_min_, log_max_;
};

}  // namespace prionn::core
