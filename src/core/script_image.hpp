// The paper's central data-mapping idea (section 2.1): crop/pad each job
// script to a fixed 64 x 64 character grid and map every character to one
// or more "pixels" via one of four transforms:
//   binary   - 0 for whitespace, 1 otherwise (lossy, 1 channel)
//   simple   - the ASCII code scaled to [0, 1] (lossless, 1 channel)
//   one-hot  - a 128-wide indicator vector (lossless, 128 channels)
//   word2vec - a learned dense character embedding (lossless, d channels)
// The 2-D mapping preserves the script's line structure; the 1-D mapping
// flattens all lines into one sequence first.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "embed/word2vec.hpp"
#include "tensor/tensor.hpp"

namespace prionn::core {

enum class Transform { kBinary, kSimple, kOneHot, kWord2Vec };

std::string_view transform_name(Transform t) noexcept;

struct ScriptImageOptions {
  std::size_t rows = 64;
  std::size_t cols = 64;
  Transform transform = Transform::kWord2Vec;
};

class ScriptImageMapper {
 public:
  /// The word2vec transform needs a trained embedding; the other three
  /// ignore it.
  explicit ScriptImageMapper(ScriptImageOptions options = {},
                             embed::CharEmbedding embedding = {});

  const ScriptImageOptions& options() const noexcept { return options_; }
  std::size_t channels() const noexcept;

  /// Crop/pad a script to the rows x cols character grid (pad with spaces,
  /// crop overflow) — exposed for inspection tools and tests.
  std::vector<std::string> to_grid(std::string_view script) const;

  /// 2-D mapping: one sample of shape (channels, rows, cols).
  tensor::Tensor map_2d(std::string_view script) const;
  /// 1-D mapping: one sample of shape (channels, rows * cols).
  tensor::Tensor map_1d(std::string_view script) const;

  /// Batch versions: (N, channels, rows, cols) / (N, channels, length).
  /// Span-based so the serving path can map a window of queued requests
  /// without first copying them into a vector.
  tensor::Tensor map_batch_2d(std::span<const std::string> scripts) const;
  tensor::Tensor map_batch_1d(std::span<const std::string> scripts) const;

  const embed::CharEmbedding& embedding() const noexcept {
    return embedding_;
  }

 private:
  /// Write one character's pixel values at grid position (r, c) into a
  /// (channels, rows, cols) sample buffer.
  void write_pixel(float* sample, std::size_t r, std::size_t c,
                   char ch) const noexcept;

  ScriptImageOptions options_;
  embed::CharEmbedding embedding_;
};

}  // namespace prionn::core
