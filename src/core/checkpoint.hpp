// Crash-safe checkpointing for the online serving loop. A checkpoint is a
// versioned, CRC-protected frame around the full predictor state plus the
// online-trainer cursor, written with the classic temp-file + atomic-rename
// dance and a retained `<path>.last-good` generation:
//
//   magic "PRCK" (u32) | format version (u32) | payload size (u64)
//   | CRC-32 of payload (u32) | payload bytes
//
// The payload is PrionnPredictor::save() followed by the
// OnlineCheckpointState, so a restart resumes the *training trajectory*
// bit-exactly — weights, Adam moments, dropout RNG streams and the
// replay cursor all come back.
//
// Load-time policy: a damaged primary (bad magic, wrong version, short
// payload, CRC mismatch) is not fatal; resume_checkpoint() falls back to
// the last-good generation and reports which one it used.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/predictor.hpp"

namespace prionn::core {

/// Unusable checkpoint stream: truncated, corrupt, or wrong version.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kCheckpointMagic = 0x5052434B;  // "PRCK"
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Cursor of the online replay loop at checkpoint time. Taken right after
/// a training event: `next_index` is the submission whose prediction has
/// not happened yet, and the completion bookkeeping is reconstructed by
/// replaying jobs[0..next_index) through the heap without any model work.
struct OnlineCheckpointState {
  std::uint64_t next_index = 0;
  std::uint64_t submissions_since_train = 0;
  bool embedding_ready = false;
};

/// Frame `payload` (magic/version/size/CRC header + bytes) onto a stream.
void write_checkpoint(std::ostream& os, std::string_view payload);

/// Unframe and verify; throws CheckpointError on any damage.
std::string read_checkpoint(std::istream& is);

/// Serialise predictor + cursor into a checkpoint payload.
std::string encode_checkpoint(const PrionnPredictor& predictor,
                              const OnlineCheckpointState& state);

struct DecodedCheckpoint {
  PrionnPredictor predictor;
  OnlineCheckpointState state;
};

/// Inverse of encode_checkpoint. Throws CheckpointError (payload damage
/// that slipped past the CRC would surface in the predictor loader).
DecodedCheckpoint decode_checkpoint(const std::string& payload);

/// `<path>.last-good`: the previous generation, rotated on every write.
std::string last_good_path(const std::string& path);

/// Durable write: frame into `<path>.tmp`, rotate the current `path` to
/// last-good, then atomically rename the temp file over `path`. The
/// kCheckpointTruncate / kSnapshotCorrupt fault points damage the primary
/// *after* the rename (modelling a torn write on a non-atomic filesystem),
/// which is exactly the case the last-good fallback exists for.
void write_checkpoint_file(const std::string& path,
                           const PrionnPredictor& predictor,
                           const OnlineCheckpointState& state);

/// Strict single-file read; throws CheckpointError / std::runtime_error.
DecodedCheckpoint read_checkpoint_file(const std::string& path);

enum class CheckpointSource { kPrimary, kLastGood, kNone };
const char* checkpoint_source_name(CheckpointSource s) noexcept;

struct ResumeResult {
  std::optional<DecodedCheckpoint> checkpoint;  // nullopt => cold start
  CheckpointSource source = CheckpointSource::kNone;
  /// Why the primary was rejected, when the last-good (or nothing) was
  /// used instead; empty when the primary loaded cleanly.
  std::string primary_error;
};

/// Recovery policy entry point: try `path`, fall back to last-good, else
/// report a cold start. Never throws for damaged files — only for I/O
/// conditions that make the decision itself impossible.
ResumeResult resume_checkpoint(const std::string& path);

}  // namespace prionn::core
