#include "core/resilient_online.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "nn/loss.hpp"
#include "obs/obs.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace prionn::core {

std::array<std::size_t, 3> ResilientResult::source_counts() const noexcept {
  std::array<std::size_t, 3> counts{};
  for (const auto& p : predictions)
    if (p) ++counts[static_cast<std::size_t>(p->source)];
  return counts;
}

ResilientOnlineTrainer::ResilientOnlineTrainer(ResilientOptions options)
    : options_(std::move(options)),
      predictor_(options_.online.predictor),
      fallback_(options_.fallback) {
  options_.online.validate("ResilientOnlineTrainer");
}

ResilientResult ResilientOnlineTrainer::run(
    const std::vector<trace::JobRecord>& jobs) {
  ResilientResult result;
  result.predictions.assign(jobs.size(), std::nullopt);

  const auto later_end = [&jobs](std::size_t a, std::size_t b) {
    return jobs[a].end_time > jobs[b].end_time;
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(later_end)>
      in_flight(later_end);
  std::vector<std::size_t> completed;
  completed.reserve(jobs.size());
  const auto drain_until = [&](double submit_time) {
    while (!in_flight.empty() &&
           jobs[in_flight.top()].end_time <= submit_time) {
      completed.push_back(in_flight.top());
      in_flight.pop();
    }
  };
  const auto window_jobs = [&]() {
    const std::size_t window =
        std::min(options_.online.train_window, completed.size());
    std::vector<trace::JobRecord> recent;
    recent.reserve(window);
    for (std::size_t k = completed.size() - window; k < completed.size();
         ++k)
      recent.push_back(jobs[completed[k]]);
    return recent;
  };

  bool embedding_ready =
      options_.online.predictor.image.transform != Transform::kWord2Vec;
  std::size_t submissions_since_train = 0;
  std::size_t start = 0;

  if (!options_.checkpoint_path.empty()) {
    auto resumed = resume_checkpoint(options_.checkpoint_path);
    result.resume_source = resumed.source;
    result.resume_error = std::move(resumed.primary_error);
    if (resumed.checkpoint) {
      predictor_ = std::move(resumed.checkpoint->predictor);
      const auto& st = resumed.checkpoint->state;
      start = std::min<std::size_t>(
          static_cast<std::size_t>(st.next_index), jobs.size());
      submissions_since_train =
          static_cast<std::size_t>(st.submissions_since_train);
      embedding_ready = st.embedding_ready;
    }
  }
  result.resume_index = start;

  // Replay the completion bookkeeping for everything the previous
  // incarnation already processed: pure heap push/pop, no model work.
  for (std::size_t i = 0; i < start; ++i) {
    drain_until(jobs[i].submit_time);
    in_flight.push(i);
  }
  // The fallback baseline is not part of the checkpoint; it refits from
  // the same completion window the checkpointed training event used,
  // which is only fully drained at the top of iteration `start`.
  bool baseline_refit_pending = start > 0 && predictor_.trained();

  bool nn_benched = false;
  std::size_t consecutive_rejections = 0;

  // Telemetry bookkeeping: one structured event per retrain attempt and
  // one per prediction window (the submissions between retrain
  // boundaries), so the event log reconstructs the serving history.
  std::uint64_t retrain_attempts = 0;
  std::uint64_t checkpoint_generation = 0;
  std::uint64_t window_first_job = start;
  std::size_t window_predictions = 0;
  std::array<std::size_t, 3> window_sources{};
  const auto flush_window = [&](std::size_t next_first) {
    if (window_predictions > 0) {
      obs::WindowEvent w;
      w.window_id = retrain_attempts;
      w.first_job_index = window_first_job;
      w.predictions = window_predictions;
      w.from_neural_net = window_sources[0];
      w.from_random_forest = window_sources[1];
      w.from_requested = window_sources[2];
      w.checkpoint_generation = checkpoint_generation;
      obs::emit(w);
    }
    window_predictions = 0;
    window_sources = {};
    window_first_job = next_first;
  };

  for (std::size_t i = start; i < jobs.size(); ++i) {
    const auto& job = jobs[i];
    drain_until(job.submit_time);

    if (baseline_refit_pending && !completed.empty()) {
      fallback_.fit_baseline(window_jobs());
      baseline_refit_pending = false;
    }

    // Identical cadence to OnlineTrainer, except a rejected first event
    // also waits out a full interval before retrying.
    bool due;
    if (!predictor_.trained()) {
      due = completed.size() >= options_.online.min_initial_completions &&
            (result.rejected_retrains == 0 ||
             submissions_since_train >= options_.online.retrain_interval);
    } else {
      due = submissions_since_train >= options_.online.retrain_interval;
    }
    if (due && !nn_benched && !completed.empty()) {
      flush_window(i);
      PRIONN_OBS_SPAN("serve.retrain");
      util::Timer retrain_timer;
      const std::vector<trace::JobRecord> recent = window_jobs();

      if (!embedding_ready) {
        std::vector<std::string> corpus;
        const std::size_t corpus_size =
            std::min(options_.online.embedding_corpus, completed.size());
        corpus.reserve(corpus_size);
        for (std::size_t k = completed.size() - corpus_size;
             k < completed.size(); ++k)
          corpus.push_back(jobs[completed[k]].script);
        predictor_.fit_embedding(corpus);
        embedding_ready = true;
      }

      // Hold back a validation batch when the accuracy guard is on.
      std::vector<trace::JobRecord> train_set = recent;
      std::vector<trace::JobRecord> holdback;
      if (options_.min_holdback_accuracy > 0.0 &&
          recent.size() > options_.holdback_size) {
        holdback.assign(recent.end() - options_.holdback_size,
                        recent.end());
        train_set.assign(recent.begin(),
                         recent.end() - options_.holdback_size);
      }

      // Snapshot before touching the weights: train() is not atomic
      // under divergence, so rejection restores these exact bytes.
      std::string snapshot;
      {
        PRIONN_OBS_SPAN("serve.snapshot");
        std::ostringstream snap(std::ios::binary);
        predictor_.save(snap);
        snapshot = std::move(snap).str();
      }

      obs::RetrainEvent retrain_event;
      retrain_event.window_id = retrain_attempts;
      retrain_event.job_index = i;
      retrain_event.window_size = recent.size();
      retrain_event.holdback_size = holdback.size();

      bool accepted = true;
      try {
        const auto report = predictor_.train(train_set);
        retrain_event.loss = {report.runtime_loss, report.read_loss,
                              report.write_loss};
        if (!std::isfinite(report.runtime_loss) ||
            !std::isfinite(report.read_loss) ||
            !std::isfinite(report.write_loss)) {
          accepted = false;
        } else if (!holdback.empty()) {
          PRIONN_OBS_SPAN("serve.holdback_eval");
          std::vector<std::string> holdback_scripts;
          holdback_scripts.reserve(holdback.size());
          for (const auto& h : holdback)
            holdback_scripts.push_back(h.script);
          // One batched forward over the whole holdback set — the batch
          // path is per-sample identical to single-item predicts.
          const auto predicted = predictor_.predict_batch(holdback_scripts);
          std::size_t correct = 0;
          for (std::size_t h = 0; h < holdback.size(); ++h) {
            if (predictor_.runtime_bins().label_of(
                    predicted[h].value.runtime_minutes) ==
                predictor_.runtime_bins().label_of(
                    holdback[h].runtime_minutes))
              ++correct;
          }
          const double accuracy =
              static_cast<double>(correct) /
              static_cast<double>(holdback.size());
          retrain_event.holdback_accuracy = accuracy;
          accepted = accuracy >= options_.min_holdback_accuracy;
        }
      } catch (const nn::TrainingDiverged&) {
        accepted = false;
      }

      if (accepted) {
        consecutive_rejections = 0;
        ++result.training_events;
        submissions_since_train = 0;
        PRIONN_OBS_INC("prionn_retrains_total",
                       "training events of the online protocol");
        fallback_.fit_baseline(recent);
        if (!options_.checkpoint_path.empty()) {
          OnlineCheckpointState st;
          st.next_index = i;
          st.submissions_since_train = 0;
          st.embedding_ready = embedding_ready;
          write_checkpoint_file(options_.checkpoint_path, predictor_, st);
          ++checkpoint_generation;
          if (util::fault::fire(util::fault::FaultPoint::kCrash)) {
            retrain_event.accepted = true;
            retrain_event.checkpoint_generation = checkpoint_generation;
            retrain_event.duration_ms =
                static_cast<double>(retrain_timer.elapsed_ns()) / 1e6;
            obs::emit(retrain_event);
            ++retrain_attempts;
            result.crashed = true;
            result.crash_index = i;
            return result;
          }
        }
      } else {
        {
          PRIONN_OBS_SPAN("serve.rollback");
          std::istringstream in(snapshot, std::ios::binary);
          predictor_ = PrionnPredictor::load(in);
        }
        ++result.rejected_retrains;
        ++result.rollbacks;
        PRIONN_OBS_INC("prionn_retrains_rejected_total",
                       "retrain attempts rejected by the guards");
        PRIONN_OBS_INC("prionn_rollbacks_total",
                       "weight rollbacks to the pre-retrain snapshot");
        submissions_since_train = 0;  // skip this event, retry next interval
        if (++consecutive_rejections >=
            options_.max_consecutive_rejections) {
          nn_benched = true;
          result.nn_benched = true;
          PRIONN_OBS_INC("prionn_nn_benched_total",
                         "times the neural net was benched for the run");
        }
      }
      retrain_event.accepted = accepted;
      retrain_event.rollback = !accepted;
      retrain_event.benched = nn_benched;
      retrain_event.checkpoint_generation = checkpoint_generation;
      retrain_event.duration_ms =
          static_cast<double>(retrain_timer.elapsed_ns()) / 1e6;
      obs::emit(retrain_event);
      ++retrain_attempts;
    }

    result.predictions[i] =
        fallback_.predict(nn_benched ? nullptr : &predictor_, job);
    ++window_predictions;
    ++window_sources[static_cast<std::size_t>(
        result.predictions[i]->source)];
    ++submissions_since_train;
    in_flight.push(i);
  }
  flush_window(jobs.size());
  return result;
}

}  // namespace prionn::core
