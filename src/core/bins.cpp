#include "core/bins.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prionn::core {

RuntimeBins::RuntimeBins(std::size_t bins) : bins_(bins) {
  if (bins == 0) throw std::invalid_argument("RuntimeBins: bins > 0");
}

std::uint32_t RuntimeBins::label_of(double minutes) const noexcept {
  const double rounded = std::round(std::max(0.0, minutes));
  return static_cast<std::uint32_t>(
      std::min(rounded, static_cast<double>(bins_ - 1)));
}

double RuntimeBins::minutes_of(std::uint32_t label) const noexcept {
  return static_cast<double>(std::min<std::size_t>(label, bins_ - 1));
}

IoBins::IoBins(std::size_t bins, double min_bytes, double max_bytes)
    : bins_(bins),
      log_min_(std::log(min_bytes)),
      log_max_(std::log(max_bytes)) {
  if (bins == 0) throw std::invalid_argument("IoBins: bins > 0");
  if (!(0.0 < min_bytes && min_bytes < max_bytes))
    throw std::invalid_argument("IoBins: need 0 < min_bytes < max_bytes");
}

std::uint32_t IoBins::label_of(double bytes) const noexcept {
  const double clamped = std::max(bytes, std::exp(log_min_));
  const double t = (std::log(clamped) - log_min_) / (log_max_ - log_min_);
  const double idx = std::floor(t * static_cast<double>(bins_));
  return static_cast<std::uint32_t>(
      std::clamp(idx, 0.0, static_cast<double>(bins_ - 1)));
}

double IoBins::bytes_of(std::uint32_t label) const noexcept {
  const double step = (log_max_ - log_min_) / static_cast<double>(bins_);
  const double lo = log_min_ + static_cast<double>(
                                   std::min<std::size_t>(label, bins_ - 1)) *
                                   step;
  return std::exp(lo + 0.5 * step);  // geometric centre
}

}  // namespace prionn::core
