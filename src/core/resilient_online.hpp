// Resilient variant of the online protocol: the same submit/complete
// replay loop as core/online, hardened for long-running serving.
//
//   - Crash safety: after every accepted training event the full state
//     (predictor + replay cursor) goes to a crash-safe checkpoint file;
//     run() resumes a half-replayed trace from it with
//     prediction-for-prediction equivalence to an uninterrupted run.
//   - Divergence rollback: a retrain that throws nn::TrainingDiverged,
//     reports a non-finite loss, or collapses on a held-back batch is
//     rejected — the predictor is restored bit-exactly from an in-memory
//     snapshot taken before the attempt, the event is skipped, and the
//     next interval retries. Bounded: after `max_consecutive_rejections`
//     back-to-back rejections the NN is benched for the rest of the run
//     and serving continues on the fallback chain.
//   - Graceful degradation: every submission gets a prediction with
//     provenance (NN / random forest / user-requested) via
//     core/fallback, even before the first training event.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/fallback.hpp"
#include "core/online.hpp"
#include "core/predictor.hpp"
#include "trace/job_record.hpp"

namespace prionn::core {

struct ResilientOptions {
  /// Protocol parameters (intervals, window, predictor). The
  /// reinitialize_on_retrain ablation flag is ignored here: rollback
  /// depends on the warm-start trajectory being the thing to restore.
  OnlineOptions online;
  FallbackOptions fallback;

  /// Checkpoint file; empty disables checkpointing (rollback still works
  /// off the in-memory snapshot).
  std::string checkpoint_path;

  /// Divergence guard 3 of 3: after a retrain, runtime-bin top-1 accuracy
  /// on a batch held back from the training window must reach this
  /// fraction, or the event is rejected. 0 disables the check (and the
  /// window is then never split).
  double min_holdback_accuracy = 0.0;
  std::size_t holdback_size = 32;

  /// Back-to-back rejected retrains before the NN is benched for the
  /// remainder of the run.
  std::size_t max_consecutive_rejections = 3;
};

struct ResilientResult {
  /// Parallel to the input jobs. Entries before a resumed checkpoint's
  /// cursor are nullopt (they belong to the previous incarnation); every
  /// entry from the cursor on is populated.
  std::vector<std::optional<ProvenancedPrediction>> predictions;

  std::size_t training_events = 0;     // accepted
  std::size_t rejected_retrains = 0;   // diverged / collapsed, rolled back
  std::size_t rollbacks = 0;           // snapshot restores performed
  bool nn_benched = false;  // rejection limit hit; NN off from there on

  /// Where run() started from (primary / last-good / cold start) and why
  /// the primary was unusable, if it was.
  CheckpointSource resume_source = CheckpointSource::kNone;
  std::string resume_error;
  std::size_t resume_index = 0;  // first job processed by this run

  /// The kCrash fault point fired after a checkpoint: run() returned
  /// early, simulating process death. `predictions[crash_index:]` are
  /// unfilled; a fresh run() resumes from the checkpoint.
  bool crashed = false;
  std::size_t crash_index = 0;

  /// Prediction counts by provenance, in PredictionSource order.
  std::array<std::size_t, 3> source_counts() const noexcept;
};

class ResilientOnlineTrainer {
 public:
  explicit ResilientOnlineTrainer(ResilientOptions options = {});

  /// Replay `jobs` (sorted by submit time, canceled jobs removed). Safe to
  /// call on a fresh trainer after a simulated crash: it resumes from the
  /// checkpoint file and fills in the tail.
  ResilientResult run(const std::vector<trace::JobRecord>& jobs);

  PrionnPredictor& predictor() noexcept { return predictor_; }

 private:
  ResilientOptions options_;
  PrionnPredictor predictor_;
  FallbackPredictor fallback_;
};

}  // namespace prionn::core
