// Graceful degradation for serving: every submitted job gets *some*
// prediction with recorded provenance, even when the neural predictor is
// untrained, unconfident, or mid-rollback. The chain is
//
//   1. PRIONN NN      — trained and max-softmax confidence >= threshold
//   2. Random Forest  — the paper's strongest traditional baseline, fit on
//                       the same completion window from Table-1 features
//   3. requested      — the user's requested runtime, zero IO (what the
//                       scheduler would have used before PRIONN existed)
//
// The RF baseline refits from a *fresh* FeatureEncoder each time, so its
// label encoding depends only on the window contents — a resumed run
// refitting on the same window reproduces the same fallback predictions.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/predictor.hpp"
#include "ml/random_forest.hpp"
#include "trace/features.hpp"
#include "trace/job_record.hpp"

namespace prionn::core {

enum class PredictionSource { kNeuralNet, kRandomForest, kRequested };
const char* prediction_source_name(PredictionSource s) noexcept;

struct ProvenancedPrediction {
  JobPrediction value;
  PredictionSource source = PredictionSource::kRequested;
  /// Runtime-head confidence when source == kNeuralNet, else 0.
  double confidence = 0.0;
};

struct FallbackOptions {
  /// Minimum runtime-head softmax confidence for trusting the NN. The
  /// default accepts everything a trained model emits; raise it to shed
  /// low-confidence predictions onto the RF baseline.
  double min_confidence = 0.0;
  ml::RandomForestOptions forest;
};

class FallbackPredictor {
 public:
  explicit FallbackPredictor(FallbackOptions options = {});

  /// (Re)fit the RF baseline heads on a completion window. Skipped (the
  /// baseline stays in its previous state) when the window is empty.
  void fit_baseline(const std::vector<trace::JobRecord>& window);

  bool baseline_ready() const noexcept { return baseline_ready_; }

  /// Walk the chain for one job. `nn` may be null (NN layer skipped
  /// entirely, e.g. while a divergent model is rolled back).
  ProvenancedPrediction predict(PrionnPredictor* nn,
                                const trace::JobRecord& job);

 private:
  FallbackOptions options_;
  std::unique_ptr<ml::RandomForestRegressor> runtime_rf_;
  std::unique_ptr<ml::RandomForestRegressor> read_rf_;
  std::unique_ptr<ml::RandomForestRegressor> write_rf_;
  trace::FeatureEncoder encoder_;
  bool baseline_ready_ = false;
};

}  // namespace prionn::core
