#include "core/fallback.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "obs/obs.hpp"

namespace prionn::core {

namespace {

void count_provenance(PredictionSource source) {
  switch (source) {
    case PredictionSource::kNeuralNet:
      PRIONN_OBS_INC("prionn_predictions_nn_total",
                     "predictions served by the neural net");
      break;
    case PredictionSource::kRandomForest:
      PRIONN_OBS_INC("prionn_predictions_rf_total",
                     "predictions served by the random-forest fallback");
      break;
    case PredictionSource::kRequested:
      PRIONN_OBS_INC("prionn_predictions_requested_total",
                     "predictions served from the user's request");
      break;
  }
}

}  // namespace

const char* prediction_source_name(PredictionSource s) noexcept {
  switch (s) {
    case PredictionSource::kNeuralNet: return "neural-net";
    case PredictionSource::kRandomForest: return "random-forest";
    case PredictionSource::kRequested: return "requested";
  }
  return "?";
}

FallbackPredictor::FallbackPredictor(FallbackOptions options)
    : options_(options) {}

void FallbackPredictor::fit_baseline(
    const std::vector<trace::JobRecord>& window) {
  if (window.empty()) return;
  PRIONN_OBS_SPAN("fallback.fit_baseline");
  PRIONN_OBS_TIME("prionn_rf_refit_latency_ns",
                  "random-forest baseline refit wall time");
  PRIONN_OBS_INC("prionn_rf_refits_total",
                 "random-forest baseline refits");
  // Fresh encoder per fit: the label ids must be a pure function of the
  // window, not of every job this process ever saw, or a resumed run
  // would encode the same window differently.
  encoder_ = trace::FeatureEncoder();
  const auto fit_head = [&](auto target) {
    auto rf = std::make_unique<ml::RandomForestRegressor>(options_.forest);
    rf->fit(encoder_.encode_jobs(window, target));
    return rf;
  };
  runtime_rf_ = fit_head(
      [](const trace::JobRecord& j) { return j.runtime_minutes; });
  read_rf_ =
      fit_head([](const trace::JobRecord& j) { return j.bytes_read; });
  write_rf_ =
      fit_head([](const trace::JobRecord& j) { return j.bytes_written; });
  baseline_ready_ = true;
}

ProvenancedPrediction FallbackPredictor::predict(
    PrionnPredictor* nn, const trace::JobRecord& job) {
  PRIONN_OBS_SPAN("serve.predict");
  PRIONN_OBS_TIME("prionn_predict_latency_ns",
                  "per-job prediction latency");
  PRIONN_OBS_INC("prionn_predictions_total",
                 "predictions served at submission time");
  ProvenancedPrediction out;
  if (nn && nn->trained()) {
    const auto confident =
        nn->predict_batch(std::span<const std::string>(&job.script, 1))
            .front();
    if (confident.runtime_confidence >= options_.min_confidence &&
        std::isfinite(confident.value.runtime_minutes)) {
      out.value = confident.value;
      out.source = PredictionSource::kNeuralNet;
      out.confidence = confident.runtime_confidence;
      count_provenance(out.source);
      return out;
    }
  }
  if (baseline_ready_) {
    const auto row = encoder_.encode_const(trace::parse_script(job.script));
    const std::span<const double> x(row.data(), row.size());
    out.value.runtime_minutes = std::max(1.0, runtime_rf_->predict(x));
    out.value.bytes_read = std::max(0.0, read_rf_->predict(x));
    out.value.bytes_written = std::max(0.0, write_rf_->predict(x));
    out.source = PredictionSource::kRandomForest;
    count_provenance(out.source);
    return out;
  }
  // Last resort: what the scheduler used before PRIONN — the user's own
  // requested runtime, no IO estimate.
  out.value.runtime_minutes = std::max(1.0, job.requested_minutes);
  out.source = PredictionSource::kRequested;
  count_provenance(out.source);
  return out;
}

}  // namespace prionn::core
