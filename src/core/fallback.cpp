#include "core/fallback.hpp"

#include <algorithm>
#include <cmath>
#include <span>

namespace prionn::core {

const char* prediction_source_name(PredictionSource s) noexcept {
  switch (s) {
    case PredictionSource::kNeuralNet: return "neural-net";
    case PredictionSource::kRandomForest: return "random-forest";
    case PredictionSource::kRequested: return "requested";
  }
  return "?";
}

FallbackPredictor::FallbackPredictor(FallbackOptions options)
    : options_(options) {}

void FallbackPredictor::fit_baseline(
    const std::vector<trace::JobRecord>& window) {
  if (window.empty()) return;
  // Fresh encoder per fit: the label ids must be a pure function of the
  // window, not of every job this process ever saw, or a resumed run
  // would encode the same window differently.
  encoder_ = trace::FeatureEncoder();
  const auto fit_head = [&](auto target) {
    auto rf = std::make_unique<ml::RandomForestRegressor>(options_.forest);
    rf->fit(encoder_.encode_jobs(window, target));
    return rf;
  };
  runtime_rf_ = fit_head(
      [](const trace::JobRecord& j) { return j.runtime_minutes; });
  read_rf_ =
      fit_head([](const trace::JobRecord& j) { return j.bytes_read; });
  write_rf_ =
      fit_head([](const trace::JobRecord& j) { return j.bytes_written; });
  baseline_ready_ = true;
}

ProvenancedPrediction FallbackPredictor::predict(
    PrionnPredictor* nn, const trace::JobRecord& job) {
  ProvenancedPrediction out;
  if (nn && nn->trained()) {
    const auto confident = nn->predict_with_confidence(job.script);
    if (confident.runtime_confidence >= options_.min_confidence &&
        std::isfinite(confident.value.runtime_minutes)) {
      out.value = confident.value;
      out.source = PredictionSource::kNeuralNet;
      out.confidence = confident.runtime_confidence;
      return out;
    }
  }
  if (baseline_ready_) {
    const auto row = encoder_.encode_const(trace::parse_script(job.script));
    const std::span<const double> x(row.data(), row.size());
    out.value.runtime_minutes = std::max(1.0, runtime_rf_->predict(x));
    out.value.bytes_read = std::max(0.0, read_rf_->predict(x));
    out.value.bytes_written = std::max(0.0, write_rf_->predict(x));
    out.source = PredictionSource::kRandomForest;
    return out;
  }
  // Last resort: what the scheduler used before PRIONN — the user's own
  // requested runtime, no IO estimate.
  out.value.runtime_minutes = std::max(1.0, job.requested_minutes);
  out.source = PredictionSource::kRequested;
  return out;
}

}  // namespace prionn::core
