#include "core/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "obs/obs.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"

namespace prionn::core {

namespace {

namespace fs = std::filesystem;

/// Allocation-bomb guard for the payload-size field of a damaged header.
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

template <typename T>
void write_raw(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T read_raw(std::istream& is, const char* what) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw CheckpointError(std::string("truncated checkpoint ") + what);
  return v;
}

/// Deterministic post-rename damage used by the fault hooks: truncate the
/// file to half, or flip one bit a third of the way in.
void truncate_file(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) return;
  fs::resize_file(path, size / 2, ec);
}

void corrupt_file(const std::string& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(f.tellg());
  if (size == 0) return;
  const auto offset = static_cast<std::streamoff>(size / 3);
  f.seekg(offset);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  f.seekp(offset);
  f.write(&byte, 1);
}

}  // namespace

void write_checkpoint(std::ostream& os, std::string_view payload) {
  write_raw(os, kCheckpointMagic);
  write_raw(os, kCheckpointVersion);
  write_raw(os, static_cast<std::uint64_t>(payload.size()));
  write_raw(os, util::crc32(payload));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

std::string read_checkpoint(std::istream& is) {
  if (read_raw<std::uint32_t>(is, "magic") != kCheckpointMagic)
    throw CheckpointError("not a PRIONN checkpoint (bad magic)");
  const auto version = read_raw<std::uint32_t>(is, "version");
  if (version != kCheckpointVersion)
    throw CheckpointError("unsupported checkpoint version " +
                          std::to_string(version));
  const auto size = read_raw<std::uint64_t>(is, "payload size");
  if (size > kMaxPayloadBytes)
    throw CheckpointError("implausible checkpoint payload size " +
                          std::to_string(size));
  const auto crc = read_raw<std::uint32_t>(is, "CRC");
  std::string payload(static_cast<std::size_t>(size), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!is) throw CheckpointError("truncated checkpoint payload");
  if (util::crc32(payload) != crc)
    throw CheckpointError("checkpoint CRC mismatch");
  return payload;
}

std::string encode_checkpoint(const PrionnPredictor& predictor,
                              const OnlineCheckpointState& state) {
  std::ostringstream os(std::ios::binary);
  predictor.save(os);
  write_raw(os, state.next_index);
  write_raw(os, state.submissions_since_train);
  write_raw(os, static_cast<std::uint8_t>(state.embedding_ready ? 1 : 0));
  return std::move(os).str();
}

DecodedCheckpoint decode_checkpoint(const std::string& payload) {
  std::istringstream is(payload, std::ios::binary);
  try {
    PrionnPredictor predictor = PrionnPredictor::load(is);
    OnlineCheckpointState state;
    state.next_index = read_raw<std::uint64_t>(is, "cursor");
    state.submissions_since_train = read_raw<std::uint64_t>(is, "cursor");
    state.embedding_ready = read_raw<std::uint8_t>(is, "cursor") != 0;
    return DecodedCheckpoint{std::move(predictor), state};
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    // The predictor loader throws plain runtime_errors; a payload that got
    // past the CRC yet fails there is still a checkpoint-level problem.
    throw CheckpointError(std::string("checkpoint payload rejected: ") +
                          e.what());
  }
}

std::string last_good_path(const std::string& path) {
  return path + ".last-good";
}

void write_checkpoint_file(const std::string& path,
                           const PrionnPredictor& predictor,
                           const OnlineCheckpointState& state) {
  PRIONN_OBS_SPAN("checkpoint.write");
  PRIONN_OBS_TIME("prionn_checkpoint_write_latency_ns",
                  "durable checkpoint write incl. last-good rotation");
  PRIONN_OBS_INC("prionn_checkpoint_writes_total",
                 "durable checkpoint generations written");
  const std::string payload = encode_checkpoint(predictor, state);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os)
      throw std::runtime_error("write_checkpoint_file: cannot open " + tmp);
    write_checkpoint(os, payload);
    os.flush();
    if (!os)
      throw std::runtime_error("write_checkpoint_file: short write to " +
                               tmp);
  }

  std::error_code ec;
  if (fs::exists(path, ec)) {
    fs::rename(path, last_good_path(path), ec);
    if (ec)
      throw std::runtime_error(
          "write_checkpoint_file: cannot rotate last-good: " + ec.message());
  }
  fs::rename(tmp, path, ec);
  if (ec)
    throw std::runtime_error("write_checkpoint_file: cannot publish " +
                             path + ": " + ec.message());

  // Fault hooks fire after the publish: on a filesystem without atomic
  // rename semantics a crash tears the *new* primary, never the rotated
  // last-good generation.
  if (util::fault::fire(util::fault::FaultPoint::kCheckpointTruncate))
    truncate_file(path);
  if (util::fault::fire(util::fault::FaultPoint::kSnapshotCorrupt))
    corrupt_file(path);
}

DecodedCheckpoint read_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw std::runtime_error("read_checkpoint_file: cannot open " + path);
  return decode_checkpoint(read_checkpoint(is));
}

const char* checkpoint_source_name(CheckpointSource s) noexcept {
  switch (s) {
    case CheckpointSource::kPrimary: return "primary";
    case CheckpointSource::kLastGood: return "last-good";
    case CheckpointSource::kNone: return "cold-start";
  }
  return "?";
}

ResumeResult resume_checkpoint(const std::string& path) {
  PRIONN_OBS_SPAN("checkpoint.resume");
  ResumeResult result;
  const auto try_load =
      [](const std::string& p,
         std::string& error) -> std::optional<DecodedCheckpoint> {
    std::error_code ec;
    if (!fs::exists(p, ec)) {
      error = p + ": no such checkpoint";
      return std::nullopt;
    }
    try {
      return read_checkpoint_file(p);
    } catch (const std::exception& e) {
      error = e.what();
      return std::nullopt;
    }
  };

  std::string error;
  if (auto primary = try_load(path, error)) {
    result.checkpoint = std::move(primary);
    result.source = CheckpointSource::kPrimary;
    PRIONN_OBS_INC("prionn_checkpoint_resume_primary_total",
                   "resumes served by the primary checkpoint");
    return result;
  }
  result.primary_error = error;
  if (auto fallback = try_load(last_good_path(path), error)) {
    result.checkpoint = std::move(fallback);
    result.source = CheckpointSource::kLastGood;
    PRIONN_OBS_INC("prionn_checkpoint_resume_lastgood_total",
                   "resumes that fell back to the last-good generation");
    return result;
  }
  result.source = CheckpointSource::kNone;
  PRIONN_OBS_INC("prionn_checkpoint_resume_cold_total",
                 "resume attempts that found no usable checkpoint");
  return result;
}

}  // namespace prionn::core
