// The paper's online training protocol (section 2.3): predictions happen
// at submission time; after every 100 submissions the model is retrained
// (warm start) on the 500 most recently *completed* jobs, so knowledge is
// retained across training events while the model tracks the workload.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/predictor.hpp"
#include "trace/job_record.hpp"

namespace prionn::core {

struct OnlineOptions {
  PredictorOptions predictor;
  std::size_t retrain_interval = 100;  // submissions between retrains
  std::size_t train_window = 500;      // most recent completions used
  std::size_t embedding_corpus = 500;  // scripts for the one-off w2v fit
  /// Completions needed before the first training event.
  std::size_t min_initial_completions = 100;
  /// Ablation switch: when true, the model is re-initialised before every
  /// retraining instead of warm-started. The paper argues warm starts are
  /// what lets a 500-job window work ("learned parameters pass to
  /// subsequent models"); this flag lets the claim be measured.
  bool reinitialize_on_retrain = false;
};

struct OnlineResult {
  /// Parallel to the input jobs; nullopt while the model was still
  /// untrained at that job's submission.
  std::vector<std::optional<JobPrediction>> predictions;
  std::size_t training_events = 0;
  double train_seconds = 0.0;    // total wall time in train()
  double predict_seconds = 0.0;  // total wall time in predict()

  /// Indices of jobs that actually received a prediction.
  std::vector<std::size_t> predicted_indices() const;
};

/// Replays a completed-jobs trace (sorted by submit time, canceled jobs
/// already removed) through the online protocol.
class OnlineTrainer {
 public:
  explicit OnlineTrainer(OnlineOptions options = {});

  OnlineResult run(const std::vector<trace::JobRecord>& jobs);

  /// Access the predictor after run() (e.g. for follow-up predictions).
  PrionnPredictor& predictor() noexcept { return predictor_; }

 private:
  OnlineOptions options_;
  PrionnPredictor predictor_;
};

}  // namespace prionn::core
