// The paper's online training protocol (section 2.3): predictions happen
// at submission time; after every 100 submissions the model is retrained
// (warm start) on the 500 most recently *completed* jobs, so knowledge is
// retained across training events while the model tracks the workload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/predictor.hpp"
#include "trace/job_record.hpp"

namespace prionn::core {

/// The paper's §2.3 protocol parameters, shared by every consumer of the
/// online cadence: OnlineTrainer, ResilientOnlineTrainer, and the
/// concurrent serve::PredictionService. One definition, one validation.
struct OnlineProtocolOptions {
  std::size_t retrain_interval = 100;  // submissions between retrains
  std::size_t train_window = 500;      // most recent completions used
  std::size_t embedding_corpus = 500;  // scripts for the one-off w2v fit
  /// Completions needed before the first training event.
  std::size_t min_initial_completions = 100;

  /// Throws std::invalid_argument for parameters the protocol cannot run
  /// with (zero interval/window/corpus). Called by every consumer at
  /// construction, so a bad configuration fails before any replay work.
  void validate(const char* who) const;
};

struct OnlineOptions : OnlineProtocolOptions {
  PredictorOptions predictor;
  /// Ablation switch: when true, the model is re-initialised before every
  /// retraining instead of warm-started. The paper argues warm starts are
  /// what lets a 500-job window work ("learned parameters pass to
  /// subsequent models"); this flag lets the claim be measured.
  bool reinitialize_on_retrain = false;
};

struct OnlineResult {
  /// Parallel to the input jobs; nullopt while the model was still
  /// untrained at that job's submission.
  std::vector<std::optional<JobPrediction>> predictions;
  std::size_t training_events = 0;
  /// Monotonic (steady-clock) totals, accumulated from
  /// util::Timer::now_ns deltas so an NTP slew mid-replay cannot skew
  /// them; also exported as prionn_online_{train,predict}_seconds gauges.
  std::uint64_t train_ns = 0;    // total time in fit_embedding()+train()
  std::uint64_t predict_ns = 0;  // total time in predict_batch()
  double train_seconds = 0.0;    // train_ns in seconds, for convenience
  double predict_seconds = 0.0;  // predict_ns in seconds

  /// Indices of jobs that actually received a prediction.
  std::vector<std::size_t> predicted_indices() const;
};

/// Replays a completed-jobs trace (sorted by submit time, canceled jobs
/// already removed) through the online protocol.
class OnlineTrainer {
 public:
  explicit OnlineTrainer(OnlineOptions options = {});

  OnlineResult run(const std::vector<trace::JobRecord>& jobs);

  /// Access the predictor after run() (e.g. for follow-up predictions).
  PrionnPredictor& predictor() noexcept { return predictor_; }

 private:
  OnlineOptions options_;
  PrionnPredictor predictor_;
};

}  // namespace prionn::core
