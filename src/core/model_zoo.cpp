#include "core/model_zoo.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/pool.hpp"

namespace prionn::core {

std::string_view model_name(ModelKind kind) noexcept {
  switch (kind) {
    case ModelKind::kFullyConnected: return "NN";
    case ModelKind::kCnn1d: return "1D-CNN";
    case ModelKind::kCnn2d: return "2D-CNN";
  }
  return "unknown";
}

namespace {

using nn::Network;

/// Four conv blocks + four fully connected layers (paper preset), or a
/// narrower variant with the same shape (fast preset).
Network build_cnn2d(const ModelConfig& cfg, util::Rng& rng) {
  const bool paper = cfg.preset == ModelPreset::kPaper;
  const std::size_t c1 = paper ? 8 : 4, c2 = paper ? 16 : 8,
                    c3 = paper ? 16 : 8, c4 = paper ? 32 : 16;
  Network net;
  net.emplace<nn::Conv2d>(cfg.channels, c1, 3, 3, 1, 1, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::MaxPool2d>(2);
  net.emplace<nn::Conv2d>(c1, c2, 3, 3, 1, 1, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::MaxPool2d>(2);
  net.emplace<nn::Conv2d>(c2, c3, 3, 3, 1, 1, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::MaxPool2d>(2);
  net.emplace<nn::Conv2d>(c3, c4, 3, 3, 1, 1, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::MaxPool2d>(2);
  net.emplace<nn::Flatten>();
  const std::size_t flat = c4 * (cfg.rows / 16) * (cfg.cols / 16);
  const std::size_t f1 = paper ? 256 : 128, f2 = paper ? 128 : 96,
                    f3 = paper ? 128 : 64;
  net.emplace<nn::Dense>(flat, f1, rng);
  net.emplace<nn::Relu>();
  if (cfg.dropout > 0.0) net.emplace<nn::Dropout>(cfg.dropout, rng());
  net.emplace<nn::Dense>(f1, f2, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::Dense>(f2, f3, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::Dense>(f3, cfg.classes, rng);
  return net;
}

/// Several 1-D conv layers followed by fully connected layers (paper
/// section 2.2).
Network build_cnn1d(const ModelConfig& cfg, util::Rng& rng) {
  const bool paper = cfg.preset == ModelPreset::kPaper;
  const std::size_t c1 = paper ? 8 : 4, c2 = paper ? 16 : 8,
                    c3 = paper ? 32 : 16;
  const std::size_t length = cfg.rows * cfg.cols;
  Network net;
  net.emplace<nn::Conv1d>(cfg.channels, c1, 7, 1, 3, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::MaxPool1d>(4);
  net.emplace<nn::Conv1d>(c1, c2, 5, 1, 2, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::MaxPool1d>(4);
  net.emplace<nn::Conv1d>(c2, c3, 3, 1, 1, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::MaxPool1d>(4);
  net.emplace<nn::Flatten>();
  const std::size_t flat = c3 * (length / 64);
  const std::size_t f1 = paper ? 256 : 128, f2 = paper ? 128 : 64;
  net.emplace<nn::Dense>(flat, f1, rng);
  net.emplace<nn::Relu>();
  if (cfg.dropout > 0.0) net.emplace<nn::Dropout>(cfg.dropout, rng());
  net.emplace<nn::Dense>(f1, f2, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::Dense>(f2, cfg.classes, rng);
  return net;
}

/// "Many fully connected hidden layers" over the flattened sequence.
Network build_fully_connected(const ModelConfig& cfg, util::Rng& rng) {
  const bool paper = cfg.preset == ModelPreset::kPaper;
  const std::size_t input = cfg.channels * cfg.rows * cfg.cols;
  const std::size_t h1 = paper ? 512 : 192, h2 = paper ? 256 : 128,
                    h3 = paper ? 128 : 64;
  Network net;
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(input, h1, rng);
  net.emplace<nn::Relu>();
  if (cfg.dropout > 0.0) net.emplace<nn::Dropout>(cfg.dropout, rng());
  net.emplace<nn::Dense>(h1, h2, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::Dense>(h2, h3, rng);
  net.emplace<nn::Relu>();
  net.emplace<nn::Dense>(h3, cfg.classes, rng);
  return net;
}

}  // namespace

nn::Network build_model(const ModelConfig& cfg) {
  if (cfg.rows % 16 != 0 || cfg.cols % 16 != 0)
    throw std::invalid_argument(
        "build_model: rows/cols must be divisible by 16 (four 2x2 pools)");
  util::Rng rng(cfg.seed);
  switch (cfg.kind) {
    case ModelKind::kCnn2d: return build_cnn2d(cfg, rng);
    case ModelKind::kCnn1d: return build_cnn1d(cfg, rng);
    case ModelKind::kFullyConnected: return build_fully_connected(cfg, rng);
  }
  throw std::invalid_argument("build_model: unknown model kind");
}

}  // namespace prionn::core
