#include "core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace prionn::core {

namespace {

/// Map JobRecords to SimJobs; the scheduler believes the user request.
std::vector<sched::SimJob> to_sim_jobs(
    const std::vector<trace::JobRecord>& jobs) {
  std::vector<sched::SimJob> out;
  out.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& j = jobs[i];
    sched::SimJob s;
    s.id = i;  // index-keyed so results can align with the inputs
    s.submit_time = j.submit_time;
    s.nodes = std::max<std::uint32_t>(1, j.requested_nodes);
    s.runtime = j.runtime_minutes * 60.0;
    s.believed_runtime = j.requested_minutes * 60.0;
    out.push_back(s);
  }
  return out;
}

}  // namespace

TurnaroundEval evaluate_turnaround(
    const std::vector<trace::JobRecord>& jobs,
    const std::vector<JobPrediction>& predictions,
    const Phase2Options& options) {
  if (jobs.size() != predictions.size())
    throw std::invalid_argument(
        "evaluate_turnaround: jobs/predictions size mismatch");
  PRIONN_OBS_SPAN("phase2.turnaround");
  PRIONN_OBS_TIME("prionn_turnaround_eval_latency_ns",
                  "turnaround replay over one job set");

  const auto sim_jobs = to_sim_jobs(jobs);
  const auto user_runtime = [&](std::uint64_t id) {
    return jobs[id].requested_minutes * 60.0;
  };
  const auto prionn_runtime = [&](std::uint64_t id) {
    return predictions[id].runtime_minutes * 60.0;
  };

  TurnaroundEval eval;
  eval.predicted_user.assign(jobs.size(), 0.0);
  eval.predicted_prionn.assign(jobs.size(), 0.0);
  eval.simulated.assign(jobs.size(), 0.0);

  sched::ClusterSimulator sim(options.cluster);
  for (const auto& job : sim_jobs) {
    sim.submit(job);
    // Snapshot the live state and replay it twice, once per runtime source
    // (paper section 4.2).
    eval.predicted_user[job.id] = sim.snapshot_turnaround(job.id, user_runtime);
    eval.predicted_prionn[job.id] =
        sim.snapshot_turnaround(job.id, prionn_runtime);
  }
  sim.drain();

  eval.schedule = sim.completed();
  for (const auto& done : eval.schedule) {
    // The simulator hands back ids it was given; an out-of-range id here
    // would scribble outside the result vectors.
    PRIONN_CHECK(done.id < eval.simulated.size())
        << "evaluate_turnaround: simulator returned unknown job id "
        << done.id << " (submitted " << jobs.size() << ")";
    eval.simulated[done.id] = done.turnaround();
  }
  return eval;
}

std::vector<sched::IoInterval> actual_io_intervals(
    const std::vector<trace::JobRecord>& jobs,
    const std::vector<sched::ScheduledJob>& schedule) {
  std::vector<sched::IoInterval> out;
  out.reserve(schedule.size());
  for (const auto& s : schedule) {
    const auto& j = jobs.at(s.id);
    const double duration = s.end_time - s.start_time;
    if (duration <= 0.0) continue;
    const double bandwidth = (j.bytes_read + j.bytes_written) / duration;
    PRIONN_DCHECK_FINITE(bandwidth)
        << "actual_io_intervals: job " << s.id << " over " << duration
        << "s";
    out.push_back({s.start_time, s.end_time, bandwidth});
  }
  return out;
}

std::vector<sched::IoInterval> predicted_io_intervals_perfect(
    const std::vector<trace::JobRecord>& jobs,
    const std::vector<sched::ScheduledJob>& schedule,
    const std::vector<JobPrediction>& predictions) {
  if (jobs.size() != predictions.size())
    throw std::invalid_argument(
        "predicted_io_intervals_perfect: size mismatch");
  std::vector<sched::IoInterval> out;
  out.reserve(schedule.size());
  for (const auto& s : schedule) {
    const auto& p = predictions.at(s.id);
    out.push_back({s.start_time, s.end_time,
                   p.read_bandwidth() + p.write_bandwidth()});
  }
  return out;
}

std::vector<sched::IoInterval> predicted_io_intervals_predicted(
    const std::vector<trace::JobRecord>& jobs,
    const std::vector<double>& predicted_turnaround_seconds,
    const std::vector<JobPrediction>& predictions) {
  if (jobs.size() != predictions.size() ||
      jobs.size() != predicted_turnaround_seconds.size())
    throw std::invalid_argument(
        "predicted_io_intervals_predicted: size mismatch");
  std::vector<sched::IoInterval> out;
  out.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double turnaround = predicted_turnaround_seconds[i];
    if (turnaround <= 0.0) continue;  // snapshot replay failed / unknown job
    const double end = jobs[i].submit_time + turnaround;
    const double start =
        std::max(jobs[i].submit_time,
                 end - predictions[i].runtime_minutes * 60.0);
    out.push_back({start, end,
                   predictions[i].read_bandwidth() +
                       predictions[i].write_bandwidth()});
  }
  return out;
}

SystemIoEval evaluate_system_io(
    const std::vector<sched::IoInterval>& actual,
    const std::vector<sched::IoInterval>& predicted,
    const Phase2Options& options) {
  PRIONN_OBS_SPAN("phase2.system_io");
  sched::IoTimeline actual_tl(options.bucket_seconds);
  sched::IoTimeline predicted_tl(options.bucket_seconds);
  actual_tl.add(actual);
  predicted_tl.add(predicted);
  const std::size_t buckets =
      std::max(actual_tl.buckets(), predicted_tl.buckets());
  actual_tl.resize(buckets);
  predicted_tl.resize(buckets);

  SystemIoEval eval;
  eval.actual_series = actual_tl.series();
  eval.predicted_series = predicted_tl.series();

  // Relative accuracy over buckets where the system was active in either
  // series (idle/idle buckets are trivially correct and would inflate the
  // score).
  for (std::size_t b = 0; b < buckets; ++b) {
    const double a = eval.actual_series[b], p = eval.predicted_series[b];
    if (a <= 0.0 && p <= 0.0) continue;
    eval.accuracies.push_back(util::relative_accuracy(a, p));
  }

  const sched::BurstDetector detector({options.burst_sigma});
  eval.burst_threshold = detector.threshold_of(eval.actual_series);
  const auto actual_bursts =
      detector.detect(eval.actual_series, eval.burst_threshold);
  const auto predicted_bursts =
      detector.detect(eval.predicted_series, eval.burst_threshold);

  const double buckets_per_minute = 60.0 / options.bucket_seconds;
  for (const std::size_t w : options.window_minutes) {
    const auto half = static_cast<std::size_t>(
        static_cast<double>(w) * buckets_per_minute / 2.0);
    eval.windows.push_back(
        {w, sched::score_bursts(actual_bursts, predicted_bursts, half)});
  }
  return eval;
}

}  // namespace prionn::core
