#include "core/predictor.hpp"

#include "obs/obs.hpp"
#include "tensor/ops.hpp"
#include "util/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace prionn::core {

PrionnPredictor::PrionnPredictor(PredictorOptions options)
    : options_(options),
      runtime_bins_(options.runtime_bins),
      io_bins_(options.io_bins),
      runtime_opt_(options.learning_rate),
      read_opt_(options.learning_rate),
      write_opt_(options.learning_rate) {
  ModelConfig cfg;
  cfg.kind = options_.model;
  cfg.preset = options_.preset;
  cfg.rows = options_.image.rows;
  cfg.cols = options_.image.cols;
  cfg.dropout = options_.dropout;
  cfg.seed = options_.seed;
  switch (options_.image.transform) {
    case Transform::kBinary:
    case Transform::kSimple: cfg.channels = 1; break;
    case Transform::kOneHot: cfg.channels = embed::CharVocab::kSize; break;
    case Transform::kWord2Vec:
      cfg.channels = options_.word2vec_dimension;
      break;
  }
  cfg.classes = options_.runtime_bins;
  runtime_net_ = build_model(cfg);
  if (options_.predict_io) {
    cfg.classes = options_.io_bins;
    cfg.seed = options_.seed + 1;
    read_net_ = build_model(cfg);
    cfg.seed = options_.seed + 2;
    write_net_ = build_model(cfg);
  }
  if (options_.image.transform != Transform::kWord2Vec) ensure_mapper();
}

void PrionnPredictor::ensure_mapper() {
  if (!mapper_)
    mapper_.emplace(options_.image, embedding_);
}

const ScriptImageMapper& PrionnPredictor::mapper() const {
  if (!mapper_)
    throw std::logic_error(
        "PrionnPredictor: word2vec embedding not fitted yet");
  return *mapper_;
}

void PrionnPredictor::fit_embedding(const std::vector<std::string>& scripts) {
  if (options_.image.transform != Transform::kWord2Vec) return;
  PRIONN_OBS_SPAN("train.embedding_fit");
  PRIONN_OBS_INC("prionn_embedding_fits_total",
                 "one-off word2vec corpus fits");
  embed::Word2VecOptions w2v;
  w2v.dimension = options_.word2vec_dimension;
  w2v.seed = options_.seed ^ 0x77327665ULL;  // "w2ve"
  embed::Word2VecTrainer trainer(w2v);
  embedding_ = trainer.train(scripts);
  mapper_.reset();
  ensure_mapper();
}

void PrionnPredictor::set_embedding(embed::CharEmbedding embedding) {
  embedding_ = std::move(embedding);
  if (options_.image.transform == Transform::kWord2Vec) {
    mapper_.reset();
    if (!embedding_.empty()) ensure_mapper();
  }
}

tensor::Tensor PrionnPredictor::map_batch(
    std::span<const std::string> scripts) const {
  // The script->image transform (incl. the embedding lookup for word2vec)
  // is the first leg of the per-job hot path.
  PRIONN_OBS_SPAN("predict.map_image");
  const bool two_d = options_.model == ModelKind::kCnn2d;
  return two_d ? mapper().map_batch_2d(scripts)
               : mapper().map_batch_1d(scripts);
}

tensor::Tensor PrionnPredictor::map_sample(std::string_view script) const {
  const bool two_d = options_.model == ModelKind::kCnn2d;
  return two_d ? mapper().map_2d(script) : mapper().map_1d(script);
}

PrionnPredictor::TrainReport PrionnPredictor::train(
    const std::vector<trace::JobRecord>& completed_jobs) {
  PRIONN_OBS_SPAN("train.fit");
  PRIONN_OBS_TIME("prionn_train_latency_ns",
                  "wall time of one train() call (all heads)");
  if (completed_jobs.empty())
    throw std::invalid_argument("PrionnPredictor::train: no jobs");
  if (options_.image.transform == Transform::kWord2Vec && !mapper_)
    throw std::logic_error(
        "PrionnPredictor::train: call fit_embedding() first");

  std::vector<std::string> scripts;
  std::vector<std::uint32_t> runtime_labels, read_labels, write_labels;
  scripts.reserve(completed_jobs.size());
  for (const auto& job : completed_jobs) {
    scripts.push_back(job.script);
    runtime_labels.push_back(runtime_bins_.label_of(job.runtime_minutes));
    read_labels.push_back(io_bins_.label_of(job.bytes_read));
    write_labels.push_back(io_bins_.label_of(job.bytes_written));
  }
  tensor::Tensor batch = map_batch(scripts);
  // Fault-injection point: a corrupted ingestion path or DMA error shows
  // up as garbage in the training batch; the harness models it as NaNs so
  // the divergence-rollback path can be driven deterministically.
  if (util::fault::fire(util::fault::FaultPoint::kNanPoisonBatch))
    util::fault::poison_with_nans(batch.span(),
                                  options_.seed + training_events_);

  nn::FitOptions fit;
  fit.epochs = options_.epochs;
  fit.batch_size = options_.batch_size;
  fit.shuffle_seed = options_.seed + training_events_;
  fit.max_gradient_norm = options_.max_gradient_norm;
  TrainReport report;
  report.runtime_loss =
      runtime_net_.fit(batch, runtime_labels, runtime_opt_, fit).final_loss();
  if (options_.predict_io) {
    report.read_loss =
        read_net_.fit(batch, read_labels, read_opt_, fit).final_loss();
    report.write_loss =
        write_net_.fit(batch, write_labels, write_opt_, fit).final_loss();
  }
  trained_ = true;
  ++training_events_;
  return report;
}

std::vector<ConfidentPrediction> PrionnPredictor::predict_batch(
    std::span<const std::string> scripts) {
  if (!trained_)
    throw std::logic_error("PrionnPredictor::predict: model not trained");
  if (scripts.empty()) return {};
  return predict_batch_mapped(map_batch(scripts));
}

std::vector<ConfidentPrediction> PrionnPredictor::predict_batch_mapped(
    const tensor::Tensor& batch) {
  if (!trained_)
    throw std::logic_error("PrionnPredictor::predict: model not trained");
  if (batch.empty()) return {};
  PRIONN_OBS_SPAN("predict.forward");
  const std::size_t n = batch.dim(0);

  const auto runtime_top = runtime_net_.predict_top1(batch);
  std::vector<nn::Network::Top1> read_top, write_top;
  if (options_.predict_io) {
    read_top = read_net_.predict_top1(batch);
    write_top = write_net_.predict_top1(batch);
  }

  std::vector<ConfidentPrediction> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    // A zero-minute prediction would produce an infinite bandwidth; the
    // shortest representable job is one minute, as in the generator.
    out[i].value.runtime_minutes =
        std::max(1.0, runtime_bins_.minutes_of(runtime_top[i].cls));
    out[i].runtime_confidence = runtime_top[i].probability;
    if (options_.predict_io) {
      out[i].value.bytes_read = io_bins_.bytes_of(read_top[i].cls);
      out[i].value.bytes_written = io_bins_.bytes_of(write_top[i].cls);
      out[i].read_confidence = read_top[i].probability;
      out[i].write_confidence = write_top[i].probability;
    }
  }
  return out;
}

JobPrediction PrionnPredictor::predict(const std::string& script) {
  return predict_batch(std::span<const std::string>(&script, 1))
      .front()
      .value;
}

ConfidentPrediction PrionnPredictor::predict_with_confidence(
    const std::string& script) {
  return predict_batch(std::span<const std::string>(&script, 1)).front();
}

namespace {

constexpr std::uint32_t kPredictorMagic = 0x50524f4e;  // "PRON"

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("PrionnPredictor::load: truncated");
  return v;
}

void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

double read_f64(std::istream& is) {
  double v = 0.0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("PrionnPredictor::load: truncated");
  return v;
}

/// A checkpoint payload that passed the CRC can still carry hostile
/// options (the CRC authenticates nothing); building networks from them
/// would turn a 50-byte stream into gigabytes of allocations. Bounds are
/// generous multiples of anything the paper's configurations use.
void validate_loaded_options(const PredictorOptions& o) {
  const auto fail = [](const std::string& what) {
    throw std::runtime_error("PrionnPredictor::load: implausible " + what);
  };
  if (static_cast<std::uint64_t>(o.image.transform) >
      static_cast<std::uint64_t>(Transform::kWord2Vec))
    fail("transform");
  if (static_cast<std::uint64_t>(o.model) >
      static_cast<std::uint64_t>(ModelKind::kCnn2d))
    fail("model kind");
  if (static_cast<std::uint64_t>(o.preset) >
      static_cast<std::uint64_t>(ModelPreset::kFast))
    fail("model preset");
  if (o.image.rows == 0 || o.image.rows > 4096 || o.image.cols == 0 ||
      o.image.cols > 4096)
    fail("image grid");
  if (o.runtime_bins == 0 || o.runtime_bins > (1u << 20)) fail("runtime bins");
  if (o.io_bins == 0 || o.io_bins > (1u << 20)) fail("io bins");
  if (o.word2vec_dimension == 0 || o.word2vec_dimension > 4096)
    fail("word2vec dimension");
  if (!std::isfinite(o.learning_rate)) fail("learning rate");
  if (!(o.dropout >= 0.0 && o.dropout < 1.0)) fail("dropout");
  if (!std::isfinite(o.max_gradient_norm)) fail("gradient norm cap");
}

}  // namespace

void PrionnPredictor::save(std::ostream& os) const {
  os.write(reinterpret_cast<const char*>(&kPredictorMagic),
           sizeof(kPredictorMagic));
  write_u64(os, static_cast<std::uint64_t>(options_.image.rows));
  write_u64(os, static_cast<std::uint64_t>(options_.image.cols));
  write_u64(os, static_cast<std::uint64_t>(options_.image.transform));
  write_u64(os, static_cast<std::uint64_t>(options_.model));
  write_u64(os, static_cast<std::uint64_t>(options_.preset));
  write_u64(os, options_.runtime_bins);
  write_u64(os, options_.io_bins);
  write_u64(os, options_.word2vec_dimension);
  write_u64(os, options_.epochs);
  write_u64(os, options_.batch_size);
  write_f64(os, options_.learning_rate);
  write_f64(os, options_.dropout);
  write_f64(os, options_.max_gradient_norm);
  write_u64(os, options_.predict_io ? 1 : 0);
  write_u64(os, options_.seed);
  write_u64(os, trained_ ? 1 : 0);
  write_u64(os, training_events_);
  const bool has_embedding =
      options_.image.transform == Transform::kWord2Vec && !embedding_.empty();
  write_u64(os, has_embedding ? 1 : 0);
  if (has_embedding) embedding_.save(os);
  runtime_net_.save(os);
  if (options_.predict_io) {
    read_net_.save(os);
    write_net_.save(os);
  }
  // Optimiser moments, keyed by Network::parameters() order, so the
  // warm-start training trajectory survives a restart bit-exactly.
  runtime_opt_.save(os, runtime_net_.parameters());
  if (options_.predict_io) {
    read_opt_.save(os, read_net_.parameters());
    write_opt_.save(os, write_net_.parameters());
  }
}

PrionnPredictor PrionnPredictor::load(std::istream& is) {
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is || magic != kPredictorMagic)
    throw std::runtime_error("PrionnPredictor::load: bad magic");
  PredictorOptions opts;
  opts.image.rows = static_cast<std::size_t>(read_u64(is));
  opts.image.cols = static_cast<std::size_t>(read_u64(is));
  opts.image.transform = static_cast<Transform>(read_u64(is));
  opts.model = static_cast<ModelKind>(read_u64(is));
  opts.preset = static_cast<ModelPreset>(read_u64(is));
  opts.runtime_bins = static_cast<std::size_t>(read_u64(is));
  opts.io_bins = static_cast<std::size_t>(read_u64(is));
  opts.word2vec_dimension = static_cast<std::size_t>(read_u64(is));
  opts.epochs = static_cast<std::size_t>(read_u64(is));
  opts.batch_size = static_cast<std::size_t>(read_u64(is));
  opts.learning_rate = read_f64(is);
  opts.dropout = read_f64(is);
  opts.max_gradient_norm = read_f64(is);
  opts.predict_io = read_u64(is) != 0;
  opts.seed = read_u64(is);
  validate_loaded_options(opts);

  PrionnPredictor p(opts);
  p.trained_ = read_u64(is) != 0;
  p.training_events_ = static_cast<std::size_t>(read_u64(is));
  if (read_u64(is) != 0) {
    p.embedding_ = embed::CharEmbedding::load(is);
    p.mapper_.reset();
    p.ensure_mapper();
  }
  p.runtime_net_ = nn::Network::load(is);
  if (opts.predict_io) {
    p.read_net_ = nn::Network::load(is);
    p.write_net_ = nn::Network::load(is);
  }
  p.runtime_opt_.load(is, p.runtime_net_.parameters());
  if (opts.predict_io) {
    p.read_opt_.load(is, p.read_net_.parameters());
    p.write_opt_.load(is, p.write_net_.parameters());
  }
  return p;
}

std::vector<JobPrediction> PrionnPredictor::predict(
    const std::vector<std::string>& scripts) {
  const auto confident = predict_batch(scripts);
  std::vector<JobPrediction> out(confident.size());
  for (std::size_t i = 0; i < confident.size(); ++i)
    out[i] = confident[i].value;
  return out;
}

}  // namespace prionn::core
