#include "trace/store.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "obs/obs.hpp"

namespace prionn::trace {

namespace {

constexpr std::string_view kHeader = "PRIONN-TRACE v1";

/// Malformed record: recoverable by resyncing on the next "job " line.
class RecordError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

std::uint64_t checked_u64(std::string_view s, const char* what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size())
    throw RecordError(std::string("bad ") + what + " '" + std::string(s) +
                      "'");
  return v;
}

double checked_f64(std::string_view s, const char* what) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size() || !std::isfinite(v))
    throw RecordError(std::string("bad ") + what + " '" + std::string(s) +
                      "'");
  return v;
}

}  // namespace

void save_trace(std::ostream& os, const std::vector<JobRecord>& jobs) {
  os << kHeader << "\n" << jobs.size() << "\n";
  os.precision(17);
  for (const auto& j : jobs) {
    os << "job " << j.job_id << "\n"
       << "user " << j.user << "\n"
       << "group " << j.group << "\n"
       << "account " << j.account << "\n"
       << "name " << j.job_name << "\n"
       << "wdir " << j.working_dir << "\n"
       << "sdir " << j.submission_dir << "\n"
       << "submit " << j.submit_time << "\n"
       << "req_min " << j.requested_minutes << "\n"
       << "req_nodes " << j.requested_nodes << "\n"
       << "req_tasks " << j.requested_tasks << "\n"
       << "canceled " << (j.canceled ? 1 : 0) << "\n"
       << "runtime_min " << j.runtime_minutes << "\n"
       << "bytes_read " << j.bytes_read << "\n"
       << "bytes_written " << j.bytes_written << "\n"
       << "start " << j.start_time << "\n"
       << "end " << j.end_time << "\n"
       << "script_bytes " << j.script.size() << "\n"
       << j.script << "\n";
  }
}

std::vector<JobRecord> load_trace(std::istream& is,
                                  const TraceLoadOptions& options,
                                  QuarantineReport* quarantine) {
  PRIONN_OBS_SPAN("trace.load");
  std::string line;
  if (!std::getline(is, line) || line != kHeader)
    throw std::runtime_error("load_trace: not a PRIONN trace");
  if (!std::getline(is, line))
    throw std::runtime_error("load_trace: truncated record count");
  std::size_t count = 0;
  try {
    count = static_cast<std::size_t>(checked_u64(line, "record count"));
  } catch (const RecordError& e) {
    throw std::runtime_error(std::string("load_trace: ") + e.what());
  }

  QuarantineReport local_report;
  QuarantineReport& report = quarantine ? *quarantine : local_report;

  std::vector<JobRecord> jobs;
  jobs.reserve(std::min<std::size_t>(count, 1u << 20));

  std::size_t line_number = 2;
  std::string pending;
  bool have_pending = false;
  const auto next = [&](std::string& out) -> bool {
    if (have_pending) {
      out = std::move(pending);
      have_pending = false;
      return true;
    }
    if (!std::getline(is, out)) return false;
    ++line_number;
    return true;
  };

  while (jobs.size() + report.quarantined() < count) {
    // Resync point: every record starts with a "job " line; anything else
    // between records is debris from a previous corrupt record.
    std::string head;
    if (!next(head)) {
      report.add(line_number,
                 "truncated: expected " + std::to_string(count) +
                     " records, got " +
                     std::to_string(jobs.size() + report.quarantined()),
                 "");
      break;
    }
    if (!head.starts_with("job ")) continue;

    const std::size_t record_line = line_number;
    // expect() validates the key and returns the value; the line it
    // choked on is kept so a premature "job " header resyncs without
    // losing the next record.
    std::string last;
    const auto expect = [&](const char* key) -> std::string {
      if (!next(last))
        throw RecordError(std::string("truncated at key ") + key);
      const auto space = last.find(' ');
      if (last.substr(0, space) != key)
        throw RecordError(std::string("expected key '") + key + "', got '" +
                          last + "'");
      return space == std::string::npos ? std::string()
                                        : last.substr(space + 1);
    };

    try {
      JobRecord j;
      j.job_id = checked_u64(head.substr(4), "job id");
      j.user = expect("user");
      j.group = expect("group");
      j.account = expect("account");
      j.job_name = expect("name");
      j.working_dir = expect("wdir");
      j.submission_dir = expect("sdir");
      j.submit_time = checked_f64(expect("submit"), "submit");
      j.requested_minutes = checked_f64(expect("req_min"), "req_min");
      j.requested_nodes = static_cast<std::uint32_t>(
          checked_u64(expect("req_nodes"), "req_nodes"));
      j.requested_tasks = static_cast<std::uint32_t>(
          checked_u64(expect("req_tasks"), "req_tasks"));
      j.canceled = expect("canceled") == "1";
      j.runtime_minutes = checked_f64(expect("runtime_min"), "runtime_min");
      j.bytes_read = checked_f64(expect("bytes_read"), "bytes_read");
      j.bytes_written =
          checked_f64(expect("bytes_written"), "bytes_written");
      j.start_time = checked_f64(expect("start"), "start");
      j.end_time = checked_f64(expect("end"), "end");
      const std::uint64_t script_bytes =
          checked_u64(expect("script_bytes"), "script_bytes");
      if (script_bytes > options.max_script_bytes)
        throw RecordError("script payload of " +
                          std::to_string(script_bytes) +
                          " bytes exceeds the sanity cap");
      j.script.resize(static_cast<std::size_t>(script_bytes));
      is.read(j.script.data(),
              static_cast<std::streamsize>(j.script.size()));
      is.ignore();  // newline after the payload
      if (!is && script_bytes > 0)
        throw RecordError("truncated script payload");
      jobs.push_back(std::move(j));
      report.count_accepted();
    } catch (const RecordError& e) {
      report.add(record_line, e.what(), head);
      // If the offending line was the next record's header, replay it.
      if (last.starts_with("job ")) {
        pending = std::move(last);
        have_pending = true;
      }
      is.clear();  // a failed payload read must not stop the resync scan
    }
  }

  PRIONN_OBS_ADD("prionn_trace_rows_total",
                 "trace rows accepted at ingest", jobs.size());
  if (report.fraction() > options.max_quarantine_fraction)
    throw std::runtime_error("load_trace: quarantine tolerance exceeded: " +
                             report.summary());
  return jobs;
}

void save_trace_file(const std::string& path,
                     const std::vector<JobRecord>& jobs) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_trace_file: cannot open " + path);
  save_trace(os, jobs);
}

std::vector<JobRecord> load_trace_file(const std::string& path,
                                       const TraceLoadOptions& options,
                                       QuarantineReport* quarantine) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_trace_file: cannot open " + path);
  // The report may be a caller-owned accumulator spanning several files;
  // the ingest event covers only the rows of this pass.
  QuarantineReport local_report;
  QuarantineReport& report = quarantine ? *quarantine : local_report;
  const std::size_t quarantined_before = report.quarantined();
  auto jobs = load_trace(is, options, &report);
  const std::size_t quarantined = report.quarantined() - quarantined_before;
  obs::IngestEvent ev;
  ev.source = path;
  ev.rows_accepted = jobs.size();
  ev.rows_quarantined = quarantined;
  const std::size_t seen = jobs.size() + quarantined;
  ev.quarantined_fraction =
      seen == 0 ? 0.0
                : static_cast<double>(quarantined) /
                      static_cast<double>(seen);
  obs::emit(ev);
  return jobs;
}

}  // namespace prionn::trace
