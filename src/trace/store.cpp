#include "trace/store.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace prionn::trace {

namespace {
constexpr std::string_view kHeader = "PRIONN-TRACE v1";
}

void save_trace(std::ostream& os, const std::vector<JobRecord>& jobs) {
  os << kHeader << "\n" << jobs.size() << "\n";
  os.precision(17);
  for (const auto& j : jobs) {
    os << "job " << j.job_id << "\n"
       << "user " << j.user << "\n"
       << "group " << j.group << "\n"
       << "account " << j.account << "\n"
       << "name " << j.job_name << "\n"
       << "wdir " << j.working_dir << "\n"
       << "sdir " << j.submission_dir << "\n"
       << "submit " << j.submit_time << "\n"
       << "req_min " << j.requested_minutes << "\n"
       << "req_nodes " << j.requested_nodes << "\n"
       << "req_tasks " << j.requested_tasks << "\n"
       << "canceled " << (j.canceled ? 1 : 0) << "\n"
       << "runtime_min " << j.runtime_minutes << "\n"
       << "bytes_read " << j.bytes_read << "\n"
       << "bytes_written " << j.bytes_written << "\n"
       << "start " << j.start_time << "\n"
       << "end " << j.end_time << "\n"
       << "script_bytes " << j.script.size() << "\n"
       << j.script << "\n";
  }
}

std::vector<JobRecord> load_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader)
    throw std::runtime_error("load_trace: not a PRIONN trace");
  std::size_t count = 0;
  is >> count;
  is.ignore();  // trailing newline

  const auto expect = [&](const char* key) -> std::string {
    if (!std::getline(is, line))
      throw std::runtime_error("load_trace: truncated at key " +
                               std::string(key));
    const auto space = line.find(' ');
    if (line.substr(0, space) != key)
      throw std::runtime_error("load_trace: expected key '" +
                               std::string(key) + "', got '" + line + "'");
    return space == std::string::npos ? std::string() : line.substr(space + 1);
  };

  std::vector<JobRecord> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    JobRecord j;
    j.job_id = std::stoull(expect("job"));
    j.user = expect("user");
    j.group = expect("group");
    j.account = expect("account");
    j.job_name = expect("name");
    j.working_dir = expect("wdir");
    j.submission_dir = expect("sdir");
    j.submit_time = std::stod(expect("submit"));
    j.requested_minutes = std::stod(expect("req_min"));
    j.requested_nodes = static_cast<std::uint32_t>(
        std::stoul(expect("req_nodes")));
    j.requested_tasks = static_cast<std::uint32_t>(
        std::stoul(expect("req_tasks")));
    j.canceled = expect("canceled") == "1";
    j.runtime_minutes = std::stod(expect("runtime_min"));
    j.bytes_read = std::stod(expect("bytes_read"));
    j.bytes_written = std::stod(expect("bytes_written"));
    j.start_time = std::stod(expect("start"));
    j.end_time = std::stod(expect("end"));
    const std::size_t script_bytes = std::stoull(expect("script_bytes"));
    j.script.resize(script_bytes);
    is.read(j.script.data(), static_cast<std::streamsize>(script_bytes));
    is.ignore();  // newline after the payload
    if (!is) throw std::runtime_error("load_trace: truncated script payload");
    jobs.push_back(std::move(j));
  }
  return jobs;
}

void save_trace_file(const std::string& path,
                     const std::vector<JobRecord>& jobs) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_trace_file: cannot open " + path);
  save_trace(os, jobs);
}

std::vector<JobRecord> load_trace_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_trace_file: cannot open " + path);
  return load_trace(is);
}

}  // namespace prionn::trace
