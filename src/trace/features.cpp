#include "trace/features.hpp"

#include <charconv>
#include <cmath>

#include "util/string_util.hpp"

namespace prionn::trace {

namespace {

using util::starts_with;
using util::trim;

double parse_number(std::string_view text, double fallback) noexcept {
  double value = fallback;
  const auto t = trim(text);
  std::from_chars(t.data(), t.data() + t.size(), value);
  // from_chars accepts "nan"/"inf" spellings for doubles; a non-finite
  // feature value would poison every downstream model, so fall back.
  return std::isfinite(value) ? value : fallback;
}

/// "#SBATCH --key=value" or "#SBATCH --key value".
std::optional<std::string_view> sbatch_value(std::string_view line,
                                             std::string_view key) {
  const auto t = trim(line);
  if (!starts_with(t, "#SBATCH")) return std::nullopt;
  auto rest = trim(t.substr(7));
  if (!starts_with(rest, key)) return std::nullopt;
  rest = rest.substr(key.size());
  if (rest.empty()) return std::nullopt;
  if (rest.front() == '=') return trim(rest.substr(1));
  if (rest.front() == ' ' || rest.front() == '\t') return trim(rest);
  return std::nullopt;  // longer option sharing the prefix
}

/// "HH:MM:SS", "MM:SS" or plain minutes, per sbatch's --time grammar.
double parse_walltime_hours(std::string_view text) noexcept {
  const auto parts = util::split(std::string(text), ':');
  double minutes = 0.0;
  if (parts.size() == 3) {
    minutes = parse_number(parts[0], 0.0) * 60.0 +
              parse_number(parts[1], 0.0) +
              parse_number(parts[2], 0.0) / 60.0;
  } else if (parts.size() == 2) {
    minutes = parse_number(parts[0], 0.0) + parse_number(parts[1], 0.0) / 60.0;
  } else {
    minutes = parse_number(text, 0.0);
  }
  return minutes / 60.0;
}

}  // namespace

ScriptFeatures parse_script(std::string_view script) {
  ScriptFeatures f;
  for (const auto& line : util::split_lines(script)) {
    if (const auto v = sbatch_value(line, "--time"))
      f.requested_hours = parse_walltime_hours(*v);
    else if (const auto v2 = sbatch_value(line, "--nodes"))
      f.requested_nodes = parse_number(*v2, 1.0);
    else if (const auto v3 = sbatch_value(line, "--ntasks"))
      f.requested_tasks = parse_number(*v3, 1.0);
    else if (const auto v4 = sbatch_value(line, "--account"))
      f.account = std::string(*v4);
    else if (const auto v5 = sbatch_value(line, "--job-name"))
      f.job_name = std::string(*v5);
    else if (const auto v6 = sbatch_value(line, "--mail-user")) {
      const auto at = v6->find('@');
      f.user = std::string(v6->substr(0, at));
    } else {
      const auto t = trim(line);
      if (starts_with(t, "# group:"))
        f.group = std::string(trim(t.substr(8)));
      else if (starts_with(t, "# submitted from "))
        f.submission_dir = std::string(trim(t.substr(17)));
      else if (starts_with(t, "cd ") && f.working_dir.empty())
        f.working_dir = std::string(trim(t.substr(3)));
    }
  }
  return f;
}

std::array<double, ScriptFeatures::kCount> FeatureEncoder::encode(
    const ScriptFeatures& f) {
  return {
      f.requested_hours,
      f.requested_nodes,
      f.requested_tasks,
      user_.encode(f.user),
      group_.encode(f.group),
      account_.encode(f.account),
      job_name_.encode(f.job_name),
      working_dir_.encode(f.working_dir),
      submission_dir_.encode(f.submission_dir),
  };
}

std::array<double, ScriptFeatures::kCount> FeatureEncoder::encode_const(
    const ScriptFeatures& f) const noexcept {
  return {
      f.requested_hours,
      f.requested_nodes,
      f.requested_tasks,
      user_.encode_const(f.user),
      group_.encode_const(f.group),
      account_.encode_const(f.account),
      job_name_.encode_const(f.job_name),
      working_dir_.encode_const(f.working_dir),
      submission_dir_.encode_const(f.submission_dir),
  };
}

}  // namespace prionn::trace
