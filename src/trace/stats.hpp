// Trace-level descriptive statistics backing the distribution panels of
// the paper's figures (8a, 9a, 11a, 12a, 14a) and the generator's
// calibration tests.
#pragma once

#include <vector>

#include "trace/job_record.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace prionn::trace {

struct TraceSummary {
  std::size_t total_jobs = 0;
  std::size_t canceled_jobs = 0;
  std::size_t unique_scripts = 0;
  util::BoxplotSummary runtime_minutes;
  util::BoxplotSummary requested_minutes;
  double user_request_mean_error_minutes = 0.0;  // mean(request - actual)
  double user_request_mean_relative_accuracy = 0.0;
  util::BoxplotSummary read_bandwidth;   // bytes/s, completed jobs
  util::BoxplotSummary write_bandwidth;  // bytes/s
};

TraceSummary summarize(const std::vector<JobRecord>& jobs);

/// Runtime histogram in one-hour buckets up to the 16-hour cap (Fig. 8a).
util::Histogram runtime_histogram(const std::vector<JobRecord>& jobs);

/// Log-scale bandwidth histograms (Fig. 9a).
util::Histogram read_bandwidth_histogram(const std::vector<JobRecord>& jobs);
util::Histogram write_bandwidth_histogram(const std::vector<JobRecord>& jobs);

std::vector<double> runtimes_of(const std::vector<JobRecord>& jobs);
std::vector<double> requested_of(const std::vector<JobRecord>& jobs);

}  // namespace prionn::trace
