#include "trace/app_catalog.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace prionn::trace {

namespace {

/// Users request round wall-times; this is the grid they round up onto.
constexpr std::uint32_t kRequestGrid[] = {15, 30,  60,  120, 240,
                                          480, 720, 960};
constexpr double kMaxMinutes = 960.0;  // Cab's 16-hour cap

std::uint32_t grid_ceil(double minutes) noexcept {
  for (const std::uint32_t g : kRequestGrid)
    if (static_cast<double>(g) >= minutes) return g;
  return kRequestGrid[std::size(kRequestGrid) - 1];
}

}  // namespace

double AppFamily::nominal_minutes(const JobConfig& c) const noexcept {
  const double size0 = static_cast<double>(size_levels.front());
  const double steps0 = static_cast<double>(step_levels.front());
  const double nodes0 = static_cast<double>(node_levels.front());
  const double scale =
      (static_cast<double>(c.steps) / steps0) *
      std::pow(static_cast<double>(c.size) / size0, size_exponent) /
      std::sqrt(static_cast<double>(c.nodes) / nodes0);
  return std::min(kMaxMinutes, std::max(0.5, base_minutes * scale));
}

double AppFamily::nominal_read_bytes(const JobConfig& c) const noexcept {
  const double s = static_cast<double>(c.size);
  return read_bytes_base + read_bytes_per_size3 * s * s * s;
}

double AppFamily::nominal_write_bytes(const JobConfig& c) const noexcept {
  const double s = static_cast<double>(c.size);
  return 1e5 + write_bytes_per_step * static_cast<double>(c.steps) * s * s;
}

const std::vector<AppFamily>& default_catalog() {
  static const std::vector<AppFamily> catalog = [] {
    std::vector<AppFamily> fams;
    // name, account, partition, sizes, steps, nodes, tasks/node,
    // base_min, size_exp, rt_noise, rd/size^3, rd_base, wr/step, io_noise
    fams.push_back({"hydro3d", "bdivp", "pbatch",
                    {64, 128, 256}, {500, 1000, 2000}, {4, 8, 16, 32}, 16,
                    12.0, 1.2, 0.04, 48.0, 2e7, 22.0, 0.12});
    fams.push_back({"laserablate", "icfs", "pbatch",
                    {32, 64, 128}, {200, 400, 800}, {2, 4, 8}, 16,
                    30.0, 1.0, 0.05, 220.0, 5e7, 160.0, 0.15});
    fams.push_back({"mdrelax", "bio", "pbatch",
                    {50, 100, 200}, {1000, 2000, 4000, 8000}, {1, 2, 4}, 16,
                    4.0, 0.8, 0.03, 6.0, 1e6, 1.5, 0.10});
    fams.push_back({"qmcstep", "qmat", "pbatch",
                    {16, 32, 64}, {50, 100, 200}, {8, 16, 32, 64}, 16,
                    60.0, 1.4, 0.06, 900.0, 1e8, 450.0, 0.18});
    fams.push_back({"climsim", "atmos", "pbatch",
                    {90, 180, 360}, {240, 480, 960}, {8, 16, 32}, 16,
                    25.0, 1.1, 0.05, 64.0, 4e7, 85.0, 0.14});
    fams.push_back({"neutronics", "nucl", "pbatch",
                    {40, 80, 160}, {100, 200, 400}, {4, 8, 16}, 16,
                    45.0, 1.3, 0.05, 350.0, 8e7, 60.0, 0.16});
    fams.push_back({"seismwave", "geo", "pbatch",
                    {128, 256, 512}, {300, 600, 1200}, {8, 16, 32, 64}, 16,
                    18.0, 1.0, 0.04, 12.0, 3e7, 30.0, 0.12});
    fams.push_back({"fusionpic", "icfs", "pbatch",
                    {64, 128}, {400, 800, 1600}, {16, 32, 64, 128}, 16,
                    90.0, 1.2, 0.07, 1500.0, 2e8, 700.0, 0.20});
    // Short, high-turnover jobs: these dominate the low end of the runtime
    // histogram (about half of Cab's jobs finish within the hour).
    fams.push_back({"postproc", "bdivp", "pserial",
                    {1, 2, 4}, {1, 2, 4}, {1}, 1,
                    2.0, 0.6, 0.02, 2e9, 5e8, 0.0, 0.10});
    fams.push_back({"viztool", "view", "pserial",
                    {1, 2}, {1, 2, 3}, {1, 2}, 8,
                    3.0, 0.5, 0.02, 8e9, 2e9, 0.0, 0.12});
    fams.push_back({"regtest", "devq", "pdebug",
                    {1, 2, 4, 8}, {1, 2}, {1, 2}, 16,
                    1.0, 0.7, 0.02, 1e7, 1e6, 0.2, 0.08});
    fams.push_back({"chkptbench", "io", "pbatch",
                    {256, 512}, {5, 10, 20}, {32, 64, 128}, 16,
                    15.0, 0.9, 0.04, 30.0, 1e8, 2.2e5, 0.22});
    return fams;
  }();
  return catalog;
}

const std::vector<AppFamily>& sdsc_catalog() {
  static const std::vector<AppFamily> catalog = [] {
    std::vector<AppFamily> fams;
    // 1990s workloads: long serial/MPP batch jobs, broad runtime spread,
    // essentially no recorded IO.
    fams.push_back({"mpp_qcd", "hep", "batch",
                    {8, 16, 32}, {100, 200, 400, 800}, {8, 16, 32}, 1,
                    40.0, 1.1, 0.15, 0.0, 1e5, 0.0, 0.3});
    fams.push_back({"mpp_chem", "chem", "batch",
                    {10, 20, 40}, {50, 100, 200}, {4, 8, 16}, 1,
                    70.0, 1.2, 0.18, 0.0, 1e5, 0.0, 0.3});
    fams.push_back({"mpp_struct", "eng", "batch",
                    {16, 32}, {20, 40, 80, 160}, {1, 2, 4, 8}, 1,
                    25.0, 1.0, 0.20, 0.0, 1e5, 0.0, 0.3});
    fams.push_back({"serial_sim", "gen", "batch",
                    {1, 2, 4, 8}, {10, 20, 40}, {1}, 1,
                    12.0, 0.9, 0.25, 0.0, 1e5, 0.0, 0.3});
    return fams;
  }();
  return catalog;
}

std::string render_script(const std::vector<AppFamily>& catalog,
                          const JobConfig& config, const std::string& user,
                          const std::string& group) {
  const AppFamily& fam = catalog.at(config.family);
  char buf[160];

  std::string s;
  s.reserve(1024);
  s += "#!/bin/bash\n";
  std::snprintf(buf, sizeof(buf), "#SBATCH --job-name=%s_s%u\n",
                fam.name.c_str(), config.size);
  s += buf;
  std::snprintf(buf, sizeof(buf), "#SBATCH --nodes=%u\n", config.nodes);
  s += buf;
  std::snprintf(buf, sizeof(buf), "#SBATCH --ntasks=%u\n", config.tasks);
  s += buf;
  std::snprintf(buf, sizeof(buf), "#SBATCH --time=%02u:%02u:00\n",
                config.requested_minutes / 60, config.requested_minutes % 60);
  s += buf;
  std::snprintf(buf, sizeof(buf), "#SBATCH --account=%s\n",
                fam.account.c_str());
  s += buf;
  std::snprintf(buf, sizeof(buf), "#SBATCH --partition=%s\n",
                fam.partition.c_str());
  s += buf;
  std::snprintf(buf, sizeof(buf), "#SBATCH --mail-user=%s@llnl.gov\n",
                user.c_str());
  s += buf;
  s += "\n";
  std::snprintf(buf, sizeof(buf), "# group: %s\n", group.c_str());
  s += buf;
  std::snprintf(buf, sizeof(buf), "# submitted from /g/%s/%s/runs/%s\n",
                group.c_str(), user.c_str(), fam.name.c_str());
  s += buf;
  // The working directory deliberately encodes only the problem size, not
  // the iteration count: the steps parameter lives solely in the srun
  // command line below. This mirrors the information asymmetry the paper
  // describes — manual feature extraction (Table 1) truncates information
  // that whole-script models can still read.
  std::snprintf(buf, sizeof(buf), "cd /p/lscratchd/%s/%s/s%u\n",
                user.c_str(), fam.name.c_str(), config.size);
  s += buf;
  s += "\nmodule load intel mvapich2\n";
  std::snprintf(buf, sizeof(buf), "export OMP_NUM_THREADS=%u\n",
                fam.tasks_per_node >= 16 ? 1 : 16 / fam.tasks_per_node);
  s += buf;
  s += "\n";
  std::snprintf(buf, sizeof(buf),
                "srun -N %u -n %u ./%s --input deck_s%u.in \\\n", config.nodes,
                config.tasks, fam.name.c_str(), config.size);
  s += buf;
  std::snprintf(buf, sizeof(buf), "  --size %u --steps %u --out dump_\n",
                config.size, config.steps);
  s += buf;
  s += "\necho \"job complete\"\n";
  return s;
}

JobConfig sample_config(const std::vector<AppFamily>& catalog,
                        std::size_t family, util::Rng& rng) {
  const AppFamily& fam = catalog.at(family);
  const auto pick = [&rng](const std::vector<std::uint32_t>& levels) {
    return levels[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(levels.size()) - 1))];
  };
  JobConfig c;
  c.family = family;
  c.size = pick(fam.size_levels);
  c.steps = pick(fam.step_levels);
  c.nodes = pick(fam.node_levels);
  c.tasks = c.nodes * fam.tasks_per_node;
  // Users over-request: a per-config lognormal factor (mean ~ 3x) rounded
  // up to the wall-time grid; identical across resubmissions of the config
  // so repeated scripts stay byte-identical. Calibrated against the Cab
  // observation of a mean request error around 172 minutes (section 1).
  const double overestimate = rng.lognormal(1.0, 0.55);
  c.requested_minutes =
      grid_ceil(std::min(kMaxMinutes, fam.nominal_minutes(c) * overestimate));
  return c;
}

}  // namespace prionn::trace
