// Plain-text trace persistence. The format is a line-oriented header per
// job followed by the raw script payload (length-prefixed), so traces can
// be inspected with a pager and diffed. Used by the examples and by tests
// that round-trip generated workloads.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/job_record.hpp"

namespace prionn::trace {

void save_trace(std::ostream& os, const std::vector<JobRecord>& jobs);
std::vector<JobRecord> load_trace(std::istream& is);

void save_trace_file(const std::string& path,
                     const std::vector<JobRecord>& jobs);
std::vector<JobRecord> load_trace_file(const std::string& path);

}  // namespace prionn::trace
