// Plain-text trace persistence. The format is a line-oriented header per
// job followed by the raw script payload (length-prefixed), so traces can
// be inspected with a pager and diffed. Used by the examples and by tests
// that round-trip generated workloads.
//
// Loading is quarantine-aware: a corrupt record (bad key, non-numeric
// value, truncated script) is skipped — the loader resyncs on the next
// "job " header line — and reported, instead of each record relying on
// unchecked std::stoXX conversions that throw away the rest of the file.
// The default tolerance is strict (any quarantined record fails the
// load); long-running ingesters raise it via TraceLoadOptions.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/job_record.hpp"
#include "trace/quarantine.hpp"

namespace prionn::trace {

struct TraceLoadOptions {
  /// Quarantined fraction of records above which the load throws. The
  /// store format is produced by our own writer, so unlike SWF the
  /// default tolerance is zero: any damage is our bug or a torn write.
  double max_quarantine_fraction = 0.0;
  /// Upper bound on a single script payload; a corrupt length prefix must
  /// not become an allocation bomb.
  std::size_t max_script_bytes = 16u << 20;
};

void save_trace(std::ostream& os, const std::vector<JobRecord>& jobs);
std::vector<JobRecord> load_trace(std::istream& is,
                                  const TraceLoadOptions& options = {},
                                  QuarantineReport* quarantine = nullptr);

void save_trace_file(const std::string& path,
                     const std::vector<JobRecord>& jobs);
std::vector<JobRecord> load_trace_file(const std::string& path,
                                       const TraceLoadOptions& options = {},
                                       QuarantineReport* quarantine = nullptr);

}  // namespace prionn::trace
