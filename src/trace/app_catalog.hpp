// Catalogue of synthetic HPC application families. Each family renders a
// realistic SLURM job script from a small set of discrete configuration
// levels and defines the ground-truth runtime/IO of a job as a function of
// THE SAME parameters that appear in the script text (plus noise). That is
// the property the reproduction needs: the mapping from script text to
// resource usage is learnable, exactly as it is for the paper's real trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace prionn::trace {

/// One concrete configuration of a family: the tuple a user's job script
/// fixes. Identical configs render byte-identical scripts, which produces
/// the repeated-script structure of the Cab dataset (295k jobs but only
/// 97k unique scripts).
struct JobConfig {
  std::size_t family = 0;
  std::uint32_t size = 0;    // problem-size level (appears in script)
  std::uint32_t steps = 0;   // iteration-count level (appears in script)
  std::uint32_t nodes = 1;   // node count (appears in script)
  std::uint32_t tasks = 1;   // MPI ranks (appears in script)
  std::uint32_t requested_minutes = 30;

  bool operator==(const JobConfig&) const = default;
};

struct AppFamily {
  std::string name;       // binary/application name, e.g. "hydro3d"
  std::string account;    // bank the family's users charge
  std::string partition;  // "pbatch" / "pdebug"
  std::vector<std::uint32_t> size_levels;
  std::vector<std::uint32_t> step_levels;
  std::vector<std::uint32_t> node_levels;
  std::uint32_t tasks_per_node = 16;

  // Ground-truth models (see runtime_minutes/read_bytes/write_bytes).
  double base_minutes = 1.0;      // minutes at reference size/steps/nodes
  double size_exponent = 1.0;     // runtime ~ (size/size0)^e
  double runtime_noise_sigma = 0.05;
  double read_bytes_per_size3 = 0.0;   // input deck ~ size^3
  double read_bytes_base = 1e6;
  double write_bytes_per_step = 0.0;   // dumps ~ steps * size^2
  double io_noise_sigma = 0.15;

  /// Deterministic part of the runtime model, in minutes (before noise).
  double nominal_minutes(const JobConfig& c) const noexcept;
  double nominal_read_bytes(const JobConfig& c) const noexcept;
  double nominal_write_bytes(const JobConfig& c) const noexcept;
};

/// The built-in catalogue (a dozen families spanning the runtime and IO
/// ranges of the Cab trace: half the jobs under an hour, runtimes capped at
/// 16 h, IO bandwidth heavy-tailed over several orders of magnitude).
const std::vector<AppFamily>& default_catalog();

/// A smaller 1990s-flavoured catalogue for the SDSC-like traces used by the
/// Table 2 replication (longer, more variable runtimes; negligible IO).
const std::vector<AppFamily>& sdsc_catalog();

/// Render the full job-script text for a user's config. Pure function of
/// (catalog, config, user, group): repeated configs give identical text.
std::string render_script(const std::vector<AppFamily>& catalog,
                          const JobConfig& config, const std::string& user,
                          const std::string& group);

/// Draw a fresh random config for a family.
JobConfig sample_config(const std::vector<AppFamily>& catalog,
                        std::size_t family, util::Rng& rng);

}  // namespace prionn::trace
