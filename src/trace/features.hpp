// Manual feature extraction for the traditional-ML pipeline: the nine
// Table-1 features (requested time/nodes/tasks, user, group, account, job
// name, working dir, submission dir), parsed from job scripts exactly the
// way the paper's custom parsing scripts do, then label-encoded.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/label_encoder.hpp"
#include "trace/job_record.hpp"

namespace prionn::trace {

/// Raw (string/number) features pulled out of one job script.
struct ScriptFeatures {
  double requested_hours = 0.0;
  double requested_nodes = 1.0;
  double requested_tasks = 1.0;
  std::string user;
  std::string group;
  std::string account;
  std::string job_name;
  std::string working_dir;
  std::string submission_dir;

  static constexpr std::size_t kCount = 9;
};

/// Parse the SBATCH headers and well-known comment/cd lines of a script.
/// Robust to missing lines (fields keep their defaults) — the paper notes
/// that inconsistent script formats made exactly this task fragile.
ScriptFeatures parse_script(std::string_view script);

/// Encodes ScriptFeatures into fixed-width numeric rows for the
/// traditional models, holding one LabelEncoder per categorical column.
class FeatureEncoder {
 public:
  /// Encode (inserting new categories as they appear).
  std::array<double, ScriptFeatures::kCount> encode(const ScriptFeatures& f);

  /// Encode without inserting; unseen categories map to -1. Serving paths
  /// use this so the encoder state stays a pure function of the training
  /// window (prediction order must not perturb the encoding).
  std::array<double, ScriptFeatures::kCount> encode_const(
      const ScriptFeatures& f) const noexcept;

  /// Convenience: parse + encode a whole trace into a Dataset whose target
  /// is extracted by `target` (e.g. runtime, bytes read...).
  template <typename TargetFn>
  ml::Dataset encode_jobs(const std::vector<JobRecord>& jobs,
                          TargetFn&& target) {
    ml::Dataset data(ScriptFeatures::kCount);
    data.reserve(jobs.size());
    for (const auto& job : jobs) {
      const auto row = encode(parse_script(job.script));
      data.add_row(std::span<const double>(row.data(), row.size()),
                   target(job));
    }
    return data;
  }

 private:
  ml::LabelEncoder user_, group_, account_, job_name_, working_dir_,
      submission_dir_;
};

}  // namespace prionn::trace
