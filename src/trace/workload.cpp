#include "trace/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace prionn::trace {

WorkloadOptions WorkloadOptions::cab(std::size_t jobs, std::uint64_t seed) {
  WorkloadOptions o;
  o.jobs = jobs;
  o.seed = seed;
  // Scale the population with the trace so tiny test traces still see
  // script reuse: Cab had 492 users for 295k jobs.
  o.users = std::clamp<std::size_t>(jobs / 600, 8, 492);
  return o;
}

WorkloadOptions WorkloadOptions::sdsc95(std::size_t jobs,
                                        std::uint64_t seed) {
  WorkloadOptions o;
  o.jobs = jobs;
  o.seed = seed;
  o.users = std::clamp<std::size_t>(jobs / 800, 8, 98);
  o.jobs_per_day = 250.0;
  o.repeat_probability = 0.5;
  o.cancel_fraction = 0.0;  // the published SDSC traces are completed jobs
  o.catalog = &sdsc_catalog();
  return o;
}

WorkloadOptions WorkloadOptions::sdsc96(std::size_t jobs,
                                        std::uint64_t seed) {
  WorkloadOptions o = sdsc95(jobs, seed);
  o.jobs_per_day = 120.0;
  o.repeat_probability = 0.35;  // more heterogeneous year: harder to predict
  return o;
}

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options)
    : options_(options),
      catalog_(options.catalog ? options.catalog : &default_catalog()) {
  if (options_.jobs == 0)
    throw std::invalid_argument("WorkloadGenerator: jobs must be > 0");
  if (options_.users == 0)
    throw std::invalid_argument("WorkloadGenerator: users must be > 0");
  if (catalog_->empty())
    throw std::invalid_argument("WorkloadGenerator: empty catalog");
}

namespace {

struct UserProfile {
  std::string name;
  std::string group;
  std::vector<std::size_t> families;      // preferred app families
  std::vector<JobConfig> config_history;  // configs available for reuse
};

/// Diurnal arrival-rate multiplier: quiet nights, busy afternoons.
double diurnal_factor(double t_seconds) noexcept {
  const double hour = std::fmod(t_seconds / 3600.0, 24.0);
  // Peak around 15:00, trough around 03:00; never fully idle.
  return 0.55 + 0.45 * std::sin((hour - 9.0) / 24.0 * 2.0 *
                                std::numbers::pi);
}

}  // namespace

std::vector<JobRecord> WorkloadGenerator::generate() {
  util::Rng rng(options_.seed);
  const auto& catalog = *catalog_;

  // --- Build the user population. -----------------------------------
  std::vector<UserProfile> users(options_.users);
  const util::ZipfSampler family_popularity(catalog.size(), 1.0);
  for (std::size_t u = 0; u < users.size(); ++u) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "user%03zu", u);
    users[u].name = buf;
    std::snprintf(buf, sizeof(buf), "g%02lld",
                  static_cast<long long>(rng.uniform_int(
                      0, static_cast<std::int64_t>(options_.groups) - 1)));
    users[u].group = buf;
    std::unordered_set<std::size_t> chosen;
    while (chosen.size() <
           std::min(options_.families_per_user, catalog.size()))
      chosen.insert(family_popularity(rng));
    users[u].families.assign(chosen.begin(), chosen.end());
  }
  const util::ZipfSampler user_activity(users.size(), options_.user_zipf);

  // --- Stream of submissions. ----------------------------------------
  const double base_rate = options_.jobs_per_day / 86400.0;  // jobs per sec
  std::vector<JobRecord> jobs;
  jobs.reserve(options_.jobs);
  double t = 0.0;
  for (std::size_t j = 0; j < options_.jobs; ++j) {
    t += rng.exponential(base_rate * diurnal_factor(t));
    UserProfile& user = users[user_activity(rng)];

    // Reuse an old config (identical script) or draw a new one.
    JobConfig config;
    if (!user.config_history.empty() &&
        rng.bernoulli(options_.repeat_probability)) {
      config = user.config_history[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(user.config_history.size()) - 1))];
    } else {
      const std::size_t family = user.families[static_cast<std::size_t>(
          rng.uniform_int(0,
                          static_cast<std::int64_t>(user.families.size()) - 1))];
      config = sample_config(catalog, family, rng);
      user.config_history.push_back(config);
      // Users cycle through a bounded working set of scripts.
      if (user.config_history.size() > 12)
        user.config_history.erase(user.config_history.begin());
    }
    const AppFamily& fam = catalog[config.family];

    JobRecord job;
    job.job_id = j + 1;
    job.user = user.name;
    job.group = user.group;
    job.account = fam.account;
    job.job_name = fam.name + "_s" + std::to_string(config.size);
    job.submission_dir =
        "/g/" + user.group + "/" + user.name + "/runs/" + fam.name;
    job.working_dir = "/p/lscratchd/" + user.name + "/" + fam.name + "/s" +
                      std::to_string(config.size);
    job.script = render_script(catalog, config, user.name, user.group);
    job.submit_time = t;
    job.requested_minutes = static_cast<double>(config.requested_minutes);
    job.requested_nodes = config.nodes;
    job.requested_tasks = config.tasks;

    if (rng.uniform() < options_.cancel_fraction) {
      job.canceled = true;
      job.start_time = job.end_time = t;
      jobs.push_back(std::move(job));
      continue;
    }

    // Ground truth: the script's nominal resource model plus noise,
    // runtimes rounded to whole minutes (the paper predicts runtime to
    // one-minute resolution and caps it at 16 h).
    const double noisy_minutes =
        fam.nominal_minutes(config) *
        rng.lognormal(0.0, fam.runtime_noise_sigma);
    job.runtime_minutes =
        std::clamp(std::round(noisy_minutes), 1.0, 960.0);
    job.bytes_read = fam.nominal_read_bytes(config) *
                     rng.lognormal(0.0, fam.io_noise_sigma);
    job.bytes_written = fam.nominal_write_bytes(config) *
                        rng.lognormal(0.0, fam.io_noise_sigma);

    // Nominal queue wait on the original machine (the scheduler simulator
    // recomputes its own schedule from submit times).
    const double wait = rng.exponential(1.0 / 600.0);
    job.start_time = t + wait;
    job.end_time = job.start_time + job.runtime_minutes * 60.0;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<JobRecord> completed_jobs(const std::vector<JobRecord>& jobs) {
  std::vector<JobRecord> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs)
    if (!j.canceled) out.push_back(j);
  return out;
}

std::size_t unique_script_count(const std::vector<JobRecord>& jobs) {
  std::unordered_set<std::string> scripts;
  for (const auto& j : jobs) scripts.insert(j.script);
  return scripts.size();
}

}  // namespace prionn::trace
