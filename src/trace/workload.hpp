// Synthetic workload generator — the stand-in for the proprietary Cab 2016
// trace (295,077 jobs, 492 users). See DESIGN.md section 2 for the
// substitution argument. The generator reproduces the *structure* the
// paper's experiments rely on:
//   - job scripts whose text determines runtime/IO up to noise,
//   - heavy script reuse (about 1/3 of jobs carry a unique script),
//   - a diurnal Poisson arrival process,
//   - Zipf-distributed user activity over application families,
//   - over-estimated user wall-time requests (mean error ~172 min),
//   - a 16-hour runtime cap and heavy-tailed IO bandwidths,
//   - a fraction of canceled jobs that analyses must exclude.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/app_catalog.hpp"
#include "trace/job_record.hpp"

namespace prionn::trace {

struct WorkloadOptions {
  std::size_t jobs = 10000;
  std::size_t users = 100;
  std::size_t groups = 12;
  double jobs_per_day = 800.0;
  /// Probability that a submission reuses one of the user's past configs
  /// (byte-identical script). Cab: 295k jobs over 97k unique scripts.
  double repeat_probability = 0.65;
  double cancel_fraction = 0.099;  // 29,291 / 295,077 in the paper
  double user_zipf = 1.05;         // activity skew across users
  std::size_t families_per_user = 3;
  std::uint64_t seed = 2016;
  /// nullptr selects default_catalog().
  const std::vector<AppFamily>* catalog = nullptr;

  /// Cab-like preset (the paper's main dataset, scaled by `jobs`).
  static WorkloadOptions cab(std::size_t jobs, std::uint64_t seed = 2016);
  /// SDSC-like presets for the Table 2 replication.
  static WorkloadOptions sdsc95(std::size_t jobs, std::uint64_t seed = 95);
  static WorkloadOptions sdsc96(std::size_t jobs, std::uint64_t seed = 96);
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadOptions options);

  /// Generate the full trace, sorted by submission time.
  std::vector<JobRecord> generate();

  const WorkloadOptions& options() const noexcept { return options_; }
  const std::vector<AppFamily>& catalog() const noexcept { return *catalog_; }

 private:
  WorkloadOptions options_;
  const std::vector<AppFamily>* catalog_;
};

/// Drop canceled jobs (the paper excludes them from all analyses).
std::vector<JobRecord> completed_jobs(const std::vector<JobRecord>& jobs);

/// Count byte-identical script occurrences.
std::size_t unique_script_count(const std::vector<JobRecord>& jobs);

}  // namespace prionn::trace
