#include "trace/stats.hpp"

#include "trace/workload.hpp"

namespace prionn::trace {

std::vector<double> runtimes_of(const std::vector<JobRecord>& jobs) {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs)
    if (!j.canceled) out.push_back(j.runtime_minutes);
  return out;
}

std::vector<double> requested_of(const std::vector<JobRecord>& jobs) {
  std::vector<double> out;
  out.reserve(jobs.size());
  for (const auto& j : jobs)
    if (!j.canceled) out.push_back(j.requested_minutes);
  return out;
}

TraceSummary summarize(const std::vector<JobRecord>& jobs) {
  TraceSummary s;
  s.total_jobs = jobs.size();
  s.unique_scripts = unique_script_count(jobs);

  std::vector<double> runtimes, requests, read_bw, write_bw, accuracy;
  double error_sum = 0.0;
  for (const auto& j : jobs) {
    if (j.canceled) {
      ++s.canceled_jobs;
      continue;
    }
    runtimes.push_back(j.runtime_minutes);
    requests.push_back(j.requested_minutes);
    error_sum += j.requested_minutes - j.runtime_minutes;
    accuracy.push_back(
        util::relative_accuracy(j.runtime_minutes, j.requested_minutes));
    read_bw.push_back(j.read_bandwidth());
    write_bw.push_back(j.write_bandwidth());
  }
  s.runtime_minutes = util::boxplot_summary(runtimes);
  s.requested_minutes = util::boxplot_summary(requests);
  const std::size_t completed = runtimes.size();
  s.user_request_mean_error_minutes =
      completed ? error_sum / static_cast<double>(completed) : 0.0;
  s.user_request_mean_relative_accuracy = util::mean(accuracy);
  s.read_bandwidth = util::boxplot_summary(read_bw);
  s.write_bandwidth = util::boxplot_summary(write_bw);
  return s;
}

util::Histogram runtime_histogram(const std::vector<JobRecord>& jobs) {
  auto h = util::Histogram::linear(0.0, 960.0, 16);
  for (const auto& j : jobs)
    if (!j.canceled) h.add(j.runtime_minutes);
  return h;
}

util::Histogram read_bandwidth_histogram(const std::vector<JobRecord>& jobs) {
  auto h = util::Histogram::logarithmic(1e2, 1e10, 16);
  for (const auto& j : jobs)
    if (!j.canceled) h.add(j.read_bandwidth());
  return h;
}

util::Histogram write_bandwidth_histogram(
    const std::vector<JobRecord>& jobs) {
  auto h = util::Histogram::logarithmic(1e2, 1e10, 16);
  for (const auto& j : jobs)
    if (!j.canceled) h.add(j.write_bandwidth());
  return h;
}

}  // namespace prionn::trace
