// The job record: everything the paper's dataset provides per job — the
// job script, submission metadata, user-requested resources, and the
// ground-truth execution/IO measurements used as training labels.
#pragma once

#include <cstdint>
#include <string>

namespace prionn::trace {

struct JobRecord {
  std::uint64_t job_id = 0;

  // Submission metadata (what the scheduler knows at submit time).
  std::string user;
  std::string group;
  std::string account;
  std::string job_name;
  std::string working_dir;
  std::string submission_dir;
  std::string script;  // full job-script text

  double submit_time = 0.0;  // seconds since trace start
  double requested_minutes = 0.0;
  std::uint32_t requested_nodes = 1;
  std::uint32_t requested_tasks = 1;

  // Ground truth, known only after the job ran (training labels).
  bool canceled = false;       // canceled/removed jobs are excluded (§2.3)
  double runtime_minutes = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;

  // Times measured on the original system; the scheduler simulator
  // recomputes its own schedule, these reflect the generator's.
  double start_time = 0.0;
  double end_time = 0.0;

  double runtime_seconds() const noexcept { return runtime_minutes * 60.0; }
  /// Read bandwidth in bytes/s over the job's lifetime (0 if degenerate).
  double read_bandwidth() const noexcept {
    const double s = runtime_seconds();
    return s > 0.0 ? bytes_read / s : 0.0;
  }
  double write_bandwidth() const noexcept {
    const double s = runtime_seconds();
    return s > 0.0 ? bytes_written / s : 0.0;
  }
};

}  // namespace prionn::trace
