// Standard Workload Format (SWF) interoperability. SWF is the de-facto
// exchange format of the Parallel Workloads Archive (Feitelson et al.) —
// the home of the SDSC traces the paper's Table 2 references. SWF carries
// no job scripts, so the importer reconstructs plausible scripts from the
// numeric fields via the application catalogue, and the exporter lets our
// synthetic traces be consumed by external SWF tooling.
//
// Field layout (18 columns, ';' comments):
//   1 job number | 2 submit | 3 wait | 4 run time | 5 allocated procs
//   6 avg cpu | 7 used mem | 8 requested procs | 9 requested time
//   10 requested mem | 11 status | 12 user id | 13 group id | 14 app id
//   15 queue | 16 partition | 17 preceding job | 18 think time
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/job_record.hpp"
#include "trace/quarantine.hpp"

namespace prionn::trace {

struct SwfOptions {
  /// Processors per node when converting proc counts to node counts.
  std::uint32_t cores_per_node = 16;
  /// Reconstruct job scripts for imported records (PRIONN needs text).
  bool synthesize_scripts = true;
  std::uint64_t seed = 17;
  /// Input-quarantine tolerance: malformed rows (short lines, non-numeric
  /// fields) are skipped and counted instead of failing the load; the
  /// load throws only when the quarantined fraction of data rows
  /// *exceeds* this (so a file that is pure garbage still fails loudly,
  /// while a long-running ingester shrugs off scattered corruption).
  double max_quarantine_fraction = 0.05;
};

/// Write completed + canceled jobs as SWF (status 1 / 5 respectively).
void save_swf(std::ostream& os, const std::vector<JobRecord>& jobs,
              const SwfOptions& options = {});

/// Parse an SWF stream into JobRecords. Unknown/missing fields get the
/// SWF convention value -1 and map to defaults; IO fields are zero (SWF
/// does not carry IO). Malformed rows are quarantined (see
/// SwfOptions::max_quarantine_fraction); pass `quarantine` to receive
/// the per-row report.
std::vector<JobRecord> load_swf(std::istream& is,
                                const SwfOptions& options = {},
                                QuarantineReport* quarantine = nullptr);

void save_swf_file(const std::string& path,
                   const std::vector<JobRecord>& jobs,
                   const SwfOptions& options = {});
std::vector<JobRecord> load_swf_file(const std::string& path,
                                     const SwfOptions& options = {},
                                     QuarantineReport* quarantine = nullptr);

}  // namespace prionn::trace
