#include "trace/quarantine.hpp"

#include <sstream>

#include "obs/obs.hpp"

namespace prionn::trace {

void QuarantineReport::add(std::size_t line_number, std::string reason,
                           std::string_view text) {
  ++quarantined_;
  PRIONN_OBS_INC("prionn_quarantined_rows_total",
                 "trace rows quarantined at ingest");
  if (lines_.size() >= kMaxRetained) return;
  QuarantinedLine q;
  q.line_number = line_number;
  q.reason = std::move(reason);
  q.text = std::string(text.substr(0, kMaxTextBytes));
  lines_.push_back(std::move(q));
}

double QuarantineReport::fraction() const noexcept {
  const std::size_t n = total();
  return n == 0 ? 0.0
               : static_cast<double>(quarantined_) / static_cast<double>(n);
}

std::string QuarantineReport::summary() const {
  std::ostringstream os;
  os << quarantined_ << " of " << total() << " rows quarantined";
  if (!lines_.empty()) {
    os << " (first: line " << lines_.front().line_number << ", "
       << lines_.front().reason << ")";
  }
  return os.str();
}

}  // namespace prionn::trace
