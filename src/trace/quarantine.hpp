// Input quarantine for trace ingestion. Long-running serving must treat
// malformed rows in an SWF or trace file as noise to be isolated, not a
// reason to take the scheduler down: ingestion routes bad rows into a
// QuarantineReport (line number, reason, raw text) and only fails the
// whole load when the damage exceeds a configurable tolerance — past that
// point the file is corrupt, not merely noisy.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace prionn::trace {

struct QuarantinedLine {
  std::size_t line_number = 0;  // 1-based line in the input stream
  std::string reason;
  std::string text;  // raw offending text (truncated for storage)
};

class QuarantineReport {
 public:
  /// Record one quarantined row. The raw text kept per row is capped so a
  /// pathological input cannot balloon the report.
  void add(std::size_t line_number, std::string reason,
           std::string_view text);

  /// Count one well-formed row (denominator for the tolerance fraction).
  void count_accepted() noexcept { ++accepted_; }

  std::size_t quarantined() const noexcept { return quarantined_; }
  std::size_t accepted() const noexcept { return accepted_; }
  std::size_t total() const noexcept { return accepted_ + quarantined_; }

  /// Quarantined fraction of all observed rows (0 when nothing was seen).
  double fraction() const noexcept;

  /// Retained records (at most kMaxRetained; `quarantined()` keeps the
  /// true count when more rows were dropped than retained).
  const std::vector<QuarantinedLine>& lines() const noexcept {
    return lines_;
  }

  /// One-line human-readable digest for logs.
  std::string summary() const;

  static constexpr std::size_t kMaxRetained = 100;
  static constexpr std::size_t kMaxTextBytes = 160;

 private:
  std::vector<QuarantinedLine> lines_;
  std::size_t quarantined_ = 0;
  std::size_t accepted_ = 0;
};

}  // namespace prionn::trace
