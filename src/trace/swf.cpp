#include "trace/swf.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "trace/app_catalog.hpp"
#include "util/string_util.hpp"

namespace prionn::trace {

namespace {

long long parse_ll(std::string_view field) noexcept {
  long long v = -1;
  const auto t = util::trim(field);
  std::from_chars(t.data(), t.data() + t.size(), v);
  return v;
}

double parse_d(std::string_view field) noexcept {
  double v = -1.0;
  const auto t = util::trim(field);
  std::from_chars(t.data(), t.data() + t.size(), v);
  return v;
}

/// Split an SWF line into whitespace-separated fields.
std::vector<std::string_view> fields_of(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

}  // namespace

void save_swf(std::ostream& os, const std::vector<JobRecord>& jobs,
              const SwfOptions& options) {
  std::unordered_map<std::string, int> user_ids, group_ids, app_ids;
  const auto id_of = [](std::unordered_map<std::string, int>& table,
                        const std::string& key) {
    return table.try_emplace(key, static_cast<int>(table.size()) + 1)
        .first->second;
  };

  os << "; SWF export from the PRIONN reproduction\n";
  os << "; MaxNodes: 1296\n; Note: scripts/IO fields are not representable "
        "in SWF\n";
  for (const auto& j : jobs) {
    const long long wait =
        j.canceled ? -1
                   : static_cast<long long>(
                         std::max(0.0, j.start_time - j.submit_time));
    const long long runtime =
        j.canceled ? -1
                   : static_cast<long long>(j.runtime_minutes * 60.0);
    const auto procs =
        static_cast<long long>(j.requested_tasks ? j.requested_tasks
                                                 : j.requested_nodes *
                                                       options.cores_per_node);
    os << j.job_id << ' '                                      // 1
       << static_cast<long long>(j.submit_time) << ' '         // 2
       << wait << ' '                                          // 3
       << runtime << ' '                                       // 4
       << (j.canceled ? -1 : procs) << ' '                     // 5
       << -1 << ' ' << -1 << ' '                               // 6, 7
       << procs << ' '                                         // 8
       << static_cast<long long>(j.requested_minutes * 60.0) << ' '  // 9
       << -1 << ' '                                            // 10
       << (j.canceled ? 5 : 1) << ' '                          // 11 status
       << id_of(user_ids, j.user) << ' '                       // 12
       << id_of(group_ids, j.group) << ' '                     // 13
       << id_of(app_ids, j.job_name) << ' '                    // 14
       << 1 << ' ' << 1 << ' ' << -1 << ' ' << -1 << '\n';     // 15-18
  }
}

std::vector<JobRecord> load_swf(std::istream& is,
                                const SwfOptions& options) {
  const auto& catalog = default_catalog();
  util::Rng rng(options.seed);
  std::vector<JobRecord> jobs;
  // Per (user, app) reconstructed configs so resubmissions of the same
  // SWF app by the same user reproduce identical scripts, like real
  // workloads do.
  std::unordered_map<long long, JobConfig> config_cache;

  std::string line;
  while (std::getline(is, line)) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == ';') continue;
    const auto f = fields_of(trimmed);
    if (f.size() < 11)
      throw std::runtime_error("load_swf: malformed line: " + line);

    JobRecord j;
    j.job_id = static_cast<std::uint64_t>(std::max(0LL, parse_ll(f[0])));
    j.submit_time = std::max(0.0, parse_d(f[1]));
    const double wait = parse_d(f[2]);
    const double runtime = parse_d(f[3]);
    const long long req_procs =
        f.size() > 7 ? parse_ll(f[7]) : parse_ll(f[4]);
    const double req_seconds = f.size() > 8 ? parse_d(f[8]) : -1.0;
    const long long status = parse_ll(f[10]);
    const long long user_id = f.size() > 11 ? parse_ll(f[11]) : -1;
    const long long group_id = f.size() > 12 ? parse_ll(f[12]) : -1;
    const long long app_id = f.size() > 13 ? parse_ll(f[13]) : -1;

    j.canceled = status == 5 || runtime < 0.0;
    j.runtime_minutes =
        j.canceled ? 0.0 : std::clamp(runtime / 60.0, 1.0, 960.0);
    j.requested_minutes =
        req_seconds > 0.0 ? req_seconds / 60.0
                          : std::max(15.0, j.runtime_minutes * 2.0);
    const long long procs = std::max(1LL, req_procs);
    j.requested_tasks = static_cast<std::uint32_t>(procs);
    j.requested_nodes = static_cast<std::uint32_t>(
        (procs + options.cores_per_node - 1) / options.cores_per_node);
    j.user = "user" + std::to_string(std::max(0LL, user_id));
    j.group = "g" + std::to_string(std::max(0LL, group_id));
    j.start_time = j.submit_time + std::max(0.0, wait);
    j.end_time = j.start_time + j.runtime_minutes * 60.0;

    if (options.synthesize_scripts) {
      // Stable app-keyed script reconstruction: SWF has no script text, so
      // give each (user, app) pair a deterministic catalogue config whose
      // requested resources are overridden by the SWF numbers.
      const long long key = user_id * 100000 + app_id;
      auto it = config_cache.find(key);
      if (it == config_cache.end()) {
        const auto family = static_cast<std::size_t>(
            std::max(0LL, app_id)) % catalog.size();
        it = config_cache.emplace(key, sample_config(catalog, family, rng))
                 .first;
      }
      JobConfig config = it->second;
      config.nodes = std::max<std::uint32_t>(1, j.requested_nodes);
      config.tasks = j.requested_tasks;
      config.requested_minutes = static_cast<std::uint32_t>(
          std::clamp(j.requested_minutes, 1.0, 960.0));
      const auto& fam = catalog[config.family];
      j.account = fam.account;
      j.job_name = fam.name + "_s" + std::to_string(config.size);
      j.submission_dir = "/g/" + j.group + "/" + j.user + "/runs/" + fam.name;
      j.working_dir = "/p/lscratchd/" + j.user + "/" + fam.name + "/s" +
                      std::to_string(config.size);
      j.script = render_script(catalog, config, j.user, j.group);
    }
    jobs.push_back(std::move(j));
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const JobRecord& a, const JobRecord& b) {
              return a.submit_time < b.submit_time;
            });
  return jobs;
}

void save_swf_file(const std::string& path,
                   const std::vector<JobRecord>& jobs,
                   const SwfOptions& options) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_swf_file: cannot open " + path);
  save_swf(os, jobs, options);
}

std::vector<JobRecord> load_swf_file(const std::string& path,
                                     const SwfOptions& options) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_swf_file: cannot open " + path);
  return load_swf(is, options);
}

}  // namespace prionn::trace
