#include "trace/swf.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "trace/app_catalog.hpp"
#include "util/fault.hpp"
#include "util/string_util.hpp"

namespace prionn::trace {

namespace {

/// SWF defines exactly 18 columns; anything shorter is a torn/corrupt row.
constexpr std::size_t kSwfFieldCount = 18;

/// Checked numeric parse: the whole (trimmed) field must be consumed, so
/// "12x" or "--" is malformed rather than silently truncated. SWF fields
/// are numeric by definition; ints parse fine through the double path.
std::optional<double> checked_d(std::string_view field) noexcept {
  const auto t = util::trim(field);
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec != std::errc{} || ptr != t.data() + t.size()) return std::nullopt;
  return v;
}

/// Split an SWF line into whitespace-separated fields.
std::vector<std::string_view> fields_of(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

}  // namespace

void save_swf(std::ostream& os, const std::vector<JobRecord>& jobs,
              const SwfOptions& options) {
  std::unordered_map<std::string, int> user_ids, group_ids, app_ids;
  const auto id_of = [](std::unordered_map<std::string, int>& table,
                        const std::string& key) {
    return table.try_emplace(key, static_cast<int>(table.size()) + 1)
        .first->second;
  };

  os << "; SWF export from the PRIONN reproduction\n";
  os << "; MaxNodes: 1296\n; Note: scripts/IO fields are not representable "
        "in SWF\n";
  for (const auto& j : jobs) {
    const long long wait =
        j.canceled ? -1
                   : static_cast<long long>(
                         std::max(0.0, j.start_time - j.submit_time));
    const long long runtime =
        j.canceled ? -1
                   : static_cast<long long>(j.runtime_minutes * 60.0);
    const auto procs =
        static_cast<long long>(j.requested_tasks ? j.requested_tasks
                                                 : j.requested_nodes *
                                                       options.cores_per_node);
    os << j.job_id << ' '                                      // 1
       << static_cast<long long>(j.submit_time) << ' '         // 2
       << wait << ' '                                          // 3
       << runtime << ' '                                       // 4
       << (j.canceled ? -1 : procs) << ' '                     // 5
       << -1 << ' ' << -1 << ' '                               // 6, 7
       << procs << ' '                                         // 8
       << static_cast<long long>(j.requested_minutes * 60.0) << ' '  // 9
       << -1 << ' '                                            // 10
       << (j.canceled ? 5 : 1) << ' '                          // 11 status
       << id_of(user_ids, j.user) << ' '                       // 12
       << id_of(group_ids, j.group) << ' '                     // 13
       << id_of(app_ids, j.job_name) << ' '                    // 14
       << 1 << ' ' << 1 << ' ' << -1 << ' ' << -1 << '\n';     // 15-18
  }
}

std::vector<JobRecord> load_swf(std::istream& is, const SwfOptions& options,
                                QuarantineReport* quarantine) {
  const auto& catalog = default_catalog();
  util::Rng rng(options.seed);
  std::vector<JobRecord> jobs;
  // Per (user, app) reconstructed configs so resubmissions of the same
  // SWF app by the same user reproduce identical scripts, like real
  // workloads do.
  std::unordered_map<long long, JobConfig> config_cache;

  QuarantineReport local_report;
  QuarantineReport& report = quarantine ? *quarantine : local_report;

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    // Fault-injection point: deterministically mangle a row into garbage
    // so tests can drive the quarantine path end-to-end.
    if (util::fault::fire(util::fault::FaultPoint::kIngestGarbage))
      line = util::fault::garble_line(line, options.seed + line_number);
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == ';') continue;
    const auto f = fields_of(trimmed);
    if (f.size() < kSwfFieldCount) {
      report.add(line_number,
                 "short line (" + std::to_string(f.size()) + " of " +
                     std::to_string(kSwfFieldCount) + " fields)",
                 trimmed);
      continue;
    }

    // All 18 SWF columns are numeric by definition; a field that fails a
    // full-consumption parse marks the row as corrupt.
    std::array<double, kSwfFieldCount> v{};
    std::size_t bad_field = kSwfFieldCount;
    for (std::size_t k = 0; k < kSwfFieldCount; ++k) {
      const auto parsed = checked_d(f[k]);
      if (!parsed || !std::isfinite(*parsed)) {  // "nan"/"inf" parse but
        bad_field = k;                           // must not enter records
        break;
      }
      v[k] = *parsed;
    }
    if (bad_field < kSwfFieldCount) {
      report.add(line_number,
                 "non-numeric field " + std::to_string(bad_field + 1) +
                     " ('" + std::string(f[bad_field]) + "')",
                 trimmed);
      continue;
    }
    report.count_accepted();

    // Clamp before integer casts: a finite but absurd value (1e300) must
    // not hit undefined float-to-int behaviour.
    const auto ll_of = [](double x) noexcept {
      return static_cast<long long>(std::clamp(x, -9.0e18, 9.0e18));
    };
    JobRecord j;
    j.job_id = static_cast<std::uint64_t>(
        std::max(0LL, ll_of(v[0])));
    j.submit_time = std::max(0.0, v[1]);
    const double wait = v[2];
    const double runtime = v[3];
    const long long req_procs = ll_of(v[7]);
    const double req_seconds = v[8];
    const long long status = ll_of(v[10]);
    // Entity ids feed the (user, app) cache key below; clamp them to a
    // sane range so the key arithmetic cannot overflow.
    const auto id_of = [&ll_of](double x) noexcept {
      return std::clamp(ll_of(x), -1LL, 1000000000LL);
    };
    const long long user_id = id_of(v[11]);
    const long long group_id = id_of(v[12]);
    const long long app_id = id_of(v[13]);

    j.canceled = status == 5 || runtime < 0.0;
    j.runtime_minutes =
        j.canceled ? 0.0 : std::clamp(runtime / 60.0, 1.0, 960.0);
    j.requested_minutes =
        req_seconds > 0.0 ? req_seconds / 60.0
                          : std::max(15.0, j.runtime_minutes * 2.0);
    const long long procs = std::max(1LL, req_procs);
    j.requested_tasks = static_cast<std::uint32_t>(procs);
    j.requested_nodes = static_cast<std::uint32_t>(
        (procs + options.cores_per_node - 1) / options.cores_per_node);
    // Append form rather than `"g" + std::to_string(...)`: the concat
    // spelling trips GCC 12's -Wrestrict false positive (PR 105651) when
    // inlined at -O3, and this file builds under -Werror.
    j.user = "user";
    j.user += std::to_string(std::max(0LL, user_id));
    j.group = "g";
    j.group += std::to_string(std::max(0LL, group_id));
    j.start_time = j.submit_time + std::max(0.0, wait);
    j.end_time = j.start_time + j.runtime_minutes * 60.0;

    if (options.synthesize_scripts) {
      // Stable app-keyed script reconstruction: SWF has no script text, so
      // give each (user, app) pair a deterministic catalogue config whose
      // requested resources are overridden by the SWF numbers.
      const long long key = user_id * 100000 + app_id;
      auto it = config_cache.find(key);
      if (it == config_cache.end()) {
        const auto family = static_cast<std::size_t>(
            std::max(0LL, app_id)) % catalog.size();
        it = config_cache.emplace(key, sample_config(catalog, family, rng))
                 .first;
      }
      JobConfig config = it->second;
      config.nodes = std::max<std::uint32_t>(1, j.requested_nodes);
      config.tasks = j.requested_tasks;
      config.requested_minutes = static_cast<std::uint32_t>(
          std::clamp(j.requested_minutes, 1.0, 960.0));
      const auto& fam = catalog[config.family];
      j.account = fam.account;
      j.job_name = fam.name + "_s" + std::to_string(config.size);
      j.submission_dir = "/g/" + j.group + "/" + j.user + "/runs/" + fam.name;
      j.working_dir = "/p/lscratchd/" + j.user + "/" + fam.name + "/s" +
                      std::to_string(config.size);
      j.script = render_script(catalog, config, j.user, j.group);
    }
    jobs.push_back(std::move(j));
  }
  if (report.fraction() > options.max_quarantine_fraction)
    throw std::runtime_error("load_swf: quarantine tolerance exceeded: " +
                             report.summary());
  std::sort(jobs.begin(), jobs.end(),
            [](const JobRecord& a, const JobRecord& b) {
              return a.submit_time < b.submit_time;
            });
  return jobs;
}

void save_swf_file(const std::string& path,
                   const std::vector<JobRecord>& jobs,
                   const SwfOptions& options) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_swf_file: cannot open " + path);
  save_swf(os, jobs, options);
}

std::vector<JobRecord> load_swf_file(const std::string& path,
                                     const SwfOptions& options,
                                     QuarantineReport* quarantine) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_swf_file: cannot open " + path);
  return load_swf(is, options, quarantine);
}

}  // namespace prionn::trace
